"""``nvidia-smi`` emulator: the ``-q -x`` XML schema and the console table.

GYAN's multi-GPU logic (paper Pseudocode 1) shells out to
``nvidia-smi -q -x`` and walks the XML with BeautifulSoup to learn which
PIDs run on which GPU minor number.  The offline environment has neither
the binary nor ``bs4``, so this module provides:

* :func:`render_xml` — the real tool's XML document structure, with the
  tags GYAN touches (``nvidia_smi_log``, ``gpu``, ``minor_number``,
  ``fb_memory_usage/{total,used,free}``, ``utilization``, ``processes``/
  ``process_info``/``pid``) rendered faithfully;
* :class:`SmiSoup` — a tiny BeautifulSoup-compatible façade over
  :mod:`xml.etree.ElementTree` exposing ``find`` / ``find_all`` /
  ``.text`` so the ported Pseudocode 1 reads exactly like the paper's;
* :func:`render_table` — the human console table of paper Figs. 10-11.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.sax.saxutils import escape

from repro.gpusim.device import GPUDevice
from repro.gpusim.host import GPUHost


# --------------------------------------------------------------------- #
# XML query output (`nvidia-smi -q -x`)
# --------------------------------------------------------------------- #
def _gpu_xml(dev: GPUDevice) -> str:
    procs = []
    for p in dev.compute_processes():
        procs.append(
            "      <process_info>\n"
            f"        <pid>{p.pid}</pid>\n"
            f"        <type>{p.process_type.value}</type>\n"
            f"        <process_name>{escape(p.name)}</process_name>\n"
            f"        <used_memory>{dev.memory.used_by(p.pid) // (1024 * 1024)} MiB</used_memory>\n"
            "      </process_info>"
        )
    processes_block = "\n".join(procs) if procs else ""
    return (
        f'  <gpu id="{dev.bus_id}">\n'
        f"    <product_name>{escape(dev.arch.name)}</product_name>\n"
        f"    <uuid>{dev.uuid}</uuid>\n"
        f"    <minor_number>{dev.minor_number}</minor_number>\n"
        "    <pci>\n"
        f"      <pci_bus_id>{dev.bus_id}</pci_bus_id>\n"
        "      <pci_gpu_link_info>\n"
        "        <pcie_gen>\n"
        f"          <max_link_gen>{dev.arch.pcie_generation_max}</max_link_gen>\n"
        f"          <current_link_gen>{dev.pcie_generation_current}</current_link_gen>\n"
        "        </pcie_gen>\n"
        "      </pci_gpu_link_info>\n"
        "    </pci>\n"
        "    <fb_memory_usage>\n"
        f"      <total>{dev.fb_total_mib} MiB</total>\n"
        f"      <used>{dev.fb_used_mib} MiB</used>\n"
        f"      <free>{dev.fb_total_mib - dev.fb_used_mib} MiB</free>\n"
        "    </fb_memory_usage>\n"
        "    <utilization>\n"
        f"      <gpu_util>{dev.sm_utilization:.0f} %</gpu_util>\n"
        f"      <memory_util>{dev.mem_utilization:.0f} %</memory_util>\n"
        "    </utilization>\n"
        "    <temperature>\n"
        f"      <gpu_temp>{dev.temperature_c} C</gpu_temp>\n"
        "    </temperature>\n"
        "    <power_readings>\n"
        f"      <power_draw>{dev.power_draw_watts:.2f} W</power_draw>\n"
        f"      <power_limit>{dev.arch.power_limit_watts:.2f} W</power_limit>\n"
        "    </power_readings>\n"
        "    <processes>\n"
        f"{processes_block}\n"
        "    </processes>\n"
        "  </gpu>"
    )


def render_xml(host: GPUHost) -> str:
    """The full ``nvidia-smi -q -x`` document for ``host``.

    Lost devices (XID errors) are not enumerated — exactly how the real
    driver behaves once a GPU falls off the bus, and the mechanism by
    which GYAN's availability logic naturally routes around failures.
    """
    healthy = [d for d in host.devices if d.healthy]
    gpus = "\n".join(_gpu_xml(d) for d in healthy)
    return (
        '<?xml version="1.0" ?>\n'
        "<nvidia_smi_log>\n"
        f"  <timestamp>{host.clock.now:.3f}</timestamp>\n"
        f"  <driver_version>{host.driver_version}</driver_version>\n"
        f"  <cuda_version>{host.cuda_version}</cuda_version>\n"
        f"  <attached_gpus>{len(healthy)}</attached_gpus>\n"
        f"{gpus}\n"
        "</nvidia_smi_log>\n"
    )


def run_query(host: GPUHost, args: str = "-q -x") -> tuple[str, str]:
    """Emulate ``subprocess.Popen("nvidia-smi -q -x")``: (stdout, stderr).

    Only the query form GYAN uses is supported; anything else returns a
    usage error on stderr with empty stdout, like the real binary.

    ``nvidia-smi`` is itself an NVML client, so an injected transient
    NVML failure (see :mod:`repro.gpusim.faults`) surfaces here too: the
    binary exits non-zero with the NVML error on stderr.  One injected
    error fails exactly one invocation.
    """
    code = host.faults.take_nvml_error()
    if code is not None:
        from repro.gpusim.errors import NVMLError

        reason = NVMLError(code, "injected transient failure")
        return "", f"Unable to determine the device handle: {reason}\n"
    normalized = " ".join(args.split())
    if normalized in ("-q -x", "--query --xml-format", "-x -q"):
        return render_xml(host), ""
    return "", f"nvidia-smi: unsupported arguments {args!r} (emulator)\n"


# --------------------------------------------------------------------- #
# BeautifulSoup-compatible façade (the paper parses with bs4)
# --------------------------------------------------------------------- #
class SmiSoup:
    """Minimal BeautifulSoup-alike over an XML string or element.

    Supports the exact call shapes of the paper's Pseudocode 1::

        soup = SmiSoup(xml_text)
        for gpu in soup.find("nvidia_smi_log").find_all("gpu"):
            minor = gpu.find("minor_number").text
            for proc in gpu.find("processes").find_all("process_info"):
                pid = proc.find("pid").text

    ``find`` searches descendants (not just children), returns ``None``
    when absent; ``find_all`` returns a list; ``.text`` is the stripped
    text content.
    """

    def __init__(self, source: str | ET.Element) -> None:
        self._element = ET.fromstring(source) if isinstance(source, str) else source

    @property
    def name(self) -> str:
        """Tag name of this node."""
        return self._element.tag

    @property
    def text(self) -> str:
        """Stripped text content of this node ('' when empty)."""
        return (self._element.text or "").strip()

    def find(self, tag: str) -> "SmiSoup | None":
        """First descendant with the given tag, or the node itself."""
        if self._element.tag == tag:
            return self
        found = self._element.find(f".//{tag}")
        return SmiSoup(found) if found is not None else None

    def find_all(self, tag: str) -> list["SmiSoup"]:
        """All descendants with the given tag, in document order."""
        return [SmiSoup(e) for e in self._element.iter(tag) if e is not self._element]


# --------------------------------------------------------------------- #
# console table (`nvidia-smi` with no args) — paper Figs. 10 and 11
# --------------------------------------------------------------------- #
_BAR = "+-----------------------------------------------------------------------------+"


def render_table(host: GPUHost) -> str:
    """The familiar two-part console table for ``host``.

    Layout follows the paper's Fig. 10: a banner with driver/CUDA
    versions, one two-line block per GPU, then the ``Processes`` section
    listing ``GPU  GI  CI  PID  Type  Process name  GPU Memory Usage``.
    """
    lines = [_BAR]
    lines.append(
        f"| NVIDIA-SMI {host.driver_version:<12} Driver Version: {host.driver_version:<12} "
        f"CUDA Version: {host.cuda_version:<6}    |"
    )
    lines.append("|-------------------------------+----------------------+----------------------+")
    lines.append("| GPU  Name        Persistence-M| Bus-Id        Disp.A | Volatile Uncorr. ECC |")
    lines.append("| Fan  Temp  Perf  Pwr:Usage/Cap|         Memory-Usage | GPU-Util  Compute M. |")
    lines.append("|===============================+======================+======================|")
    for dev in [d for d in host.devices if d.healthy]:
        lines.append(
            f"| {dev.minor_number:>3}  {dev.arch.name:<12}        Off  "
            f"| {dev.bus_id} Off "
            f"| {'0':>20} |"
        )
        mem = f"{dev.fb_used_mib}MiB / {dev.fb_total_mib}MiB"
        mode = {
            "Default": "Default",
            "Exclusive_Process": "E. Process",
            "Prohibited": "Prohibited",
        }[dev.compute_mode.value]
        lines.append(
            f"| N/A  {dev.temperature_c:>3}C   P0  "
            f"{dev.power_draw_watts:>4.0f}W / {dev.arch.power_limit_watts:>3.0f}W "
            f"| {mem:>20} "
            f"| {dev.sm_utilization:>6.0f}%  {mode:>9} |"
        )
        lines.append("+-------------------------------+----------------------+----------------------+")
    lines.append("")
    lines.append(_BAR)
    lines.append("| Processes:                                                                  |")
    lines.append("|  GPU   GI   CI        PID   Type   Process name                  GPU Memory |")
    lines.append("|        ID   ID                                                   Usage      |")
    lines.append("|=============================================================================|")
    any_proc = False
    for dev in [d for d in host.devices if d.healthy]:
        for proc in dev.compute_processes():
            any_proc = True
            mem = f"{dev.memory.used_by(proc.pid) // (1024 * 1024)}MiB"
            lines.append(
                f"|  {dev.minor_number:>3}   N/A  N/A   {proc.pid:>8}      "
                f"{proc.process_type.value}   {proc.name:<28}  {mem:>9} |"
            )
    if not any_proc:
        lines.append("|  No running processes found                                                 |")
    lines.append(_BAR)
    return "\n".join(lines) + "\n"


def process_placement(host: GPUHost) -> dict[int, list[int]]:
    """Convenience map ``{minor_number: [pids]}`` used heavily in tests."""
    return {d.minor_number: d.process_pids() for d in host.devices}


def render_topology(host: GPUHost) -> str:
    """The ``nvidia-smi topo -m`` connectivity matrix.

    Dies on the same board connect through the board's PLX switch
    (``PIX``); dies on different boards traverse the host PCIe bridge
    (``PHB``).  ``X`` marks the diagonal, as the real tool prints.
    """
    devices = [d for d in host.devices if d.healthy]
    names = [f"GPU{d.minor_number}" for d in devices]
    width = max((len(n) for n in names), default=4) + 2
    header = " " * width + "".join(f"{n:>{width}}" for n in names)
    lines = [header]
    for a in devices:
        row = [f"{f'GPU{a.minor_number}':<{width}}"]
        for b in devices:
            if a.minor_number == b.minor_number:
                link = "X"
            elif host.same_board(a.minor_number, b.minor_number):
                link = "PIX"
            else:
                link = "PHB"
            row.append(f"{link:>{width}}")
        lines.append("".join(row))
    lines.append("")
    lines.append("Legend:  X = self   PIX = same board (PLX switch)   "
                 "PHB = across the host PCIe bridge")
    return "\n".join(lines) + "\n"
