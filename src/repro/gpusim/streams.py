"""CUDA streams: asynchronous copy/compute with engine overlap.

The paper's Racon-GPU measurement attributes ~40 s to "CUDA API calls to
transfer input data and results from and to GPU ... and CUDA kernel
synchronization" — a *synchronous* chunk pipeline (copy, compute, copy,
repeat).  Kepler-class devices have independent copy engines (one per
direction) beside the compute engine, so a stream-pipelined
implementation can hide most of that transfer time behind kernel
execution.  This module models exactly that: per-stream ordering,
per-engine serialisation, and overlap across engines — used by the
`ablation_streams` benchmark to quantify the head-room GYAN's §VI-A
breakdown leaves on the table.

Semantics implemented:

* operations issued to one stream execute in issue order;
* each engine (H2D copy, D2H copy, compute) runs one operation at a
  time, across all streams;
* an operation starts at ``max(issue time, stream tail, engine tail)``;
* ``synchronize()`` advances the host clock to the last completion
  (``cudaDeviceSynchronize``); per-stream sync waits only for that
  stream.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.gpusim.kernels import (
    KERNEL_LAUNCH_OVERHEAD_S,
    PCIE_LATENCY_S,
    KernelLaunch,
    KernelTimingModel,
    MemcpyKind,
    SYNC_CALL_S,
)


@dataclass
class StreamOp:
    """One asynchronous operation as scheduled."""

    name: str
    stream_id: int
    engine: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Scheduled execution time."""
        return self.end - self.start


class CudaStream:
    """An ordered queue of device operations."""

    _ids = itertools.count(1)

    def __init__(self) -> None:
        self.stream_id = next(CudaStream._ids)
        #: Completion time of the last operation issued to this stream.
        self.tail: float = 0.0
        self.ops: list[StreamOp] = []


class StreamEngine:
    """Schedules async operations over the device's hardware engines.

    Parameters
    ----------
    timing:
        The synchronous timing model supplying durations (roofline for
        kernels, PCIe for copies) and the profiler/clock bindings.
    """

    #: Engine names: Kepler has two copy engines and one compute engine.
    ENGINES = ("copy_h2d", "copy_d2h", "compute")

    def __init__(self, timing: KernelTimingModel) -> None:
        self.timing = timing
        self._engine_tail: dict[str, float] = {name: 0.0 for name in self.ENGINES}
        self.ops: list[StreamOp] = []

    # ------------------------------------------------------------------ #
    def _schedule(
        self, stream: CudaStream, name: str, engine: str, duration: float
    ) -> StreamOp:
        now = self.timing.host.clock.now
        start = max(now, stream.tail, self._engine_tail[engine])
        op = StreamOp(
            name=name,
            stream_id=stream.stream_id,
            engine=engine,
            start=start,
            end=start + duration,
        )
        stream.tail = op.end
        self._engine_tail[engine] = op.end
        stream.ops.append(op)
        self.ops.append(op)
        if self.timing.profiler is not None:
            self.timing.profiler.record_api(
                name=name,
                category="kernel" if engine == "compute" else f"memcpy_{engine[-3:]}",
                start=op.start,
                duration=duration,
                device_index=self.timing.device.minor_number,
                details={"stream": stream.stream_id, "engine": engine},
            )
        return op

    # ------------------------------------------------------------------ #
    def memcpy_async(
        self, kind: MemcpyKind, nbytes: float, stream: CudaStream
    ) -> StreamOp:
        """``cudaMemcpyAsync``: queued, non-blocking."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        bandwidth = (
            self.timing.device.arch.pcie_effective_gbps
            * self.timing.pcie_efficiency
            * 1e9
        )
        duration = PCIE_LATENCY_S + nbytes / bandwidth
        engine = (
            "copy_h2d" if kind is MemcpyKind.HOST_TO_DEVICE else "copy_d2h"
        )
        return self._schedule(stream, f"cudaMemcpyAsync{kind.value}", engine, duration)

    def launch_async(self, kernel: KernelLaunch, stream: CudaStream) -> StreamOp:
        """Asynchronous kernel launch: queued on the compute engine."""
        compute_time, memory_time, _occ = self.timing.kernel_times(kernel)
        duration = max(compute_time, memory_time) + KERNEL_LAUNCH_OVERHEAD_S
        op = self._schedule(stream, kernel.name, "compute", duration)
        self.timing.device.busy_seconds += duration
        return op

    # ------------------------------------------------------------------ #
    def synchronize(self, stream: CudaStream | None = None) -> float:
        """Block the host until the stream (or whole device) drains.

        Returns the host time after synchronisation.
        """
        if stream is not None:
            target = stream.tail
            name = "cudaStreamSynchronize"
        else:
            target = max(self._engine_tail.values(), default=0.0)
            name = "cudaDeviceSynchronize"
        clock = self.timing.host.clock
        wait_start = clock.now
        if target > clock.now:
            clock.advance_to(target)
        clock.advance(SYNC_CALL_S)
        if self.timing.profiler is not None:
            self.timing.profiler.record_api(
                name=name,
                category="sync",
                start=wait_start,
                duration=clock.now - wait_start,
                device_index=self.timing.device.minor_number,
            )
        return clock.now

    # ------------------------------------------------------------------ #
    def engine_busy_seconds(self) -> dict[str, float]:
        """Total scheduled time per engine (overlap diagnostics)."""
        busy: dict[str, float] = {name: 0.0 for name in self.ENGINES}
        for op in self.ops:
            busy[op.engine] += op.duration
        return busy

    def makespan(self) -> float:
        """End-to-end span of everything scheduled so far."""
        if not self.ops:
            return 0.0
        return max(op.end for op in self.ops) - min(op.start for op in self.ops)
