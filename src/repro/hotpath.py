"""The ``@hot_path`` annotation consumed by gyan-perf.

A *hot path* is code whose per-call cost is multiplied by the scale the
ROADMAP targets — mapper dispatch under a burst, the clock-advance inner
loop, span listeners firing per quiescent interval, exporters rendering
a row per sample.  gyan-perf (``python -m repro perf``) seeds its
hot-path model from two sources: these annotations and the
``BENCH_sim_core.json`` scenario→entry-point profile, then propagates
hotness transitively through the static call graph.  PERF6xx rules fire
at ``error`` severity on hot-marked code and downgrade to ``info``
everywhere else.

The decorator is a runtime no-op beyond tagging the function object —
it never wraps, so decorated hot paths pay zero call overhead.  The
analyzer recognises the decoration *statically* (by name in the AST),
so annotated fixtures work without importing this module.

This module is intentionally dependency-free: ``gpusim`` and ``core``
import it, and they must not depend on :mod:`repro.analysis`.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable[..., object])

#: Attribute set on annotated callables (introspection/debugging aid;
#: the static analyzer matches the decorator name, not this attribute).
HOT_PATH_ATTR = "__gyan_hot_path__"


def hot_path(func: _F) -> _F:
    """Mark ``func`` as a known-hot entry point for gyan-perf.

    Returns ``func`` unchanged (no wrapper, no call overhead).
    """
    setattr(func, HOT_PATH_ATTR, True)
    return func
