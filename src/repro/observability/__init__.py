"""Virtual-clock observability: job tracing, typed metrics, exporters.

The public surface:

* :class:`~repro.observability.tracing.Tracer` /
  :data:`~repro.observability.tracing.NULL_TRACER` — span collection
  against a deployment's virtual clock, zero-overhead when disabled.
* :class:`~repro.observability.metrics.MetricsRegistry` — typed
  counters/gauges/histograms with label support; every layer of a
  deployment reports into one shared registry.
* The exporters — Chrome/Perfetto trace-event JSON, Prometheus text
  exposition, per-job text timelines — all byte-stable for identical
  simulated runs.
* :func:`~repro.observability.driver.trace_workload` /
  :func:`~repro.observability.driver.trace_chaos` — one-call traced
  runs producing a :class:`~repro.observability.driver.TraceArtifacts`.
"""

from repro.observability.driver import (
    TraceArtifacts,
    trace_chaos,
    trace_workload,
)
from repro.observability.export import (
    TRACE_SCHEMA,
    chrome_trace_dict,
    render_chrome_trace,
    render_job_timeline,
    render_prometheus,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    MetricsError,
    MetricsRegistry,
    format_value,
)
from repro.observability.tracing import (
    CATEGORY_JOB,
    CATEGORY_MAPPER,
    CATEGORY_RUNNER,
    CATEGORY_SCHEDULER,
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
)

__all__ = [
    "CATEGORY_JOB",
    "CATEGORY_MAPPER",
    "CATEGORY_RUNNER",
    "CATEGORY_SCHEDULER",
    "DEFAULT_BUCKETS",
    "MetricsError",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanEvent",
    "TRACE_SCHEMA",
    "TraceArtifacts",
    "Tracer",
    "chrome_trace_dict",
    "format_value",
    "render_chrome_trace",
    "render_job_timeline",
    "render_prometheus",
    "trace_chaos",
    "trace_workload",
]
