"""One-call traced runs: workload or chaos replay -> byte-stable artifacts.

The ``python -m repro trace`` CLI and the trace-smoke CI step both need
the same thing: build a deployment with an enabled tracer, drive a
deterministic workload through it, and serialise the resulting spans and
metrics into on-disk artifacts that are byte-identical across runs.
:func:`trace_workload` (Poisson replay) and :func:`trace_chaos` (fault
plan replay) produce a :class:`TraceArtifacts`; callers print it, diff
it, or :meth:`~TraceArtifacts.write` it to a directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.observability.export import (
    TRACE_SCHEMA,
    render_chrome_trace,
    render_job_timeline,
    render_prometheus,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Tracer

#: Artifact filenames, fixed so CI can diff without globbing.
PERFETTO_FILENAME = "trace.perfetto.json"
PROMETHEUS_FILENAME = "metrics.prom"
TIMELINE_FILENAME = "timeline.txt"
SUMMARY_FILENAME = "summary.json"


@dataclass
class TraceArtifacts:
    """The four deterministic artifacts of one traced run."""

    #: Chrome/Perfetto trace-event JSON (load in https://ui.perfetto.dev).
    perfetto: str
    #: Prometheus text exposition of the deployment's metrics registry.
    prometheus: str
    #: Human-readable per-job phase timelines.
    timeline: str
    #: Machine-readable run summary (schema ``gyan.trace/v1``).
    summary: dict

    def summary_json(self) -> str:
        """Byte-stable serialisation of :attr:`summary`."""
        return json.dumps(self.summary, indent=2, sort_keys=True) + "\n"

    def write(self, directory: str | Path) -> list[Path]:
        """Write all four artifacts into ``directory`` (created if needed).

        Returns the written paths in a fixed order.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        pairs = (
            (PERFETTO_FILENAME, self.perfetto),
            (PROMETHEUS_FILENAME, self.prometheus),
            (TIMELINE_FILENAME, self.timeline),
            (SUMMARY_FILENAME, self.summary_json()),
        )
        written: list[Path] = []
        for name, content in pairs:
            path = directory / name
            path.write_text(content)
            written.append(path)
        return written


def _build_artifacts(
    tracer: Tracer,
    registry: MetricsRegistry,
    metadata: dict[str, Any],
    summary_extra: dict[str, Any],
) -> TraceArtifacts:
    perfetto = render_chrome_trace(tracer, metadata)
    summary: dict[str, Any] = {
        "schema": TRACE_SCHEMA,
        "metadata": dict(sorted(metadata.items())),
        "spans": len(tracer.spans),
        "events": len(tracer.events),
        "jobs_traced": len(tracer.job_ids()),
    }
    summary.update(summary_extra)
    return TraceArtifacts(
        perfetto=perfetto,
        prometheus=render_prometheus(registry),
        timeline=render_job_timeline(tracer),
        summary=summary,
    )


def trace_workload(
    jobs: int = 20,
    interarrival: float = 2.0,
    seed: int = 0,
    allocation: str = "pid",
    policy: str = "place",
    clock=None,
) -> TraceArtifacts:
    """Replay a seeded Poisson arrival trace with tracing enabled.

    Mirrors the ``python -m repro trace`` defaults; every timestamp comes
    from the deployment's virtual clock and every random draw from the
    seeded generator, so equal arguments yield byte-identical artifacts.

    ``clock`` injects a pre-built virtual clock into the testbed — the
    determinism checker passes its permuting shim here; everyone else
    leaves it None.
    """
    from repro.cluster.node import ComputeNode
    from repro.core.orchestrator import build_deployment
    from repro.tools.executors import register_paper_tools
    from repro.workloads.traces import TraceReplayer, generate_trace

    node = ComputeNode.paper_testbed(clock=clock)
    tracer = Tracer(node.clock)
    deployment = build_deployment(
        node=node, allocation_strategy=allocation, tracer=tracer
    )
    register_paper_tools(deployment.app)
    trace = generate_trace(
        n_jobs=jobs, mean_interarrival_s=interarrival, seed=seed
    )
    replayer = TraceReplayer(
        deployment, gpu_policy=policy, colocation_slowdown=True
    )
    result = replayer.replay(trace)
    metadata = {
        "allocation": allocation,
        "interarrival": interarrival,
        "jobs": jobs,
        "mode": "workload",
        "policy": policy,
        "seed": seed,
    }
    summary_extra = {
        "replay": {
            "gpu_jobs": len(result.gpu_jobs),
            "scattered_jobs": result.scattered_jobs,
            "peak_sharing_per_gpu": dict(
                sorted(result.max_concurrent_per_gpu.items())
            ),
            "mean_completion_time_s": round(result.mean_completion_time(), 6),
            "mean_wait_time_s": round(result.mean_wait_time(), 6),
            "end_time_s": round(deployment.clock.now, 6),
        },
    }
    return _build_artifacts(
        tracer, deployment.app.metrics_registry, metadata, summary_extra
    )


def trace_chaos(
    plan,
    jobs: int | None = None,
    resilient: bool | None = None,
) -> TraceArtifacts:
    """Replay a fault-injection plan with tracing enabled.

    The chaos harness builds the deployment itself; ``trace=True`` hands
    back the populated tracer and registry, from which the same four
    artifacts are rendered.  The summary embeds the full chaos survival
    report, so one artifact set answers both "what happened to each job"
    and "when, phase by phase".
    """
    from repro.workloads.chaos import run_chaos

    result = run_chaos(plan, jobs=jobs, resilient=resilient, trace=True)
    metadata = {
        "mode": "chaos",
        "plan": plan.name,
        "resilient": result.resilient,
        "seed": plan.seed,
    }
    summary_extra = {"chaos": result.to_dict()}
    return _build_artifacts(
        result.tracer, result.registry, metadata, summary_extra
    )
