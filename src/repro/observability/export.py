"""Deterministic trace exporters: Perfetto JSON, Prometheus, text timelines.

Three formats, one determinism contract — byte-identical output for
identical simulated runs:

* :func:`render_chrome_trace` — the Chrome/Perfetto trace-event JSON
  format (``chrome://tracing`` / https://ui.perfetto.dev load it
  directly).  Jobs map to track ids, phases to complete (``"X"``)
  events, resubmit hops and requeues to instant (``"i"``) events.
* :func:`render_prometheus` — delegates to the registry's text
  exposition (kept here so artifact writers import one module).
* :func:`render_job_timeline` — a human-readable per-job phase listing,
  the ``nvprof --print-gpu-trace``-style quick look.

Job ids come from a process-global counter, so two runs in one process
would differ; every exporter renumbers ids relative to the smallest
traced id (the same normalisation the chaos harness applies to
resubmit chains), restoring byte-stability.
"""

from __future__ import annotations

import json
from typing import Any

from repro.hotpath import hot_path
from repro.observability.metrics import MetricsRegistry, format_value
from repro.observability.tracing import Span, SpanEvent, Tracer

#: Schema identifier stamped into the Perfetto artifact's otherData.
TRACE_SCHEMA = "gyan.trace/v1"

#: Microseconds per virtual second (trace-event ``ts`` unit).
_US = 1_000_000


#: Attribute keys whose values are Galaxy job ids; renumbered alongside
#: track ids so cross-job references stay byte-stable.
_JOB_ID_ATTRS = frozenset({"resubmit_of", "retry_job"})


def _clean_attrs(
    attributes: dict[str, Any], base: int | None = None
) -> dict[str, Any]:
    """JSON-safe, deterministic args: sorted keys, primitives coerced.

    When ``base`` is given, job-id-valued attributes are renumbered
    relative to it (ids come from a process-global counter).
    """
    out: dict[str, Any] = {}
    for key in sorted(attributes):
        value = attributes[key]
        if (
            base is not None
            and key in _JOB_ID_ATTRS
            and isinstance(value, int)
            and not isinstance(value, bool)
        ):
            out[key] = value - base + 1
        elif isinstance(value, (bool, int, str)) or value is None:
            out[key] = value
        elif isinstance(value, float):
            out[key] = round(value, 9)
        elif isinstance(value, (list, tuple)):
            out[key] = [str(v) for v in value]
        else:
            out[key] = str(value)
    return out


def _job_base(tracer: Tracer) -> int:
    """Smallest traced job id — the renumbering origin."""
    ids = tracer.job_ids()
    return ids[0] if ids else 1


def _tid(job_id: int | None, base: int) -> int:
    """Normalised track id: jobs count from 1, jobless records on 0."""
    if job_id is None:
        return 0
    return job_id - base + 1


def chrome_trace_dict(
    tracer: Tracer, metadata: dict[str, Any] | None = None
) -> dict:
    """The trace-event JSON object for one traced run.

    Still-open spans are closed at the tracer's current virtual instant
    first (and marked ``unclosed``), so crashed runs export cleanly.
    """
    tracer.close_open_spans()
    base = _job_base(tracer)
    events: list[dict] = []

    # Track-name metadata, one per traced job (plus the scheduler track
    # when jobless records exist).
    names: dict[int, str] = {}
    for span in tracer.spans:
        tid = _tid(span.job_id, base)
        if span.name == "job" and "tool" in span.attributes:
            names[tid] = f"job {tid} ({span.attributes['tool']})"
        else:
            names.setdefault(tid, f"job {tid}" if tid else "deployment")
    for event in tracer.events:
        tid = _tid(event.job_id, base)
        names.setdefault(tid, f"job {tid}" if tid else "deployment")
    for tid in sorted(names):
        events.append({
            "args": {"name": names[tid]},
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
        })

    records: list[tuple[int, int, dict]] = []
    for span in tracer.spans:
        assert span.end is not None  # close_open_spans ran
        args = _clean_attrs(span.attributes, base)
        if span.job_id is not None:
            args["job_id"] = _tid(span.job_id, base)
        records.append((
            round(span.start * _US),
            span.seq,
            {
                "args": args,
                "cat": span.category,
                "dur": round((span.end - span.start) * _US),
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": _tid(span.job_id, base),
                "ts": round(span.start * _US),
            },
        ))
    for event in tracer.events:
        args = _clean_attrs(event.attributes, base)
        if event.job_id is not None:
            args["job_id"] = _tid(event.job_id, base)
        records.append((
            round(event.time * _US),
            event.seq,
            {
                "args": args,
                "cat": event.category,
                "name": event.name,
                "ph": "i",
                "pid": 1,
                "s": "t",
                "tid": _tid(event.job_id, base),
                "ts": round(event.time * _US),
            },
        ))
    records.sort(key=lambda r: (r[0], r[1]))
    events.extend(record for _ts, _seq, record in records)

    other: dict[str, Any] = {"schema": TRACE_SCHEMA}
    if metadata:
        other.update(_clean_attrs(metadata))
    return {
        "displayTimeUnit": "ms",
        "otherData": other,
        "traceEvents": events,
    }


@hot_path
def render_chrome_trace(
    tracer: Tracer, metadata: dict[str, Any] | None = None
) -> str:
    """Serialise :func:`chrome_trace_dict` byte-stably."""
    return json.dumps(
        chrome_trace_dict(tracer, metadata), indent=2, sort_keys=True
    ) + "\n"


@hot_path
def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry's Prometheus text exposition (byte-stable)."""
    return registry.render_prometheus()


def _detail_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return format_value(value)
    if isinstance(value, list):
        return ",".join(value) if value else "-"
    return str(value)


def _detail(attributes: dict[str, Any]) -> str:
    return " ".join(
        f"{k}={_detail_value(v)}" for k, v in attributes.items()
    )


def _timeline_rows(
    spans: list[Span], events: list[SpanEvent], base: int
) -> list[tuple[float, int, str]]:
    rows: list[tuple[float, int, str]] = []
    for span in spans:
        end = span.end if span.end is not None else span.start
        detail = _detail(_clean_attrs(
            {k: v for k, v in span.attributes.items() if k != "tool"}, base
        ))
        rows.append((
            span.start,
            span.seq,
            f"{span.start:>12.6f}  {span.name:<12} "
            f"+{end - span.start:.6f}s"
            + (f"  {detail}" if detail else ""),
        ))
    for event in events:
        detail = _detail(_clean_attrs(event.attributes, base))
        rows.append((
            event.time,
            event.seq,
            f"{event.time:>12.6f}  {event.name:<12} (instant)"
            + (f"  {detail}" if detail else ""),
        ))
    rows.sort(key=lambda r: (r[0], r[1]))
    return rows


@hot_path
def render_job_timeline(tracer: Tracer, job_id: int | None = None) -> str:
    """Per-job text timelines (all traced jobs when ``job_id`` is None).

    Spans and events are grouped by job id in one pass up front — the
    per-job rescans this replaced cost O(jobs × records).
    """
    tracer.close_open_spans()
    base = _job_base(tracer)
    job_ids = [job_id] if job_id is not None else tracer.job_ids()
    spans_by_job: dict[int | None, list[Span]] = {}
    events_by_job: dict[int | None, list[SpanEvent]] = {}
    for span in tracer.spans:
        spans_by_job.setdefault(span.job_id, []).append(span)
    for event in tracer.events:
        events_by_job.setdefault(event.job_id, []).append(event)
    blocks: list[str] = []
    for jid in job_ids:
        spans = spans_by_job.get(jid, [])
        events = events_by_job.get(jid, [])
        if not spans and not events:
            continue
        root = next((s for s in spans if s.name == "job"), None)
        header_parts = [f"job {_tid(jid, base)}"]
        if root is not None:
            tool = root.attributes.get("tool")
            state = root.attributes.get("state", "?")
            if tool:
                header_parts.append(f" ({tool})")
            header_parts.append(f" — {state}")
            if root.end is not None:
                header_parts.append(f" in {root.end - root.start:.6f}s")
        lines = ["".join(header_parts)]
        lines.extend(
            text for _t, _s, text in _timeline_rows(spans, events, base)
        )
        blocks.append("\n".join(lines))
    return ("\n\n".join(blocks) + "\n") if blocks else ""
