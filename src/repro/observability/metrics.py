"""A typed metrics registry: counters, gauges, histograms, labels.

Before this module every layer kept its own ad-hoc tallies — the mapper
counted ``degraded_queries`` and ``snapshot_cache_hits`` in bare ints,
runners counted ``requeues``, and the chaos harness summed them by
attribute name.  The registry replaces that with the structure the
paper's evaluation (per-second hardware usage tables, NVProf hotspot
percentages) implies: named instruments with help strings, optional
labels, and deterministic export.

Design rules:

* **Virtual-time native.**  Nothing here reads a wall clock; histograms
  and gauges record whatever (virtual-second) values callers pass, so
  two identical simulated runs produce byte-identical exports.
* **Cheap on the hot path.**  ``Counter.inc`` is one integer add on a
  pre-bound child object; no dict lookups, no string formatting.  The
  mapper's burst-dispatch path (200 jobs per clock instant) pays a few
  adds per job.
* **Deterministic rendering.**  :meth:`MetricsRegistry.render_prometheus`
  emits families sorted by name and children sorted by label values, and
  formats floats through one canonical function — equal runs serialise
  byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

#: Default histogram buckets, in virtual seconds: spans the sub-second
#: window units through multi-hour basecalling runs the paper measures.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 300.0, 1800.0, 3600.0, 21600.0, 86400.0,
)


class MetricsError(ValueError):
    """Misuse of the registry (name/type/label mismatches)."""


def format_value(value: float) -> str:
    """Canonical number formatting shared by every exporter.

    Integral values render without a decimal point (``3`` not ``3.0``)
    and everything else through ``repr``, which round-trips exactly —
    the byte-stability contract.
    """
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise MetricsError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise MetricsError(f"metric name cannot start with a digit: {name!r}")


def _label_key(
    labelnames: tuple[str, ...], labels: Mapping[str, str]
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise MetricsError(
            f"expected labels {sorted(labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class CounterChild:
    """One labelled series of a counter: monotone, increment-only."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"counters cannot decrease (inc by {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class GaugeChild:
    """One labelled series of a gauge: free set/inc/dec."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class HistogramChild:
    """One labelled series of a histogram: fixed buckets + sum + count."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)  # per-bucket (non-cumulative)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += value
        self.count += 1
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                self.counts[i] += 1
                break

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` identical observations in O(buckets).

        The fleet tier completes jobs in same-service-time *groups*;
        per-job ``observe`` calls would reintroduce the per-job cost the
        columnar path exists to avoid, so group latencies aggregate in
        one bulk fill.
        """
        if count <= 0:
            return
        value = float(value)
        self.total += value * count
        self.count += count
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                self.counts[i] += count
                break

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts, Prometheus ``le`` semantics."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


@dataclass
class _Family:
    """A named instrument family: type, help, labels, children."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    labelnames: tuple[str, ...]
    buckets: tuple[float, ...] = ()
    children: dict[tuple[str, ...], object] = field(default_factory=dict)

    def _new_child(self):
        if self.kind == "counter":
            return CounterChild()
        if self.kind == "gauge":
            return GaugeChild()
        return HistogramChild(self.buckets)

    def child(self, key: tuple[str, ...]):
        existing = self.children.get(key)
        if existing is None:
            existing = self.children[key] = self._new_child()
        return existing


class Instrument:
    """Handle to one family; label-less families proxy a default child."""

    def __init__(self, family: _Family) -> None:
        self._family = family
        self._default = family.child(()) if not family.labelnames else None

    @property
    def name(self) -> str:
        return self._family.name

    def labels(self, **labels: str):
        """The child series for one concrete label set (created lazily)."""
        family = self._family
        if not family.labelnames:
            raise MetricsError(f"{family.name} declares no labels")
        return family.child(_label_key(family.labelnames, labels))

    # -- label-less convenience proxies -------------------------------- #
    def _require_default(self):
        if self._default is None:
            raise MetricsError(
                f"{self._family.name} is labelled; use .labels(...) first"
            )
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    def observe_many(self, value: float, count: int) -> None:
        self._require_default().observe_many(value, count)

    @property
    def value(self) -> float:
        return self._require_default().value


class MetricsRegistry:
    """All instruments of one deployment, exported deterministically."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------ #
    # instrument creation (idempotent get-or-create)
    # ------------------------------------------------------------------ #
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Iterable[str],
        buckets: tuple[float, ...] = (),
    ) -> _Family:
        _validate_name(name)
        labelnames = tuple(labelnames)
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != labelnames:
                raise MetricsError(
                    f"{name} already registered as {existing.kind}"
                    f"{existing.labelnames}, cannot re-register as "
                    f"{kind}{labelnames}"
                )
            return existing
        family = _Family(
            name=name, kind=kind, help=help, labelnames=labelnames,
            buckets=buckets,
        )
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> Instrument:
        """Get or create a counter family."""
        return Instrument(self._family(name, "counter", help, labels))

    def gauge(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> Instrument:
        """Get or create a gauge family."""
        return Instrument(self._family(name, "gauge", help, labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Instrument:
        """Get or create a histogram family."""
        return Instrument(
            self._family(name, "histogram", help, labels, buckets=tuple(buckets))
        )

    # ------------------------------------------------------------------ #
    # introspection and export
    # ------------------------------------------------------------------ #
    def families(self) -> list[str]:
        """Registered family names, sorted."""
        return sorted(self._families)

    def value(self, name: str, **labels: str) -> float:
        """Current value of one counter/gauge series (0 if never touched)."""
        family = self._families.get(name)
        if family is None:
            raise MetricsError(f"no metric named {name!r}")
        if family.kind == "histogram":
            raise MetricsError(f"{name} is a histogram; read snapshot() instead")
        key = _label_key(family.labelnames, labels) if family.labelnames else ()
        child = family.children.get(key)
        return child.value if child is not None else 0.0

    def snapshot(self) -> dict:
        """Deterministic nested-dict view (for JSON summaries and tests).

        Series keys are rendered as ``name{a=x,b=y}`` with labels in
        declaration order, so the mapping is flat, sortable and stable.
        """
        out: dict[str, dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            series: dict[str, object] = {}
            for key in sorted(family.children):
                child = family.children[key]
                label_text = ",".join(
                    f"{ln}={lv}" for ln, lv in zip(family.labelnames, key)
                )
                series_name = f"{name}{{{label_text}}}" if label_text else name
                if family.kind == "histogram":
                    series[series_name] = {
                        "count": child.count,
                        "sum": round(child.total, 9),
                    }
                else:
                    series[series_name] = (
                        int(child.value)
                        if float(child.value).is_integer()
                        else child.value
                    )
            out[name] = {"type": family.kind, "series": series}
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format, byte-stable.

        Families sort by name, children by label values; every number
        goes through :func:`format_value`.  An instrument that was
        registered but never incremented still renders (value 0 for the
        default child), matching prometheus_client behaviour.
        """
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                label_text = ",".join(
                    f'{ln}="{lv}"' for ln, lv in zip(family.labelnames, key)
                )
                suffix = f"{{{label_text}}}" if label_text else ""
                if family.kind == "histogram":
                    cumulative = child.cumulative()
                    for upper, count in zip(family.buckets, cumulative):
                        le = format_value(upper)
                        bucket_labels = (
                            f'{label_text},le="{le}"' if label_text
                            else f'le="{le}"'
                        )
                        lines.append(
                            f"{name}_bucket{{{bucket_labels}}} {count}"
                        )
                    inf_labels = (
                        f'{label_text},le="+Inf"' if label_text else 'le="+Inf"'
                    )
                    lines.append(f"{name}_bucket{{{inf_labels}}} {child.count}")
                    lines.append(
                        f"{name}_sum{suffix} {format_value(child.total)}"
                    )
                    lines.append(f"{name}_count{suffix} {child.count}")
                else:
                    lines.append(
                        f"{name}{suffix} {format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")
