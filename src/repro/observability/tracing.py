"""Virtual-clock job tracing: spans and instants in the NVProf spirit.

The paper's observability story is device-side — a per-second hardware
usage monitor and NVProf hotspot tables.  This module adds the matching
*scheduler-side* story: every job's lifecycle (submit -> map -> queue ->
launch -> run -> complete/fail/resubmit) is recorded as timed spans with
the mapper's decision attributes attached, so one can see not just that
a job took N virtual seconds, but where those seconds went and why the
mapper placed it where it did.

All timestamps come from the deployment's :class:`~repro.gpusim.clock.
VirtualClock`, so traces are exactly reproducible: two identical runs
serialise byte for byte, which is what lets CI diff trace artifacts.

Zero overhead when disabled: layers hold :data:`NULL_TRACER` by default,
whose ``enabled`` is False and whose methods are no-ops; hot paths guard
attribute-dict construction behind ``tracer.enabled``, so the PR4 bench
numbers hold with tracing off.
"""

from __future__ import annotations

import itertools
from typing import Any

#: Span categories, used as Chrome-trace ``cat`` and for filtering.
CATEGORY_JOB = "job"
CATEGORY_MAPPER = "mapper"
CATEGORY_RUNNER = "runner"
CATEGORY_SCHEDULER = "scheduler"


class Span:
    """One timed phase of a job (or scheduler) lifecycle.

    ``end`` is ``None`` while the span is open; the exporter closes
    leftover spans at export time (a crashed stock-mode run legitimately
    leaves spans open — the trace shows exactly how far the job got).
    """

    __slots__ = ("span_id", "name", "category", "job_id", "start", "end",
                 "attributes", "seq")

    def __init__(
        self,
        span_id: int,
        name: str,
        category: str,
        job_id: int | None,
        start: float,
        seq: int,
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.category = category
        self.job_id = job_id
        self.start = start
        self.end: float | None = None
        self.attributes: dict[str, Any] = {}
        self.seq = seq

    @property
    def duration(self) -> float | None:
        """Span length in virtual seconds (None while open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, job={self.job_id}, {state})"


class SpanEvent:
    """An instantaneous annotation (resubmit hop, requeue, fault)."""

    __slots__ = ("name", "category", "job_id", "time", "attributes", "seq")

    def __init__(
        self,
        name: str,
        category: str,
        job_id: int | None,
        time: float,
        seq: int,
    ) -> None:
        self.name = name
        self.category = category
        self.job_id = job_id
        self.time = time
        self.attributes: dict[str, Any] = {}
        self.seq = seq


class Tracer:
    """Collects spans and instants against one virtual clock.

    The tracer is deliberately append-only and allocation-light: a span
    is one small object, attributes are plain dicts, and no export work
    happens until an exporter walks the lists.
    """

    enabled = True

    def __init__(self, clock) -> None:
        self.clock = clock
        self.spans: list[Span] = []
        self.events: list[SpanEvent] = []
        self._span_ids = itertools.count(1)
        self._seq = itertools.count()
        #: Open per-job root spans, so any layer can close a job's span
        #: without threading the object through the call stack.
        self._open_job_spans: dict[int, Span] = {}

    # ------------------------------------------------------------------ #
    # span lifecycle
    # ------------------------------------------------------------------ #
    def begin(
        self,
        name: str,
        category: str,
        job_id: int | None = None,
        **attributes: Any,
    ) -> Span:
        """Open a span starting now."""
        span = Span(
            span_id=next(self._span_ids),
            name=name,
            category=category,
            job_id=job_id,
            start=self.clock.now,
            seq=next(self._seq),
        )
        if attributes:
            span.attributes.update(attributes)
        self.spans.append(span)
        return span

    def end(self, span: Span | None, **attributes: Any) -> None:
        """Close a span now (idempotent; None is a no-op for guard-free call sites)."""
        if span is None or span.end is not None:
            return
        span.end = self.clock.now
        if attributes:
            span.attributes.update(attributes)

    def instant(
        self,
        name: str,
        category: str,
        job_id: int | None = None,
        **attributes: Any,
    ) -> SpanEvent:
        """Record an instantaneous event at the current virtual time."""
        event = SpanEvent(
            name=name,
            category=category,
            job_id=job_id,
            time=self.clock.now,
            seq=next(self._seq),
        )
        if attributes:
            event.attributes.update(attributes)
        self.events.append(event)
        return event

    # ------------------------------------------------------------------ #
    # per-job root spans
    # ------------------------------------------------------------------ #
    def begin_job(self, job_id: int, **attributes: Any) -> Span:
        """Open the root lifecycle span for one job (at submit)."""
        span = self.begin("job", CATEGORY_JOB, job_id=job_id, **attributes)
        self._open_job_spans[job_id] = span
        return span

    def end_job(self, job_id: int, **attributes: Any) -> None:
        """Close a job's root span (no-op when never opened / already closed)."""
        span = self._open_job_spans.pop(job_id, None)
        self.end(span, **attributes)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def for_job(self, job_id: int) -> list[Span]:  # gyan: disable=PERF602
        """All spans of one job, in recording order.

        A one-shot debugging accessor: exporters that visit every job
        group the spans into a dict in a single pass instead (see
        ``render_job_timeline``), so no hot path pays this scan.
        """
        return [s for s in self.spans if s.job_id == job_id]

    def job_ids(self) -> list[int]:
        """Distinct traced job ids, ascending."""
        ids = {s.job_id for s in self.spans if s.job_id is not None}
        ids.update(e.job_id for e in self.events if e.job_id is not None)
        return sorted(ids)

    def close_open_spans(self) -> int:
        """Close every still-open span at the current instant.

        Returns how many were closed.  Exporters call this so a crashed
        run still renders a complete, parseable trace.
        """
        closed = 0
        for span in self.spans:
            if span.end is None:
                span.end = self.clock.now
                span.attributes.setdefault("unclosed", True)
                closed += 1
        self._open_job_spans.clear()
        return closed


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Layers default to :data:`NULL_TRACER` so tracing costs one attribute
    read and a falsy check when off.
    """

    enabled = False
    spans: tuple = ()
    events: tuple = ()

    def begin(self, name, category, job_id=None, **attributes):
        return None

    def end(self, span, **attributes) -> None:
        return None

    def instant(self, name, category, job_id=None, **attributes):
        return None

    def begin_job(self, job_id, **attributes):
        return None

    def end_job(self, job_id, **attributes) -> None:
        return None

    def for_job(self, job_id) -> list:
        return []

    def job_ids(self) -> list:
        return []

    def close_open_spans(self) -> int:
        return 0


#: The shared disabled tracer; safe to use as a default everywhere.
NULL_TRACER = NullTracer()
