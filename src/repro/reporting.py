"""One-call regeneration of the paper's headline results.

The benchmark suite is the authoritative reproduction harness; this
module is the lightweight operational companion — it runs every headline
experiment in-process and renders one consolidated text report (used by
``python -m repro experiment all`` and by release sanity checks).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.core import build_deployment
from repro.gpusim.profiler import CudaProfiler
from repro.tools.bonito.perf_model import BonitoPerfModel
from repro.tools.executors import register_paper_tools
from repro.tools.racon.perf_model import RaconPerfModel
from repro.workloads.datasets import ACINETOBACTER_PITTII, KLEBSIELLA_KSB2


@dataclass
class HeadlineResults:
    """Every headline quantity, as regenerated (not hard-coded)."""

    racon_cpu_unit_4t: float = 0.0
    racon_gpu_best_unbanded: tuple[int, int, float] = (0, 0, 0.0)
    racon_gpu_best_banded: tuple[int, int, float] = (0, 0, 0.0)
    racon_container_best_unbanded: tuple[int, int, float] = (0, 0, 0.0)
    racon_container_best_banded: tuple[int, int, float] = (0, 0, 0.0)
    racon_cpu_e2e: float = 0.0
    racon_gpu_e2e: float = 0.0
    racon_gpu_breakdown: dict[str, float] = field(default_factory=dict)
    bonito_cpu_hours: dict[str, float] = field(default_factory=dict)
    bonito_gpu_hours: dict[str, float] = field(default_factory=dict)
    stalls: dict[str, float] = field(default_factory=dict)

    @property
    def racon_speedup(self) -> float:
        """End-to-end Racon speedup (paper: ~2x)."""
        return self.racon_cpu_e2e / self.racon_gpu_e2e if self.racon_gpu_e2e else 0.0


def collect_headline_results() -> HeadlineResults:
    """Run the models and one profiled dataset job; collect everything."""
    results = HeadlineResults()
    racon = RaconPerfModel()
    results.racon_cpu_unit_4t = racon.cpu_unit_time(4)
    results.racon_gpu_best_unbanded = racon.best_gpu_config(banded=False)
    results.racon_gpu_best_banded = racon.best_gpu_config(banded=True)
    results.racon_container_best_unbanded = racon.best_gpu_config(
        banded=False, containerized=True
    )
    results.racon_container_best_banded = racon.best_gpu_config(
        banded=True, containerized=True
    )
    cpu_timing = racon.cpu_end_to_end()
    gpu_timing = racon.gpu_end_to_end()
    results.racon_cpu_e2e = cpu_timing.total_seconds
    results.racon_gpu_e2e = gpu_timing.total_seconds
    results.racon_gpu_breakdown = dict(gpu_timing.breakdown)

    bonito = BonitoPerfModel()
    for dataset in (ACINETOBACTER_PITTII, KLEBSIELLA_KSB2):
        results.bonito_cpu_hours[dataset.name] = bonito.cpu_time(dataset).total_hours
        results.bonito_gpu_hours[dataset.name] = bonito.gpu_time(dataset).total_hours

    deployment = build_deployment()
    register_paper_tools(deployment.app)
    deployment.app.profiler = CudaProfiler()
    deployment.run_tool("racon", {"workload": "dataset"})
    results.stalls = deployment.app.profiler.stall_analysis().as_dict()
    return results


def render_report(results: HeadlineResults | None = None) -> str:
    """The consolidated paper-vs-measured text report."""
    results = results or collect_headline_results()
    out = io.StringIO()

    def line(label: str, measured: str, paper: str) -> None:
        out.write(f"{label:<44}{measured:>18}{paper:>16}\n")

    out.write("GYAN reproduction — headline results\n")
    out.write("=" * 78 + "\n")
    line("quantity", "measured", "paper")
    out.write("-" * 78 + "\n")
    t, b, s = results.racon_gpu_best_unbanded
    line("Racon GPU best (unbanded)", f"{s:.2f}s @ {t}t/{b}b", "1.72s @ 4t/1b")
    t, b, s = results.racon_gpu_best_banded
    line("Racon GPU best (banded)", f"{s:.2f}s @ {t}t/{b}b", "1.67s @ 4t/16b")
    line("Racon CPU unit (4 threads)", f"{results.racon_cpu_unit_4t:.2f}s", "3.22s")
    t, b, s = results.racon_container_best_unbanded
    line("container best (unbanded)", f"{t}t/{b}b", "2t/4b")
    t, b, s = results.racon_container_best_banded
    line("container best (banded)", f"{t}t/{b}b", "2t/8b")
    line("Racon CPU end-to-end", f"{results.racon_cpu_e2e:.0f}s", "~410s")
    line("Racon GPU end-to-end", f"{results.racon_gpu_e2e:.0f}s", "~200s")
    line("Racon speedup", f"{results.racon_speedup:.2f}x", "~2x")
    line(
        "GPU polish (alloc+kernels+tail)",
        f"{results.racon_gpu_breakdown.get('gpu_alloc', 0) + results.racon_gpu_breakdown.get('gpu_kernels', 0) + results.racon_gpu_breakdown.get('cpu_tail', 0):.1f}s",
        "15s",
    )
    line(
        "CUDA API overhead",
        f"{results.racon_gpu_breakdown.get('cuda_api_overhead', 0):.1f}s",
        "~40s",
    )
    for name in (ACINETOBACTER_PITTII.name, KLEBSIELLA_KSB2.name):
        cpu_h = results.bonito_cpu_hours[name]
        gpu_h = results.bonito_gpu_hours[name]
        line(f"Bonito {name} CPU", f"{cpu_h:.0f}h", ">210h" if "pittii" in name else "~4x")
        line(f"Bonito {name} speedup", f"{cpu_h / gpu_h:.0f}x", ">50x")
    line(
        "stalls mem/exec/other",
        "/".join(f"{results.stalls.get(k, 0):.0f}" for k in
                 ("memory_dependency", "execution_dependency", "other")),
        "~70/~20/-",
    )
    return out.getvalue()
