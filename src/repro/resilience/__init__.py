"""repro.resilience — overload protection for the whole job path.

Bounded queues with backpressure, virtual-clock deadlines and runtime
budgets, circuit breakers around NVML probes and runner launches, and a
brownout ladder that degrades GPU mapping for low-benefit tools before
shedding jobs outright.  See ``docs/overload.md``.
"""

from repro.resilience.breaker import (
    BreakerOpenError,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.brownout import (
    MAX_BROWNOUT_LEVEL,
    TOOL_GPU_BENEFIT,
    BrownoutConfig,
    BrownoutController,
)
from repro.resilience.overload import (
    DEADLINE_PARAM,
    QUEUE_DEPTH_PARAM,
    RUNTIME_BUDGET_PARAM,
    OverloadController,
    destination_deadline_s,
    destination_queue_limit,
    destination_runtime_budget_s,
)
from repro.resilience.shedding import RejectedBusy, ShedReason

__all__ = [
    "BreakerOpenError",
    "BreakerState",
    "CircuitBreaker",
    "BrownoutConfig",
    "BrownoutController",
    "MAX_BROWNOUT_LEVEL",
    "TOOL_GPU_BENEFIT",
    "OverloadController",
    "QUEUE_DEPTH_PARAM",
    "DEADLINE_PARAM",
    "RUNTIME_BUDGET_PARAM",
    "destination_queue_limit",
    "destination_deadline_s",
    "destination_runtime_budget_s",
    "RejectedBusy",
    "ShedReason",
]
