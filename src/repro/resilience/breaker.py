"""Virtual-clock circuit breakers for NVML probes and runner launches.

A breaker sits in front of a flaky dependency and stops hammering it
once it has clearly failed: after ``failure_threshold`` consecutive
failures the breaker *opens* and every call fails fast with
:class:`BreakerOpenError` (no retry storm, no burned backoff budget).
After ``reset_timeout_s`` virtual seconds it moves to *half-open* and
lets a single trial call through; success closes it again, failure
re-opens it for another timeout.

The state machine is the classic closed → open → half-open triangle,
advanced lazily off the deployment's :class:`~repro.gpusim.clock.
VirtualClock` — no timers are registered, so breakers add nothing to
the clock's heap and cannot perturb schedule permutations (gyan-race
stays quiet).  Transitions are recorded (time, from, to) for tests and
exported through the ``gyan_overload_breaker_transitions_total``
counter plus a tracer instant when wired by the orchestrator.
"""

from __future__ import annotations

import enum
from typing import Callable


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class BreakerOpenError(RuntimeError):
    """Fast-fail raised while a breaker is open (retry after ``retry_at``)."""

    def __init__(self, name: str, retry_at: float) -> None:
        super().__init__(
            f"circuit breaker {name!r} is open (retry at t={retry_at:g})"
        )
        self.breaker_name = name
        self.retry_at = retry_at


class CircuitBreaker:
    """Closed → open → half-open breaker on the virtual clock.

    Parameters
    ----------
    clock:
        Anything with a ``now`` attribute (the deployment's
        ``VirtualClock``).  Time only ever moves through it.
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_timeout_s:
        Virtual seconds to stay open before allowing a half-open trial.
    on_transition:
        Optional ``fn(now, old_state, new_state)`` hook; the
        orchestrator uses it to bump metrics, emit tracer instants, and
        append :class:`~repro.core.health.HealthEvent` entries so
        breaker trips show up next to quarantine history.
    """

    def __init__(
        self,
        clock,
        name: str,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        on_transition: Callable[[float, BreakerState, BreakerState], None]
        | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        self.clock = clock
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.on_transition = on_transition
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: (time, from, to) triples, in order — the auditable history.
        self.transitions: list[tuple[float, BreakerState, BreakerState]] = []

    # -- state ---------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        """Current state, advancing OPEN → HALF_OPEN lazily off the clock."""
        if (
            self._state is BreakerState.OPEN
            and self.clock.now >= self._opened_at + self.reset_timeout_s
        ):
            self._transition(BreakerState.HALF_OPEN)
        return self._state

    @property
    def retry_at(self) -> float:
        """Earliest virtual time a half-open trial will be allowed."""
        return self._opened_at + self.reset_timeout_s

    def allows(self) -> bool:
        """Would a call be let through right now?"""
        return self.state is not BreakerState.OPEN

    # -- outcome recording --------------------------------------------

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> bool:
        """Record one failure; return True when this trip *opened* the breaker."""
        state = self.state
        if state is BreakerState.HALF_OPEN:
            # The trial call failed: straight back to open for another
            # full timeout.
            self._open()
            return True
        self._consecutive_failures += 1
        if (
            state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._open()
            return True
        return False

    def call(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` through the breaker (fast-fail when open)."""
        if not self.allows():
            raise BreakerOpenError(self.name, self.retry_at)
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    # -- internals -----------------------------------------------------

    def _open(self) -> None:
        self._opened_at = self.clock.now
        self._consecutive_failures = 0
        self._transition(BreakerState.OPEN)

    def _transition(self, new_state: BreakerState) -> None:
        old = self._state
        if old is new_state:
            return
        self._state = new_state
        now = self.clock.now
        self.transitions.append((now, old, new_state))
        if self.on_transition is not None:
            self.on_transition(now, old, new_state)
