"""Brownout ladder: progressive GPU-degradation before job shedding.

Under sustained saturation a deployment should not fall off a cliff —
it should *brown out*: first give up the accelerations that buy the
least, then the rest, and only shed work as the last rung.  The ladder
is keyed by each tool's GPU benefit (the paper's end-to-end speedups:
Bonito basecalling is >50×, Racon polishing ~2×), so the capacity
reclaimed first is the capacity that was doing the least good:

==== =====================================================
rung behaviour
==== =====================================================
0    normal operation — mapper decides freely
1    low-benefit tools (speedup ≤ ``low_benefit_max``) lose
     GPU mapping and run on CPU
2    every non-pinned tool loses GPU mapping
3    new low-benefit jobs are shed outright (typed
     :data:`~repro.resilience.shedding.ShedReason.BROWNOUT_SHED`)
==== =====================================================

Escalation is hysteretic and fully deterministic on the virtual clock:
the saturation signal (bounded-queue depth ÷ limit, fed by the
:class:`~repro.resilience.overload.OverloadController`) must stay at or
above ``saturation_threshold`` for ``sustain_s`` virtual seconds to
climb one rung, and below it for ``recover_s`` to step back down —
a single burst spike cannot flap the ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: End-to-end GPU-vs-CPU benefit per shipped tool, from the paper's
#: evaluation: Bonito "more than 50x", Racon ~2x end to end; seqstats is
#: a CPU utility with no GPU path at all.
TOOL_GPU_BENEFIT: dict[str, float] = {
    "bonito": 52.0,
    "racon": 2.0,
    "seqstats": 1.0,
}

#: Highest brownout rung.
MAX_BROWNOUT_LEVEL = 3


@dataclass(frozen=True)
class BrownoutConfig:
    """Knobs of the brownout ladder (all times in virtual seconds)."""

    saturation_threshold: float = 0.8
    sustain_s: float = 4.0
    recover_s: float = 8.0
    low_benefit_max: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 < self.saturation_threshold <= 1.0:
            raise ValueError("saturation_threshold must be in (0, 1]")
        if self.sustain_s <= 0 or self.recover_s <= 0:
            raise ValueError("sustain_s and recover_s must be positive")
        if self.low_benefit_max < 1.0:
            raise ValueError("low_benefit_max must be >= 1.0")


@dataclass
class BrownoutController:
    """Hysteretic load-shedding ladder driven by an external saturation signal."""

    config: BrownoutConfig = field(default_factory=BrownoutConfig)
    benefits: dict[str, float] = field(
        default_factory=lambda: dict(TOOL_GPU_BENEFIT)
    )
    level: int = 0
    #: (time, old_level, new_level) history for tests and observability.
    transitions: list[tuple[float, int, int]] = field(default_factory=list)
    _saturated_since: float | None = field(default=None, repr=False)
    _calm_since: float | None = field(default=None, repr=False)

    # -- signal ingestion ---------------------------------------------

    def observe(self, saturation: float, now: float) -> int:
        """Feed one saturation sample (depth/limit ratio); return the level.

        Deterministic: the level only depends on the sequence of
        (saturation, now) samples, which the overload controller emits
        at admission/release points on the virtual clock.
        """
        if saturation >= self.config.saturation_threshold:
            self._calm_since = None
            if self._saturated_since is None:
                self._saturated_since = now
            elif (
                now - self._saturated_since >= self.config.sustain_s
                and self.level < MAX_BROWNOUT_LEVEL
            ):
                self._set_level(self.level + 1, now)
                self._saturated_since = now
        else:
            self._saturated_since = None
            if self._calm_since is None:
                self._calm_since = now
            elif (
                now - self._calm_since >= self.config.recover_s
                and self.level > 0
            ):
                self._set_level(self.level - 1, now)
                self._calm_since = now
        return self.level

    # -- policy queries -----------------------------------------------

    def benefit(self, tool_id: str) -> float:
        return self.benefits.get(tool_id, 1.0)

    def is_low_benefit(self, tool_id: str) -> bool:
        return self.benefit(tool_id) <= self.config.low_benefit_max

    def allows_gpu(self, tool_id: str) -> bool:
        """May this tool still be mapped to a GPU at the current rung?"""
        if self.level >= 2:
            return False
        if self.level >= 1 and self.is_low_benefit(tool_id):
            return False
        return True

    def should_shed(self, tool_id: str) -> bool:
        """Is the ladder at its shed rung for this tool class?"""
        return self.level >= MAX_BROWNOUT_LEVEL and self.is_low_benefit(tool_id)

    # -- internals -----------------------------------------------------

    def _set_level(self, new_level: int, now: float) -> None:
        old = self.level
        if old == new_level:
            return
        self.level = new_level
        self.transitions.append((now, old, new_level))

    @property
    def peak_level(self) -> int:
        """Highest rung the ladder ever reached."""
        if not self.transitions:
            return self.level
        return max(new for _, _, new in self.transitions)
