"""The overload controller: bounded destinations, deadlines, brownout.

One controller per deployment owns every piece of overload state the
job path consults:

* **per-destination inflight accounting** against each destination's
  ``max_queue_depth`` param — :meth:`admit` raises
  :class:`~repro.resilience.shedding.RejectedBusy` at the limit and
  :meth:`release` is idempotent per job, so a crashed launch can never
  leak a slot;
* **deadline stamping and expiry checks** (``deadline_s`` param, or the
  controller-wide default) on the virtual clock;
* **runtime budgets** (``runtime_budget_s`` param) that the runner's
  finish path uses to kill overlong jobs into the resubmit chain;
* the **brownout ladder** — every admit/release feeds the saturation
  signal (max depth÷limit over bounded destinations) into the
  :class:`~repro.resilience.brownout.BrownoutController`;
* all ``gyan_overload_*`` counters and gauges, plus shed/breaker tracer
  instants.

The controller never reads a wall clock and keeps no unordered state
that reaches an output — peaks and shed records are accumulated in
deterministic admission order, so byte-stable summaries fall out for
free.
"""

from __future__ import annotations

from repro.galaxy.job import JobState
from repro.resilience.brownout import BrownoutController
from repro.resilience.shedding import RejectedBusy, ShedReason

#: ``<param id="max_queue_depth">`` — inflight bound of one destination.
QUEUE_DEPTH_PARAM = "max_queue_depth"
#: ``<param id="deadline_s">`` — queue-to-start deadline for jobs routed here.
DEADLINE_PARAM = "deadline_s"
#: ``<param id="runtime_budget_s">`` — kill threshold for running jobs.
RUNTIME_BUDGET_PARAM = "runtime_budget_s"


def _float_param(destination, name: str) -> float | None:
    raw = destination.params.get(name)
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def destination_queue_limit(destination) -> int | None:
    """Parse a destination's ``max_queue_depth`` param (None = unbounded)."""
    raw = destination.params.get(QUEUE_DEPTH_PARAM)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def destination_deadline_s(destination) -> float | None:
    """Parse a destination's ``deadline_s`` param (None = no deadline)."""
    return _float_param(destination, DEADLINE_PARAM)


def destination_runtime_budget_s(destination) -> float | None:
    """Parse a destination's ``runtime_budget_s`` param (None = unlimited)."""
    return _float_param(destination, RUNTIME_BUDGET_PARAM)


class OverloadController:
    """Deployment-wide overload state: admission, deadlines, brownout."""

    def __init__(
        self,
        clock,
        metrics=None,
        tracer=None,
        brownout: BrownoutController | None = None,
        default_deadline_s: float | None = None,
    ) -> None:
        self.clock = clock
        self.tracer = tracer
        self.brownout = brownout
        self.default_deadline_s = default_deadline_s
        self._inflight: dict[str, int] = {}
        self._limit_cache: dict[str, int | None] = {}
        self._admitted: dict[int, str] = {}  # job_id -> destination_id
        self.peak_inflight: dict[str, int] = {}
        #: (job_id, tool_id, reason-value) in shed order.
        self.shed_records: list[tuple[int, str, str]] = []
        self._c_shed = self._c_rejected = self._c_redirects = None
        self._c_runtime_kills = self._c_breaker = None
        self._g_inflight = self._g_brownout = None
        if metrics is not None:
            self._c_shed = metrics.counter(
                "gyan_overload_shed_total",
                "Jobs refused or dropped by the overload layer, by typed reason.",
                labels=("reason",),
            )
            self._c_rejected = metrics.counter(
                "gyan_overload_rejected_busy_total",
                "Admission attempts bounced off a full destination queue.",
                labels=("destination",),
            )
            self._c_redirects = metrics.counter(
                "gyan_overload_redirects_total",
                "Jobs re-routed along a degrade arm after REJECTED_BUSY.",
            )
            self._c_runtime_kills = metrics.counter(
                "gyan_overload_runtime_kills_total",
                "Running jobs killed past their destination runtime budget.",
            )
            self._c_breaker = metrics.counter(
                "gyan_overload_breaker_transitions_total",
                "Circuit-breaker state transitions.",
                labels=("breaker", "to_state"),
            )
            self._g_inflight = metrics.gauge(
                "gyan_overload_inflight",
                "Jobs currently admitted to (and not released from) a destination.",
                labels=("destination",),
            )
            self._g_brownout = metrics.gauge(
                "gyan_overload_brownout_level",
                "Current rung of the brownout degradation ladder.",
            )

    # -- admission ------------------------------------------------------

    def depth(self, destination_id: str) -> int:
        return self._inflight.get(destination_id, 0)

    def saturation(self) -> float:
        """Worst depth÷limit ratio across bounded destinations (0 when none)."""
        worst = 0.0
        for dest_id, limit in sorted(self._limit_cache.items()):
            if limit:
                worst = max(worst, self._inflight.get(dest_id, 0) / limit)
        return worst

    def has_room(self, destination) -> bool:
        limit = self._cached_limit(destination)
        return limit is None or self.depth(destination.destination_id) < limit

    def admit(self, job, destination) -> None:
        """Admit one job to a destination or raise :class:`RejectedBusy`.

        Safe to call once per launch attempt; a job already admitted to
        the same destination (launch retry after a transient failure)
        is a no-op rather than double-counted.
        """
        dest_id = destination.destination_id
        if self._admitted.get(job.job_id) == dest_id:
            return
        limit = self._cached_limit(destination)
        depth = self.depth(dest_id)
        if limit is not None and depth >= limit:
            if self._c_rejected is not None:
                self._c_rejected.labels(destination=dest_id).inc()
            self._observe_brownout()
            raise RejectedBusy(
                dest_id, ShedReason.QUEUE_FULL, depth=depth, limit=limit
            )
        # Moving between destinations (degrade redirect mid-flight)
        # releases the old slot first.
        self.release(job)
        self._inflight[dest_id] = depth + 1
        self._admitted[job.job_id] = dest_id
        self.peak_inflight[dest_id] = max(
            self.peak_inflight.get(dest_id, 0), depth + 1
        )
        if self._g_inflight is not None:
            self._g_inflight.labels(destination=dest_id).set(depth + 1)
        self._observe_brownout()

    def release(self, job) -> None:
        """Release a job's admission slot (idempotent)."""
        dest_id = self._admitted.pop(job.job_id, None)
        if dest_id is None:
            return
        remaining = max(0, self._inflight.get(dest_id, 0) - 1)
        self._inflight[dest_id] = remaining
        if self._g_inflight is not None:
            self._g_inflight.labels(destination=dest_id).set(remaining)
        self._observe_brownout()

    def admitted_destination(self, job) -> str | None:
        return self._admitted.get(job.job_id)

    def _cached_limit(self, destination) -> int | None:
        dest_id = destination.destination_id
        if dest_id not in self._limit_cache:
            self._limit_cache[dest_id] = destination_queue_limit(destination)
        return self._limit_cache[dest_id]

    # -- deadlines and budgets -----------------------------------------

    def deadline_for(self, destination, submitted_at: float) -> float | None:
        """Absolute deadline for a job submitted at ``submitted_at``."""
        window = destination_deadline_s(destination)
        if window is None:
            window = self.default_deadline_s
        if window is None:
            return None
        return submitted_at + window

    def expired(self, job, now: float | None = None) -> bool:
        deadline = job.metrics.deadline
        if deadline is None:
            return False
        return (self.clock.now if now is None else now) > deadline

    def runtime_budget(self, destination) -> float | None:
        return destination_runtime_budget_s(destination)

    def record_runtime_kill(self) -> None:
        if self._c_runtime_kills is not None:
            self._c_runtime_kills.inc()

    def record_redirect(self) -> None:
        if self._c_redirects is not None:
            self._c_redirects.inc()

    # -- shedding -------------------------------------------------------

    def shed(self, job, reason: ShedReason, note: str = "") -> None:
        """Refuse a job with a typed reason (NEW/QUEUED → DELETED)."""
        now = self.clock.now
        self.release(job)
        if not job.is_terminal:
            job.transition(JobState.DELETED, now=now)
        job.metrics.shed_reason = reason.value
        message = f"shed: {reason.value}"
        if note:
            message += f" ({note})"
        job.stderr += message if not job.stderr else "\n" + message
        self.shed_records.append((job.job_id, job.tool.tool_id, reason.value))
        if self._c_shed is not None:
            self._c_shed.labels(reason=reason.value).inc()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(
                "shed", "job", job_id=job.job_id, reason=reason.value
            )
            self.tracer.end_job(job.job_id, state=str(job.state))

    @property
    def shed_count(self) -> int:
        return len(self.shed_records)

    def shed_by_reason(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for _, _, reason in self.shed_records:
            counts[reason] = counts.get(reason, 0) + 1
        return dict(sorted(counts.items()))

    # -- brownout + breakers -------------------------------------------

    def should_shed(self, tool_id: str) -> bool:
        return self.brownout is not None and self.brownout.should_shed(tool_id)

    def allows_gpu(self, tool_id: str) -> bool:
        return self.brownout is None or self.brownout.allows_gpu(tool_id)

    def _observe_brownout(self) -> None:
        if self.brownout is None:
            return
        level = self.brownout.observe(self.saturation(), self.clock.now)
        if self._g_brownout is not None:
            self._g_brownout.set(level)

    def record_breaker_transition(self, name: str, now: float, new_state) -> None:
        """Metrics/trace hook the orchestrator wires into each breaker."""
        if self._c_breaker is not None:
            self._c_breaker.labels(breaker=name, to_state=str(new_state)).inc()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(
                "breaker", "runner", breaker=name, state=str(new_state)
            )
