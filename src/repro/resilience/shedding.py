"""Typed shed reasons and the overload-rejection exception.

Everything the overload layer refuses to run carries one of these
reasons, end to end: the scheduler stamps it on shed
:class:`~repro.cluster.scheduler.ScheduledJob` entries, the Galaxy app
writes it into ``job.metrics.shed_reason``, the storm driver buckets its
summary by it, and the ``gyan_overload_shed_total{reason=...}`` counter
is labelled with it.  A shed job is *not* a lost job — loss means the
system accepted work and then dropped it silently; shedding is an
explicit, typed, observable refusal.
"""

from __future__ import annotations

import enum


class ShedReason(str, enum.Enum):
    """Why the overload layer refused (or stopped) a piece of work."""

    #: A bounded queue/destination was at its depth limit and no degrade
    #: route had room.
    QUEUE_FULL = "queue_full"
    #: The job's virtual-clock deadline passed while it was still queued.
    DEADLINE_EXPIRED = "deadline_expired"
    #: The job ran past its destination's runtime budget and was killed.
    RUNTIME_BUDGET_EXCEEDED = "runtime_budget_exceeded"
    #: A circuit breaker guarding the launch/probe path was open.
    BREAKER_OPEN = "breaker_open"
    #: The brownout ladder reached its shed rung for this tool class.
    BROWNOUT_SHED = "brownout_shed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class RejectedBusy(Exception):
    """A bounded queue refused new work (the REJECTED_BUSY signal).

    Raised by :meth:`ClusterScheduler.submit` and
    :meth:`OverloadController.admit` when a depth limit is hit.  Callers
    are expected to *handle* it — resubmit along a degrade route, hold
    the job under backpressure, or shed it with a typed reason — never
    to let it crash a deployment.
    """

    def __init__(
        self,
        where: str,
        reason: ShedReason = ShedReason.QUEUE_FULL,
        depth: int | None = None,
        limit: int | None = None,
    ) -> None:
        detail = f"{where}: {reason.value}"
        if depth is not None and limit is not None:
            detail += f" (depth {depth} >= limit {limit})"
        super().__init__(detail)
        self.where = where
        self.reason = reason
        self.depth = depth
        self.limit = limit
