"""Bioinformatics tools: the paper's two workloads, built from scratch.

* :mod:`repro.tools.racon` — a working POA-consensus polisher (the
  paper's Racon): pairwise and banded alignment, partial-order alignment
  graphs, windowed consensus, and a batched "CUDA" execution path through
  the GPU simulator.
* :mod:`repro.tools.bonito` — a working basecaller (the paper's Bonito):
  a k-mer pore model, squiggle simulation, GEMM-based frame scoring
  (the CNN analogue), CTC-style decoding, and CPU/GPU execution paths.
* :mod:`repro.tools.seqio` — FASTA/FASTQ/PAF/FAST5-like containers.
* :mod:`repro.tools.mapping` — a minimizer-seed read-to-backbone mapper
  producing the PAF records Racon consumes.
* :mod:`repro.tools.executors` — Galaxy tool executors binding both
  tools (and their perf models) into the mini-Galaxy runner layer.
"""
