"""A miniature OLC (overlap-layout-consensus) assembler.

The paper's §V-A motivates Racon with the assembly pipeline: "An
assembler outputs long reference sequences for shorter read segments as
it predicts sources of these reads.  The assembler first constructs a
draft backbone sequence of the reference.  It then aligns the reads to
that backbone and corrects each position ..."  To exercise that full
pipeline on real (miniature) data, this module provides the missing
first stage: a greedy overlap-layout assembler in the spirit of miniasm —
all-vs-all minimizer overlaps, greedy non-branching extension, and a
draft backbone stitched from the layout path.

It is deliberately small (no transitive reduction, no unitig graph
cleaning, single contig target) but *real*: on simulated read sets it
reconstructs the genome to draft accuracy, which Racon then measurably
improves — the exact relationship the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tools.mapping import MinimizerIndex, minimizers
from repro.tools.seqio.records import SeqRecord


@dataclass(frozen=True)
class Overlap:
    """A suffix-prefix overlap between two reads (forward strands)."""

    a_name: str
    b_name: str
    a_hang: int  # start of the overlap on read a
    length: int  # approximate overlap length
    shared_minimizers: int

    @property
    def score(self) -> int:
        """Greedy selection score: longer + better-supported wins."""
        return self.shared_minimizers * 1000 + self.length

    def extension(self, b_length: int) -> int:
        """New bases appending ``b`` contributes to the contig."""
        return b_length - self.length


@dataclass
class AssemblyResult:
    """Outcome of one assembly run."""

    contig: SeqRecord
    layout: list[str] = field(default_factory=list)
    used_reads: int = 0
    overlaps_considered: int = 0

    def __len__(self) -> int:
        return len(self.contig)


class GreedyAssembler:
    """Greedy suffix-prefix assembly over minimizer overlaps.

    Parameters
    ----------
    k / w:
        Minimizer parameters for overlap detection.
    min_overlap:
        Smallest usable overlap length in bases.
    min_shared:
        Minimum shared minimizers for a candidate overlap.
    """

    def __init__(
        self,
        k: int = 13,
        w: int = 5,
        min_overlap: int = 40,
        min_shared: int = 3,
    ) -> None:
        if min_overlap <= k:
            raise ValueError("min_overlap must exceed k")
        self.k = k
        self.w = w
        self.min_overlap = min_overlap
        self.min_shared = min_shared

    # ------------------------------------------------------------------ #
    # overlap detection
    # ------------------------------------------------------------------ #
    def find_suffix_prefix_overlap(
        self, a: SeqRecord, b: SeqRecord
    ) -> Overlap | None:
        """Best suffix(a)-prefix(b) overlap via minimizer diagonals."""
        index = MinimizerIndex.build(a, k=self.k, w=self.w)
        hits = index.seeds(b.sequence)
        if len(hits) < self.min_shared:
            return None
        # Diagonal d = a_pos - b_pos; suffix-prefix overlaps have d > 0
        # (b's start maps inside a) with overlap length = len(a) - d.
        from collections import Counter

        diagonals = Counter((apos - bpos) // 25 for bpos, apos in hits)
        best_bin, support = diagonals.most_common(1)[0]
        if support < self.min_shared:
            return None
        diagonal = best_bin * 25
        if diagonal <= 0:
            return None
        overlap_length = len(a) - diagonal
        if overlap_length < self.min_overlap or overlap_length > len(b):
            return None
        return Overlap(
            a_name=a.name,
            b_name=b.name,
            a_hang=diagonal,
            length=overlap_length,
            shared_minimizers=support,
        )

    def all_overlaps(self, reads: list[SeqRecord]) -> list[Overlap]:
        """All pairwise suffix-prefix overlaps above the thresholds.

        O(n^2) with minimizer pre-screening — adequate at miniature
        scale (the real pipeline would use an all-vs-all mapper).
        """
        # Pre-screen with a shared minimizer sketch per read.
        sketches = {
            read.name: {code for code, _ in minimizers(read.sequence, self.k, self.w)}
            for read in reads
        }
        overlaps: list[Overlap] = []
        for a in reads:
            for b in reads:
                if a.name == b.name:
                    continue
                if len(sketches[a.name] & sketches[b.name]) < self.min_shared:
                    continue
                overlap = self.find_suffix_prefix_overlap(a, b)
                if overlap is not None:
                    overlaps.append(overlap)
        return overlaps

    # ------------------------------------------------------------------ #
    # layout + stitch
    # ------------------------------------------------------------------ #
    def assemble(self, reads: list[SeqRecord]) -> AssemblyResult:
        """Greedy layout: start at the read with no good predecessor,
        repeatedly follow the best outgoing overlap, stitch the path."""
        if not reads:
            raise ValueError("no reads to assemble")
        by_name = {read.name: read for read in reads}
        if len(by_name) != len(reads):
            raise ValueError("duplicate read names")
        overlaps = self.all_overlaps(reads)
        # Greedy successor: among a read's outgoing overlaps, take the
        # one that EXTENDS the contig furthest (support already gated by
        # the detection thresholds); containments extend by <= 0 and are
        # skipped.
        best_out: dict[str, Overlap] = {}
        has_in: set[str] = set()
        for overlap in overlaps:
            if overlap.extension(len(by_name[overlap.b_name])) <= 0:
                continue
            current = best_out.get(overlap.a_name)
            if current is None or overlap.extension(
                len(by_name[overlap.b_name])
            ) > current.extension(len(by_name[current.b_name])):
                best_out[overlap.a_name] = overlap
        for overlap in best_out.values():
            has_in.add(overlap.b_name)

        # Candidate starts: reads nothing extends into.  Greedy chains
        # from different starts cover different genome spans; walk each
        # and keep the longest contig.
        starts = [r.name for r in reads if r.name not in has_in and r.name in best_out]
        if not starts:
            starts = [max(by_name, key=lambda name: len(by_name[name]))]

        best_contig = ""
        best_layout: list[str] = []
        for start in starts:
            layout = [start]
            visited = {start}
            contig = by_name[start].sequence
            cursor = start
            while cursor in best_out:
                overlap = best_out[cursor]
                nxt = overlap.b_name
                if nxt in visited:
                    break  # cycle guard
                contig += by_name[nxt].sequence[overlap.length :]
                layout.append(nxt)
                visited.add(nxt)
                cursor = nxt
            if len(contig) > len(best_contig):
                best_contig = contig
                best_layout = layout

        return AssemblyResult(
            contig=SeqRecord(name="contig_0", sequence=best_contig),
            layout=best_layout,
            used_reads=len(best_layout),
            overlaps_considered=len(overlaps),
        )


def assemble_and_polish(
    reads: list[SeqRecord],
    assembler: GreedyAssembler | None = None,
    window_length: int = 250,
):
    """The §V-A pipeline on real data: assemble, map back, polish.

    Returns (draft AssemblyResult, polished PolishResult).
    """
    from repro.tools.mapping import MinimizerMapper
    from repro.tools.racon.consensus import RaconPolisher

    assembler = assembler or GreedyAssembler()
    assembly = assembler.assemble(reads)
    mapper = MinimizerMapper(assembly.contig, k=assembler.k, w=assembler.w)
    mappings = mapper.map_reads(reads)
    polisher = RaconPolisher(window_length=window_length)
    polish = polisher.polish(assembly.contig, reads, mappings)
    return assembly, polish
