"""Bonito: a nanopore basecaller, CPU and (simulated) GPU.

Oxford Nanopore's Bonito converts raw pore current ("squiggles") into
nucleotide sequences with a convolutional network decoded CTC-style; its
GPU runtime is dominated by GEMM kernels (paper Fig. 6).  This package
implements a working basecaller over simulated squiggles:

* :mod:`signal` — a k-mer pore model and squiggle synthesis (the FAST5
  dataset substitute);
* :mod:`model` — conv/GEMM layers (im2col + matrix multiply), with an
  analytically constructed template-matching network so no training data
  is needed;
* :mod:`ctc` — CTC-style greedy and beam decoding over logit matrices;
* :mod:`basecaller` — the end-to-end pipeline (segmentation, GEMM
  scoring, sequence emission), with identical CPU and GPU numerics and
  device-accounted GEMM time on the GPU path;
* :mod:`perf_model` — the calibrated paper-scale model behind Fig. 5
  (CPU > 210 h on the 1.5 GB dataset; GPU > 50x faster).
"""

from repro.tools.bonito.signal import PoreModel, SquiggleSimulator
from repro.tools.bonito.model import Conv1dLayer, TemplateScorer
from repro.tools.bonito.ctc import ctc_greedy_decode, ctc_beam_search
from repro.tools.bonito.basecaller import Basecaller, BasecallResult
from repro.tools.bonito.perf_model import BonitoPerfModel, BonitoTiming

__all__ = [
    "PoreModel",
    "SquiggleSimulator",
    "Conv1dLayer",
    "TemplateScorer",
    "ctc_greedy_decode",
    "ctc_beam_search",
    "Basecaller",
    "BasecallResult",
    "BonitoPerfModel",
    "BonitoTiming",
]
