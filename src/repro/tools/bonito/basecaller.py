"""The end-to-end basecalling pipeline (CPU and device-accounted GPU).

Pipeline per read:

1. **Smooth** — denoising conv (im2col + GEMM);
2. **Segment** — split the smoothed signal into events at level changes
   (the pore's dwell boundaries);
3. **Score** — one GEMM matching every event against all k-mer current
   templates (:class:`~repro.tools.bonito.model.TemplateScorer`);
4. **Emit** — walk the event k-mer calls, collapsing duplicate
   consecutive k-mers and emitting one base per event (the CTC-collapse
   analogue; :mod:`repro.tools.bonito.ctc` provides the frame-level
   decoders for the neural-style path).

The GPU path performs the *same* numerics (bit-identical output) while
charging the GEMM/transfer/synchronisation mix to the device model — the
call mix the paper's Fig. 6 hotspot chart shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.kernels import KernelLaunch, KernelTimingModel, MemcpyKind
from repro.tools.bonito.model import Conv1dLayer, TemplateScorer
from repro.tools.bonito.signal import PoreModel
from repro.tools.racon.alignment import identity
from repro.tools.seqio.records import SeqRecord, SignalRead

#: The transition detector is adaptive: the threshold is a multiple of
#: the robust noise estimate (MAD of the lag-2 differences of the
#: smoothed signal), floored so a noiseless signal still ignores float
#: fuzz.  A clean squiggle therefore catches even the closest k-mer
#: level transitions (the pore ladder's minimum gap is ~1 pA), while a
#: noisy one raises the bar to ~4 sigma and misses only near-coincident
#: levels — the realistic residual error of event-based basecalling.
#: With dwell ~8, smoothing and the lag-2 detector, a large share of the
#: lag-2 differences are boundary-influenced, so the noise scale is read
#: from a low quantile of |diff| rather than the median.  The multiplier
#: is calibrated on the default noise (1 pA): it lands the threshold
#: near 2 pA, where missed-boundary and false-boundary errors balance —
#: the Viterbi decoder's stay transitions absorb spurious splits cheaply,
#: so erring low is the better trade.
ADAPTIVE_NOISE_QUANTILE = 0.30
ADAPTIVE_THRESHOLD_MULTIPLIER = 3.5
MIN_STEP_THRESHOLD_PA = 0.6
#: Lag (samples) of the transition detector.
STEP_LAG = 2
#: Events shorter than this many samples are merged into neighbours.
MIN_EVENT_SAMPLES = 2


@dataclass
class BasecallResult:
    """Basecalls plus accounting for a batch of reads."""

    records: list[SeqRecord] = field(default_factory=list)
    total_flops: int = 0
    total_events: int = 0
    total_samples: int = 0
    identities: list[float] = field(default_factory=list)

    @property
    def mean_identity(self) -> float:
        """Mean basecall identity vs. ground truth (when truth known)."""
        if not self.identities:
            return 0.0
        return float(np.mean(self.identities))


class Basecaller:
    """Template-matching basecaller over a pore model.

    Parameters
    ----------
    pore:
        The pore model (must match the squiggle generator's).
    timing:
        Optional device timing model.  When given, the GEMM stages are
        charged to the simulated GPU (with host<->device transfers and
        synchronisation); when ``None``, the run is CPU-only.
    """

    def __init__(
        self,
        pore: PoreModel,
        timing: KernelTimingModel | None = None,
        step_threshold_pa: float | None = None,
    ) -> None:
        if step_threshold_pa is not None and step_threshold_pa <= 0:
            raise ValueError("step_threshold_pa must be positive")
        self.pore = pore
        self.timing = timing
        self.smoother = Conv1dLayer.smoothing(window=3)
        self.scorer = TemplateScorer(pore)
        #: Fixed override; ``None`` selects the adaptive MAD threshold.
        self.step_threshold = step_threshold_pa

    def _threshold_for(self, diff: np.ndarray) -> float:
        """Segmentation threshold: fixed override or adaptive from noise."""
        if self.step_threshold is not None:
            return self.step_threshold
        if diff.size == 0:
            return MIN_STEP_THRESHOLD_PA
        scale = float(np.quantile(diff, ADAPTIVE_NOISE_QUANTILE))
        return max(ADAPTIVE_THRESHOLD_MULTIPLIER * scale, MIN_STEP_THRESHOLD_PA)

    # ------------------------------------------------------------------ #
    # stages
    # ------------------------------------------------------------------ #
    def segment(self, smoothed: np.ndarray) -> list[tuple[int, int]]:
        """Split a smoothed signal into (start, end) event intervals.

        A lag-``STEP_LAG`` absolute difference detects level transitions;
        within each supra-threshold run only the peak position becomes a
        boundary (a single dwell transition smeared by smoothing would
        otherwise yield several).
        """
        n = len(smoothed)
        if n == 0:
            return []
        if n <= STEP_LAG:
            return [(0, n)]
        diff = np.abs(smoothed[STEP_LAG:] - smoothed[:-STEP_LAG])
        above = diff > self._threshold_for(diff)
        boundaries: list[int] = []
        i = 0
        while i < len(above):
            if above[i]:
                j = i
                while j + 1 < len(above) and above[j + 1]:
                    j += 1
                peak = i + int(np.argmax(diff[i : j + 1]))
                boundaries.append(peak + STEP_LAG)  # after the jump
                i = j + 1
            else:
                i += 1
        events: list[tuple[int, int]] = []
        start = 0
        for boundary in boundaries:
            if boundary - start >= MIN_EVENT_SAMPLES:
                events.append((start, boundary))
                start = boundary
        if n - start >= MIN_EVENT_SAMPLES:
            events.append((start, n))
        elif events:
            events[-1] = (events[-1][0], n)
        return events

    def _emit(self, kmer_ids: np.ndarray) -> str:
        """Event k-mer calls -> sequence (collapse + centre emission).

        Each event's k-mer is centred on the base it calls (the squiggle
        generator assigns base *i* the level of ``seq[i-1 : i+2]`` for
        k=3), so after collapsing duplicate consecutive calls the centre
        bases spell the sequence directly.
        """
        if kmer_ids.size == 0:
            return ""
        bases: list[str] = []
        previous = -1
        for kid in kmer_ids.tolist():
            if kid != previous:
                bases.append(self.pore.center_base(kid))
                previous = kid
        return "".join(bases)

    def _viterbi(self, scores: np.ndarray) -> np.ndarray:
        """Context-constrained decode over the event/k-mer score matrix.

        Consecutive events' k-mers must overlap by k-1 bases (the pore
        advanced one base), may repeat (a boundary the segmenter split
        spuriously), or — rarely — jump arbitrarily (a missed event).
        The Viterbi DP over these transitions is what turns near-tie
        template scores into accurate calls; it is the classical HMM
        basecalling formulation, standing in for the CNN's learned
        temporal context.
        """
        n_events, n_states = scores.shape
        if n_events == 0:
            return np.empty(0, dtype=np.int64)
        k = self.pore.k
        suffix_size = 4 ** (k - 1)
        states = np.arange(n_states)
        # predecessors[m] = the 4 states p with p[1:] == m[:-1].
        predecessors = (
            np.arange(4)[None, :] * suffix_size + (states // 4)[:, None]
        )  # (states, 4)
        stay_penalty = np.float32(-1.0)
        jump_penalty = np.float32(-8.0)

        best = scores[0].astype(np.float32).copy()
        back = np.zeros((n_events, n_states), dtype=np.int64)
        back[0] = states
        for e in range(1, n_events):
            shift_scores = best[predecessors]  # (states, 4)
            shift_arg = np.argmax(shift_scores, axis=1)
            shift_best = shift_scores[states, shift_arg]
            shift_pred = predecessors[states, shift_arg]
            stay_best = best + stay_penalty
            jump_state = int(np.argmax(best))
            jump_best = best[jump_state] + jump_penalty

            candidate = shift_best
            pred = shift_pred
            use_stay = stay_best > candidate
            candidate = np.where(use_stay, stay_best, candidate)
            pred = np.where(use_stay, states, pred)
            use_jump = jump_best > candidate
            candidate = np.where(use_jump, jump_best, candidate)
            pred = np.where(use_jump, jump_state, pred)

            best = candidate + scores[e]
            back[e] = pred
        path = np.empty(n_events, dtype=np.int64)
        path[-1] = int(np.argmax(best))
        for e in range(n_events - 1, 0, -1):
            path[e - 1] = back[e, path[e]]
        return path

    def _charge_gemm(self, name: str, flops: int, in_bytes: float, out_bytes: float) -> None:
        """Account one GEMM stage on the device (GPU path only)."""
        if self.timing is None:
            return
        self.timing.memcpy(MemcpyKind.HOST_TO_DEVICE, in_bytes)
        self.timing.launch(
            KernelLaunch(
                name=name,
                grid_blocks=max(1, int(flops // (256 * 2048)) + 1),
                threads_per_block=256,
                flops=float(flops),
                bytes_read=in_bytes,
                bytes_written=out_bytes,
            )
        )
        self.timing.synchronize()
        self.timing.memcpy(MemcpyKind.DEVICE_TO_HOST, out_bytes)

    # ------------------------------------------------------------------ #
    # pipeline
    # ------------------------------------------------------------------ #
    def basecall_read(self, read: SignalRead) -> tuple[SeqRecord, int, int]:
        """Basecall one read; returns (record, flops, events)."""
        smoothed_matrix, conv_flops = self.smoother.forward(read.signal)
        smoothed = smoothed_matrix[:, 0]
        self._charge_gemm(
            "cudnn_conv1d_fwd",
            conv_flops,
            in_bytes=read.signal.nbytes,
            out_bytes=smoothed.nbytes,
        )
        events = self.segment(smoothed)
        if not events:
            return SeqRecord(name=read.read_id, sequence=""), conv_flops, 0
        # Smoothing smears STEP_LAG samples across each boundary; trim
        # event edges so the mean reflects the dwell plateau only.
        means = np.array(
            [
                smoothed[
                    min(s + STEP_LAG, e - 1) : max(e - STEP_LAG, s + 1)
                ].mean()
                if e - s > 2 * STEP_LAG
                else smoothed[s:e].mean()
                for s, e in events
            ],
            dtype=np.float32,
        )
        scores, gemm_flops = self.scorer.score(means)
        self._charge_gemm(
            "sgemm_template_match",
            gemm_flops,
            in_bytes=means.nbytes * 3,
            out_bytes=scores.nbytes,
        )
        kmer_ids = self._viterbi(scores)
        sequence = self._emit(kmer_ids)
        record = SeqRecord(name=read.read_id, sequence=sequence)
        return record, conv_flops + gemm_flops, len(events)

    def basecall(self, reads: list[SignalRead]) -> BasecallResult:
        """Basecall a batch; evaluates identity where truth is known."""
        result = BasecallResult()
        for read in reads:
            record, flops, events = self.basecall_read(read)
            result.records.append(record)
            result.total_flops += flops
            result.total_events += events
            result.total_samples += len(read)
            if read.true_sequence:
                result.identities.append(identity(record.sequence, read.true_sequence))
        return result

    def basecall_batched(self, reads: list[SignalRead]) -> BasecallResult:
        """Basecall many reads with ONE template-matching GEMM.

        This is how the real Bonito keeps its GPU busy: chunks from many
        reads stack into large matrix multiplies (the Fig. 6 GEMM
        hotspot), amortising launch overhead.  Per-read segmentation and
        Viterbi decoding are unchanged, so the outputs are identical to
        :meth:`basecall` — only the device call pattern differs (one
        large ``sgemm`` instead of one per read).
        """
        result = BasecallResult()
        smoothed_per_read: list[np.ndarray] = []
        events_per_read: list[list[tuple[int, int]]] = []
        means_chunks: list[np.ndarray] = []
        conv_flops_total = 0
        for read in reads:
            smoothed_matrix, conv_flops = self.smoother.forward(read.signal)
            conv_flops_total += conv_flops
            smoothed = smoothed_matrix[:, 0] if smoothed_matrix.size else np.empty(0)
            smoothed_per_read.append(smoothed)
            events = self.segment(smoothed)
            events_per_read.append(events)
            if events:
                means_chunks.append(
                    np.array(
                        [
                            smoothed[
                                min(s + STEP_LAG, e - 1) : max(e - STEP_LAG, s + 1)
                            ].mean()
                            if e - s > 2 * STEP_LAG
                            else smoothed[s:e].mean()
                            for s, e in events
                        ],
                        dtype=np.float32,
                    )
                )
            else:
                means_chunks.append(np.empty(0, dtype=np.float32))
            result.total_samples += len(read)
            result.total_events += len(events)

        all_means = (
            np.concatenate(means_chunks) if means_chunks else np.empty(0, np.float32)
        )
        if all_means.size:
            scores, gemm_flops = self.scorer.score(all_means)
            self._charge_gemm(
                "sgemm_template_match",
                gemm_flops,
                in_bytes=all_means.nbytes * 3,
                out_bytes=scores.nbytes,
            )
        else:
            scores, gemm_flops = np.empty((0, self.pore.n_kmers)), 0
        result.total_flops = conv_flops_total + gemm_flops

        offset = 0
        for read, means in zip(reads, means_chunks, strict=True):
            count = means.shape[0]
            read_scores = scores[offset : offset + count]
            offset += count
            kmer_ids = self._viterbi(read_scores) if count else np.empty(0, np.int64)
            record = SeqRecord(name=read.read_id, sequence=self._emit(kmer_ids))
            result.records.append(record)
            if read.true_sequence:
                result.identities.append(
                    identity(record.sequence, read.true_sequence)
                )
        return result
