"""Bonito's auxiliary subcommands (paper §V-A).

"It has several functionalities, like training a bonito model (bonito
train), converting an hdf5 training file into a bonito format (bonito
convert), evaluating a model performance (bonito evaluate), downloading
pre-trained models and training datasets (bonito download), and
basecaller ..."

Reproduced here against the simulated substrate:

* :func:`bonito_download` — a registry of named pre-trained pore models
  (the model files Bonito fetches from ONT's CDN);
* :func:`bonito_convert` — FAST5-like signal reads <-> the packed
  "chunks" training format (padded signal matrix + references);
* :func:`bonito_train` — model fitting: re-estimates the k-mer current
  levels from labelled squiggles (method-of-moments over event/k-mer
  observations, iterated with re-segmentation) — a real training loop
  that measurably repairs a mis-calibrated model;
* :func:`bonito_evaluate` — accuracy evaluation of a model on labelled
  reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tools.bonito.basecaller import Basecaller
from repro.tools.bonito.signal import PoreModel
from repro.tools.racon.alignment import identity
from repro.tools.seqio.records import SignalRead

#: The "pre-trained model" registry: named pore chemistries.
PRETRAINED_MODELS: dict[str, dict] = {
    "dna_r9.4.1": {"k": 3, "seed": 2021, "level_min_pa": 60.0, "level_max_pa": 120.0},
    "dna_r9.4.1_fast": {"k": 3, "seed": 2021, "level_min_pa": 60.0, "level_max_pa": 120.0},
    "dna_r10.3": {"k": 3, "seed": 1030, "level_min_pa": 55.0, "level_max_pa": 125.0},
}


def bonito_download(model_name: str) -> PoreModel:
    """``bonito download`` — fetch a named pre-trained model.

    Raises
    ------
    KeyError
        For an unknown model name (with the available names listed).
    """
    try:
        config = PRETRAINED_MODELS[model_name]
    except KeyError:
        raise KeyError(
            f"unknown model {model_name!r}; available: {sorted(PRETRAINED_MODELS)}"
        ) from None
    return PoreModel(**config)


# --------------------------------------------------------------------- #
# convert
# --------------------------------------------------------------------- #
@dataclass
class TrainingChunks:
    """The packed training format (Bonito's 'chunks.npy' analogue).

    Attributes
    ----------
    signals:
        (n_reads x max_len) float32 matrix, zero-padded on the right.
    lengths:
        (n_reads,) true signal lengths.
    references:
        Ground-truth sequences, one per row.
    read_ids:
        Original read identifiers.
    """

    signals: np.ndarray
    lengths: np.ndarray
    references: list[str]
    read_ids: list[str]

    def __len__(self) -> int:
        return int(self.signals.shape[0])


def bonito_convert(reads: list[SignalRead]) -> TrainingChunks:
    """``bonito convert`` — pack labelled signal reads for training.

    Raises
    ------
    ValueError
        When any read lacks a ground-truth sequence (unlabelled data
        cannot train).
    """
    if not reads:
        raise ValueError("no reads to convert")
    unlabelled = [r.read_id for r in reads if not r.true_sequence]
    if unlabelled:
        raise ValueError(f"reads without ground truth: {unlabelled[:3]}")
    max_len = max(len(r) for r in reads)
    signals = np.zeros((len(reads), max_len), dtype=np.float32)
    lengths = np.empty(len(reads), dtype=np.int64)
    for i, read in enumerate(reads):
        signals[i, : len(read)] = read.signal
        lengths[i] = len(read)
    return TrainingChunks(
        signals=signals,
        lengths=lengths,
        references=[r.true_sequence for r in reads],
        read_ids=[r.read_id for r in reads],
    )


def chunks_to_reads(chunks: TrainingChunks) -> list[SignalRead]:
    """The inverse conversion (round-trip tested)."""
    return [
        SignalRead(
            read_id=chunks.read_ids[i],
            signal=chunks.signals[i, : chunks.lengths[i]].copy(),
            true_sequence=chunks.references[i],
        )
        for i in range(len(chunks))
    ]


# --------------------------------------------------------------------- #
# train
# --------------------------------------------------------------------- #
@dataclass
class TrainingReport:
    """Outcome of one ``bonito train`` run."""

    epochs: int
    kmers_observed: int
    level_rmse_before: float
    level_rmse_after: float
    history: list[float] = field(default_factory=list)


def _observations(
    model: PoreModel, chunks: TrainingChunks
) -> tuple[np.ndarray, np.ndarray]:
    """(kmer_id, observed level) pairs via uniform read partitioning.

    Each labelled read is split into ``len(reference)`` equal spans —
    the dwell is unknown but near-uniform, so span means track per-base
    levels well enough for moment estimation.
    """
    kmer_ids: list[int] = []
    levels: list[float] = []
    for i in range(len(chunks)):
        reference = chunks.references[i]
        signal = chunks.signals[i, : chunks.lengths[i]]
        if not reference or signal.size < len(reference):
            continue
        bounds = np.linspace(0, signal.size, len(reference) + 1).astype(np.int64)
        pad = model.k // 2
        padded = "A" * pad + reference.upper() + "A" * (model.k - 1 - pad)
        for b in range(len(reference)):
            span = signal[bounds[b] : bounds[b + 1]]
            if span.size == 0:
                continue
            # trim span edges to avoid transition contamination
            interior = span[1:-1] if span.size > 2 else span
            kmer_ids.append(model.kmer_index(padded[b : b + model.k]))
            levels.append(float(interior.mean()))
    return np.asarray(kmer_ids, dtype=np.int64), np.asarray(levels, dtype=np.float32)


def bonito_train(
    initial: PoreModel,
    chunks: TrainingChunks,
    epochs: int = 3,
    learning_rate: float = 0.7,
    reference_model: PoreModel | None = None,
) -> tuple[PoreModel, TrainingReport]:
    """``bonito train`` — fit the k-mer levels to labelled squiggles.

    Each epoch computes method-of-moments level estimates from the
    uniform-partition observations and moves the model toward them by
    ``learning_rate``.  The returned model is a *new* object (the input
    is untouched); the report tracks RMSE against ``reference_model``
    (the generating truth) when given, else against the initial model.
    """
    if not 0 < learning_rate <= 1:
        raise ValueError("learning_rate must be in (0, 1]")
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    truth = reference_model or initial
    trained = PoreModel(k=initial.k, seed=0)
    trained.levels = initial.levels.copy()

    def rmse(model: PoreModel) -> float:
        return float(np.sqrt(np.mean((model.levels - truth.levels) ** 2)))

    before = rmse(trained)
    history = [before]
    kmer_ids, observed = _observations(trained, chunks)
    observed_set = 0
    for _ in range(epochs):
        if kmer_ids.size == 0:
            break
        sums = np.zeros(trained.n_kmers, dtype=np.float64)
        counts = np.zeros(trained.n_kmers, dtype=np.int64)
        np.add.at(sums, kmer_ids, observed)
        np.add.at(counts, kmer_ids, 1)
        seen = counts > 0
        observed_set = int(seen.sum())
        estimates = np.where(seen, sums / np.maximum(counts, 1), trained.levels)
        trained.levels = (
            (1 - learning_rate) * trained.levels + learning_rate * estimates
        ).astype(np.float32)
        history.append(rmse(trained))
    return trained, TrainingReport(
        epochs=epochs,
        kmers_observed=observed_set,
        level_rmse_before=before,
        level_rmse_after=history[-1],
        history=history,
    )


# --------------------------------------------------------------------- #
# evaluate
# --------------------------------------------------------------------- #
@dataclass
class EvaluationReport:
    """Outcome of one ``bonito evaluate`` run."""

    reads: int
    mean_identity: float
    median_identity: float
    min_identity: float
    per_read: list[tuple[str, float]] = field(default_factory=list)


def bonito_evaluate(model: PoreModel, reads: list[SignalRead]) -> EvaluationReport:
    """``bonito evaluate`` — basecall labelled reads and score identity."""
    labelled = [r for r in reads if r.true_sequence]
    if not labelled:
        raise ValueError("evaluation needs labelled reads")
    basecaller = Basecaller(model)
    per_read: list[tuple[str, float]] = []
    for read in labelled:
        record, _, _ = basecaller.basecall_read(read)
        per_read.append((read.read_id, identity(record.sequence, read.true_sequence)))
    identities = np.array([x for _, x in per_read])
    return EvaluationReport(
        reads=len(per_read),
        mean_identity=float(identities.mean()),
        median_identity=float(np.median(identities)),
        min_identity=float(identities.min()),
        per_read=per_read,
    )
