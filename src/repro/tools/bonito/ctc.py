"""CTC-style decoding over per-frame logit matrices.

Bonito's network emits per-frame probabilities over {blank, A, C, G, T}
and decodes with CTC: collapse consecutive repeats, drop blanks.  Both
the greedy best-path decoder and a small beam search are implemented;
the basecaller uses greedy (Bonito's default ``bonito basecaller`` path),
and the beam search exists for the accuracy ablation.
"""

from __future__ import annotations

import math

import numpy as np

#: Index of the CTC blank symbol in the logit matrices.
BLANK = 0
#: Default symbol table: blank + the four bases.
DEFAULT_ALPHABET = "NACGT"


def collapse(labels: list[int], blank: int = BLANK) -> list[int]:
    """CTC collapse: merge consecutive repeats, then remove blanks."""
    out: list[int] = []
    previous: int | None = None
    for label in labels:
        if label != previous:
            if label != blank:
                out.append(label)
            previous = label
    return out


def ctc_greedy_decode(
    logits: np.ndarray, alphabet: str = DEFAULT_ALPHABET, blank: int = BLANK
) -> str:
    """Best-path decode: per-frame argmax, collapse, map to symbols."""
    logits = np.asarray(logits)
    if logits.ndim != 2:
        raise ValueError("logits must be (frames x symbols)")
    if logits.shape[1] != len(alphabet):
        raise ValueError(
            f"logits have {logits.shape[1]} symbols, alphabet has {len(alphabet)}"
        )
    path = np.argmax(logits, axis=1).tolist()
    return "".join(alphabet[i] for i in collapse(path, blank))


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - np.max(logits, axis=1, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=1, keepdims=True))


def ctc_beam_search(
    logits: np.ndarray,
    beam_width: int = 8,
    alphabet: str = DEFAULT_ALPHABET,
    blank: int = BLANK,
) -> str:
    """Prefix beam search (log domain, no language model).

    Maintains per-prefix probabilities split by whether the last frame
    was a blank, which is what lets CTC distinguish ``AA`` from ``A``.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 2 or logits.shape[1] != len(alphabet):
        raise ValueError("logits must be (frames x len(alphabet))")
    if beam_width <= 0:
        raise ValueError("beam_width must be positive")
    log_probs = _log_softmax(logits)
    NEG_INF = -math.inf

    def logaddexp(a: float, b: float) -> float:
        if a == NEG_INF:
            return b
        if b == NEG_INF:
            return a
        return max(a, b) + math.log1p(math.exp(-abs(a - b)))

    # beams: prefix (tuple of symbol ids) -> (log P ending in blank,
    #                                         log P ending in non-blank)
    beams: dict[tuple[int, ...], tuple[float, float]] = {(): (0.0, NEG_INF)}
    for frame in log_probs:
        candidates: dict[tuple[int, ...], tuple[float, float]] = {}

        def bump(prefix: tuple[int, ...], blank_lp: float, label_lp: float) -> None:
            old_blank, old_label = candidates.get(prefix, (NEG_INF, NEG_INF))
            candidates[prefix] = (
                logaddexp(old_blank, blank_lp),
                logaddexp(old_label, label_lp),
            )

        for prefix, (p_blank, p_label) in beams.items():
            total = logaddexp(p_blank, p_label)
            # Extend with blank: prefix unchanged.
            bump(prefix, total + frame[blank], NEG_INF)
            for symbol in range(len(alphabet)):
                if symbol == blank:
                    continue
                lp = frame[symbol]
                if prefix and prefix[-1] == symbol:
                    # Repeat without blank merges into the same prefix ...
                    bump(prefix, NEG_INF, p_label + lp)
                    # ... while a repeat *after* a blank extends it.
                    bump(prefix + (symbol,), NEG_INF, p_blank + lp)
                else:
                    bump(prefix + (symbol,), NEG_INF, total + lp)

        ranked = sorted(
            candidates.items(),
            key=lambda item: logaddexp(item[1][0], item[1][1]),
            reverse=True,
        )
        beams = dict(ranked[:beam_width])

    best = max(beams.items(), key=lambda item: logaddexp(item[1][0], item[1][1]))
    return "".join(alphabet[i] for i in best[0])
