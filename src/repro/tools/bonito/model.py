"""Network building blocks: conv-as-GEMM layers and template scoring.

Bonito is "inspired by the usage of convolutional neural networks in
speech recognition" (paper §V-A); its GPU hotspots are GEMM kernels
(Fig. 6) because convolutions lower to im2col + matrix multiply.  We
implement exactly that lowering.  Instead of *trained* weights — no
training data can ship offline — the network's weights are constructed
analytically from the pore model (a matched-filter bank): the quadratic
score ``-(x - level)^2`` expands to an inner product of the feature
vector ``[x, x^2, 1]`` with the template ``[2*level, -1, -level^2]``, so
template matching over all k-mers is one dense ``(frames x 3) @
(3 x 4^k)`` GEMM.  The computation is numerically real; only its weights
come from analysis rather than SGD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tools.bonito.signal import PoreModel


def im2col(signal: np.ndarray, window: int, stride: int = 1) -> np.ndarray:
    """Lower a 1-D signal to the (frames x window) patch matrix.

    This is the standard conv-to-GEMM lowering; frames are the sliding
    windows at the given stride.
    """
    if window <= 0 or stride <= 0:
        raise ValueError("window and stride must be positive")
    signal = np.asarray(signal, dtype=np.float32)
    n_frames = (len(signal) - window) // stride + 1
    if n_frames <= 0:
        return np.empty((0, window), dtype=np.float32)
    strides = (signal.strides[0] * stride, signal.strides[0])
    return np.lib.stride_tricks.as_strided(
        signal, shape=(n_frames, window), strides=strides, writeable=False
    )


@dataclass
class Conv1dLayer:
    """A 1-D convolution realised as im2col + GEMM.

    Attributes
    ----------
    weights:
        (out_channels x window) filter bank.
    bias:
        (out_channels,) bias added after the multiply.
    stride:
        Frame stride.
    """

    weights: np.ndarray
    bias: np.ndarray
    stride: int = 1

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float32)
        self.bias = np.asarray(self.bias, dtype=np.float32)
        if self.weights.ndim != 2:
            raise ValueError("weights must be (out_channels, window)")
        if self.bias.shape != (self.weights.shape[0],):
            raise ValueError("bias must match out_channels")

    @property
    def window(self) -> int:
        """Filter width."""
        return int(self.weights.shape[1])

    @property
    def out_channels(self) -> int:
        """Number of filters."""
        return int(self.weights.shape[0])

    def forward(self, signal: np.ndarray) -> tuple[np.ndarray, int]:
        """Apply the layer; returns (frames x out_channels, flops).

        The FLOP count (2*m*n*k of the GEMM) is what the GPU execution
        path charges to the device.
        """
        patches = im2col(signal, self.window, self.stride)
        output = patches @ self.weights.T + self.bias
        flops = 2 * patches.shape[0] * self.window * self.out_channels
        return output.astype(np.float32), int(flops)

    @classmethod
    def smoothing(cls, window: int = 3, stride: int = 1) -> "Conv1dLayer":
        """A single moving-average denoising filter."""
        return cls(
            weights=np.full((1, window), 1.0 / window, dtype=np.float32),
            bias=np.zeros(1, dtype=np.float32),
            stride=stride,
        )


class TemplateScorer:
    """Scores event features against all k-mer templates with one GEMM.

    ``scores[e, m] = -(mean_e - level_m)^2`` computed as
    ``features @ templates.T`` with ``features = [2*mean, -mean^2, -1]``
    and ``templates = [level, 1, level^2]``.
    """

    def __init__(self, pore: PoreModel) -> None:
        self.pore = pore
        levels = pore.levels.astype(np.float32)
        self.templates = np.stack(
            [levels, np.ones_like(levels), levels**2], axis=1
        )  # (n_kmers, 3)

    def features(self, event_means: np.ndarray) -> np.ndarray:
        """(events x 3) feature matrix for the scoring GEMM."""
        means = np.asarray(event_means, dtype=np.float32)
        return np.stack([2.0 * means, -(means**2), -np.ones_like(means)], axis=1)

    def score(self, event_means: np.ndarray) -> tuple[np.ndarray, int]:
        """(scores, flops): scores is (events x n_kmers), higher = better."""
        features = self.features(event_means)
        scores = features @ self.templates.T  # = -(mean - level)^2 + const
        flops = 2 * features.shape[0] * features.shape[1] * self.templates.shape[0]
        return scores.astype(np.float32), int(flops)

    def logits(self, event_means: np.ndarray, scale: float = 0.5) -> np.ndarray:
        """Scores scaled into log-probability-like logits for CTC decode."""
        scores, _ = self.score(event_means)
        return scale * scores


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)
