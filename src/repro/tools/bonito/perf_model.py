"""Calibrated Bonito performance model (paper Fig. 5 / §VI-A).

Anchors from the paper:

* CPU basecalling of the 1.5 GB *Acinetobacter pittii* FAST5 set ran
  "more than 210 hours" before being cut off;
* the 5.2 GB *Klebsiella pneumoniae* set "is approximated to last 4x
  longer than the smaller dataset (more than 850 hours)";
* "the speedup for GPU vs. CPU execution time is more than 50x".

The model is rate-based: CPU basecalling throughput in bytes of FAST5
signal per second is calibrated so the 1.5 GB set takes just over 210 h,
and the GPU multiplies throughput by a calibrated >50x factor.  Dataset
time scales with byte size, which reproduces the paper's ~4x
relationship between the two sets (5.2 / 1.5 = 3.5, "approximated" as 4x
in the paper text).  The GPU-side phase split follows the Fig. 6 hotspot
mix (GEMM-dominated, then launch/sync, then transfers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.datasets import ACINETOBACTER_PITTII, DatasetDescriptor

#: CPU throughput: 1.5 GiB in slightly more than 210 hours.
CPU_BYTES_PER_SECOND = ACINETOBACTER_PITTII.size_bytes / (211.0 * 3600.0)
#: GPU speedup factor — "more than 50x".
GPU_SPEEDUP = 52.0
#: GPU-side phase fractions (sum to 1), shaped after Fig. 6: GEMM
#: kernels dominate, then launch/synchronisation overhead, then PCIe.
GPU_PHASE_FRACTIONS = {
    "gemm_kernels": 0.46,
    "kernel_launch": 0.24,
    "kernel_sync": 0.19,
    "memcpy": 0.08,
    "decode_cpu": 0.03,
}


@dataclass(frozen=True)
class BonitoTiming:
    """A predicted Bonito execution with phase breakdown."""

    device: str  # 'cpu' | 'gpu'
    dataset: str
    total_seconds: float
    breakdown: dict[str, float] = field(default_factory=dict, hash=False)

    @property
    def total_hours(self) -> float:
        """Total in hours — the unit of the paper's Fig. 5."""
        return self.total_seconds / 3600.0


class BonitoPerfModel:
    """Bonito timing predictions at paper scale."""

    def __init__(
        self,
        cpu_bytes_per_second: float = CPU_BYTES_PER_SECOND,
        gpu_speedup: float = GPU_SPEEDUP,
    ) -> None:
        if cpu_bytes_per_second <= 0:
            raise ValueError("cpu_bytes_per_second must be positive")
        if gpu_speedup <= 1:
            raise ValueError("gpu_speedup must exceed 1")
        self.cpu_bytes_per_second = cpu_bytes_per_second
        self.gpu_speedup = gpu_speedup

    def cpu_time(self, dataset: DatasetDescriptor) -> BonitoTiming:
        """Paper-scale CPU basecalling time."""
        total = dataset.size_bytes / self.cpu_bytes_per_second
        return BonitoTiming(
            device="cpu",
            dataset=dataset.name,
            total_seconds=total,
            breakdown={"basecalling_cpu": total},
        )

    def gpu_time(self, dataset: DatasetDescriptor) -> BonitoTiming:
        """Paper-scale GPU basecalling time with the Fig. 6 phase mix."""
        total = dataset.size_bytes / (self.cpu_bytes_per_second * self.gpu_speedup)
        breakdown = {
            phase: total * fraction for phase, fraction in GPU_PHASE_FRACTIONS.items()
        }
        return BonitoTiming(
            device="gpu",
            dataset=dataset.name,
            total_seconds=total,
            breakdown=breakdown,
        )

    def speedup(self, dataset: DatasetDescriptor) -> float:
        """GPU speedup over CPU (constant by construction: the rate model)."""
        return self.cpu_time(dataset).total_seconds / self.gpu_time(
            dataset
        ).total_seconds
