"""Pore model and squiggle synthesis — the FAST5 dataset substitute.

A nanopore reports an ionic current whose level depends on the k bases
currently inside the pore.  :class:`PoreModel` assigns every k-mer a
distinct, well-separated current level (real pores: ~60-120 pA);
:class:`SquiggleSimulator` renders a sequence into a noisy signal with
per-base dwell-time variation.  Ground truth travels with each
:class:`~repro.tools.seqio.records.SignalRead` so basecall accuracy is
measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tools.seqio.records import DNA_ALPHABET, SignalRead

_BASE_INDEX = {base: i for i, base in enumerate(DNA_ALPHABET)}


class PoreModel:
    """Current levels for all k-mers.

    Levels are an evenly spaced ladder over the pore's dynamic range,
    randomly permuted so that sequence-adjacent k-mers land far apart —
    maximising level-transition detectability, like a well-behaved real
    pore chemistry.
    """

    def __init__(
        self,
        k: int = 3,
        seed: int = 2021,
        level_min_pa: float = 60.0,
        level_max_pa: float = 120.0,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.level_min_pa = level_min_pa
        self.level_max_pa = level_max_pa
        n = 4**k
        rng = np.random.default_rng(seed)
        ladder = np.linspace(level_min_pa, level_max_pa, n)
        self.levels = ladder[rng.permutation(n)].astype(np.float32)

    @property
    def n_kmers(self) -> int:
        """Number of distinct k-mers (4^k)."""
        return len(self.levels)

    def kmer_index(self, kmer: str) -> int:
        """Integer code of a k-mer string."""
        if len(kmer) != self.k:
            raise ValueError(f"expected a {self.k}-mer, got {kmer!r}")
        code = 0
        for base in kmer:
            code = code * 4 + _BASE_INDEX[base.upper()]
        return code

    def kmer_string(self, index: int) -> str:
        """k-mer string of an integer code."""
        if not 0 <= index < self.n_kmers:
            raise ValueError(f"k-mer index {index} out of range")
        bases = []
        for _ in range(self.k):
            bases.append(DNA_ALPHABET[index % 4])
            index //= 4
        return "".join(reversed(bases))

    def level(self, kmer: str) -> float:
        """Current level (pA) of a k-mer."""
        return float(self.levels[self.kmer_index(kmer)])

    def sequence_levels(self, sequence: str) -> np.ndarray:
        """Per-base levels: base i takes the level of its centred k-mer.

        The sequence is padded with 'A' context at both ends so every
        base has a level.
        """
        pad = self.k // 2
        padded = "A" * pad + sequence.upper() + "A" * (self.k - 1 - pad)
        codes = np.empty(len(sequence), dtype=np.int64)
        for i in range(len(sequence)):
            codes[i] = self.kmer_index(padded[i : i + self.k])
        return self.levels[codes]

    def center_base(self, index: int) -> str:
        """The centre base of a k-mer code (what an event calls)."""
        return self.kmer_string(index)[self.k // 2]


@dataclass
class SquiggleSimulator:
    """Renders sequences into noisy, dwell-varying current signals.

    Parameters
    ----------
    pore:
        The pore model supplying levels.
    samples_per_base:
        Mean dwell in samples (ONT R9 at 4 kHz / 450 b/s is ~8.9).
    dwell_jitter:
        Maximum +- variation of each base's dwell, in samples.
    noise_sd_pa:
        Gaussian current noise.
    """

    pore: PoreModel
    samples_per_base: int = 8
    dwell_jitter: int = 2
    noise_sd_pa: float = 1.0

    def __post_init__(self) -> None:
        if self.samples_per_base <= 0:
            raise ValueError("samples_per_base must be positive")
        if self.dwell_jitter >= self.samples_per_base:
            raise ValueError("dwell_jitter must be smaller than samples_per_base")

    def synthesize(self, sequence: str, seed: int = 0) -> np.ndarray:
        """The squiggle of one sequence."""
        if not sequence:
            return np.empty(0, dtype=np.float32)
        rng = np.random.default_rng(seed)
        levels = self.pore.sequence_levels(sequence)
        dwells = rng.integers(
            self.samples_per_base - self.dwell_jitter,
            self.samples_per_base + self.dwell_jitter + 1,
            size=len(sequence),
        )
        signal = np.repeat(levels, dwells).astype(np.float32)
        signal += rng.normal(0.0, self.noise_sd_pa, size=signal.shape).astype(
            np.float32
        )
        return signal

    def simulate_reads(
        self,
        genome: str,
        n_reads: int,
        mean_length: int,
        seed: int = 0,
    ) -> list[SignalRead]:
        """Draw reads from ``genome`` and render each into a SignalRead."""
        if n_reads <= 0:
            raise ValueError("n_reads must be positive")
        if mean_length <= 0 or mean_length > len(genome):
            raise ValueError("mean_length must be in (0, genome length]")
        rng = np.random.default_rng(seed)
        reads: list[SignalRead] = []
        for i in range(n_reads):
            length = int(
                np.clip(
                    rng.normal(mean_length, mean_length * 0.15),
                    max(self.pore.k + 1, mean_length // 4),
                    len(genome),
                )
            )
            start = int(rng.integers(0, len(genome) - length + 1))
            fragment = genome[start : start + length]
            reads.append(
                SignalRead(
                    read_id=f"squiggle_{i:05d}",
                    signal=self.synthesize(fragment, seed=seed + 1000 + i),
                    true_sequence=fragment,
                )
            )
        return reads
