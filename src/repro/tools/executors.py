"""Galaxy tool executors for Racon and Bonito.

An executor stands in for the tool binary Galaxy would spawn: it
receives the rendered argv and a
:class:`~repro.galaxy.app.ToolExecutionContext`, performs the tool's
work against the simulated hardware (advancing the virtual clock,
launching device kernels, recording into the profiler), and returns a
:class:`~repro.galaxy.app.ToolExecutionResult`.

Three workload modes, chosen by the job parameter ``workload``:

``unit`` (default)
    The Fig. 3 / Fig. 7 work unit: time comes from the calibrated
    :class:`~repro.tools.racon.perf_model.RaconPerfModel`, rendered into
    a representative device activity (prep phase, one POA kernel pass)
    so monitors and profilers observe realistic state.
``dataset``
    A paper-scale dataset run (``dataset`` parameter names an entry of
    :data:`repro.workloads.datasets.PAPER_DATASETS`): the §VI-A phase
    structure is executed mechanistically — allocation, chunked
    transfers, kernels, pipeline — summing to the calibrated end-to-end
    anchors.
``payload``
    Real data: the actual algorithms run on the miniature payload
    (``payload`` parameter), producing genuine polished sequences or
    basecalls; device time is whatever the kernels cost.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.galaxy.app import GalaxyApp, ToolExecutionContext, ToolExecutionResult
from repro.gpusim.kernels import (
    ACHIEVABLE_FRACTION,
    KernelLaunch,
    KernelTimingModel,
    MemcpyKind,
)
from repro.tools.bonito.basecaller import Basecaller
from repro.tools.bonito.perf_model import GPU_PHASE_FRACTIONS, BonitoPerfModel
from repro.tools.bonito.signal import PoreModel
from repro.tools.racon.consensus import RaconPolisher
from repro.tools.racon.cuda import CudaPOABatcher
from repro.tools.racon.perf_model import GPU_CPU_TAIL_S, RaconPerfModel
from repro.workloads.datasets import ALZHEIMERS_NFL, PAPER_DATASETS, DatasetDescriptor

GIB = 1024**3
MIB = 1024**2

#: Chunk size for streaming paper-scale inputs through device memory.
TRANSFER_CHUNK_BYTES = 256 * MIB
#: Effective fraction of pinned PCIe bandwidth that Racon-GPU's unpinned
#: staged transfers achieve.  0.075 x 12 GB/s = 0.9 GB/s reproduces the
#: ~40 s measured for 2 x 17 GB of traffic (paper §VI-A).
RACON_PCIE_EFFICIENCY = 0.075
#: cudapoa working-set allocation; 8 GiB at the malloc model's
#: 0.25 s/GiB yields the paper's ~2 s allocation phase.
RACON_WORKSPACE_BYTES = 8 * GIB
#: CPU throughput assumed when timing real-payload CPU GEMMs.
CPU_EFFECTIVE_GFLOPS = 5.0


# --------------------------------------------------------------------- #
# small helpers
# --------------------------------------------------------------------- #
def _flag_value(argv: Sequence[str], flag: str, default: int) -> int:
    """Integer value following ``flag`` in argv, or ``default``."""
    for i, token in enumerate(argv):
        if token == flag and i + 1 < len(argv):
            try:
                return int(argv[i + 1])
            except ValueError:
                return default
    return default


def _dataset_from(ctx: ToolExecutionContext) -> DatasetDescriptor:
    name = ctx.job.params.get("dataset", ALZHEIMERS_NFL.name)
    if isinstance(name, DatasetDescriptor):
        return name
    try:
        return PAPER_DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(PAPER_DATASETS)}"
        ) from None


def _racon_inputs(ctx: ToolExecutionContext, workload: str) -> dict:
    """Polishing inputs from the job params.

    ``payload`` mode passes objects directly; ``files`` mode names a
    directory holding the Racon file triple (``reads.fastq``,
    ``backbone.fasta``, ``mappings.paf``) — what a real Galaxy job
    working directory contains — and the executor parses them like the
    binary would.
    """
    if workload == "payload":
        return ctx.job.params["payload"]
    import pathlib

    from repro.tools.seqio.fasta import parse_fasta
    from repro.tools.seqio.fastq import parse_fastq
    from repro.tools.seqio.paf import parse_paf

    directory = pathlib.Path(ctx.job.params["dataset_dir"])
    return {
        "backbone": parse_fasta((directory / "backbone.fasta").read_text())[0],
        "reads": parse_fastq((directory / "reads.fastq").read_text()),
        "mappings": parse_paf((directory / "mappings.paf").read_text()),
    }


def _timing_for(ctx: ToolExecutionContext, pcie_efficiency: float = 1.0) -> KernelTimingModel:
    """A device timing model bound to the job's first visible GPU."""
    if not ctx.gpu_devices:
        raise RuntimeError("GPU executor invoked without visible devices")
    return KernelTimingModel(
        host=ctx.node.gpu_host,
        device=ctx.gpu_devices[0],
        profiler=ctx.profiler,
        pid=ctx.pid,
        pcie_efficiency=pcie_efficiency,
    )


def emit_kernel_with_duration(
    timing: KernelTimingModel,
    name: str,
    seconds: float,
    mem_to_comp: float = 3.5,
    grid_blocks: int = 60,
    threads_per_block: int = 256,
) -> None:
    """Launch a kernel engineered to run for ~``seconds`` on the device.

    ``mem_to_comp`` sets the memory-time / compute-time ratio, which is
    what the stall-attribution model reads: >1 yields memory-dependency-
    dominated stalls (Racon's POA kernels), <1 execution-dominated ones
    (Bonito's GEMMs).
    """
    if seconds <= 0:
        return
    probe = KernelLaunch(
        name=name,
        grid_blocks=grid_blocks,
        threads_per_block=threads_per_block,
        flops=1.0,
        bytes_read=1.0,
        bytes_written=0.0,
    )
    occupancy = timing.occupancy(probe)
    arch = timing.device.arch
    achievable_bw = arch.memory_bandwidth_gbps * ACHIEVABLE_FRACTION * 1e9
    achievable_flops = arch.peak_gflops * ACHIEVABLE_FRACTION * occupancy * 1e9
    if mem_to_comp >= 1.0:
        memory_time = seconds
        compute_time = seconds / mem_to_comp
    else:
        compute_time = seconds
        memory_time = seconds * mem_to_comp
    total_bytes = memory_time * achievable_bw
    timing.launch(
        KernelLaunch(
            name=name,
            grid_blocks=grid_blocks,
            threads_per_block=threads_per_block,
            flops=compute_time * achievable_flops,
            bytes_read=total_bytes * 0.75,
            bytes_written=total_bytes * 0.25,
        )
    )


# --------------------------------------------------------------------- #
# Racon executors
# --------------------------------------------------------------------- #
def racon_cpu_executor(argv: list[str], ctx: ToolExecutionContext) -> ToolExecutionResult:
    """The ``racon`` binary: CPU-only polishing."""
    model = RaconPerfModel()
    threads = _flag_value(argv, "-t", int(ctx.job.params.get("threads", 4)))
    workload = ctx.job.params.get("workload", "unit")

    if workload in ("payload", "files"):
        payload = _racon_inputs(ctx, workload)
        polisher = RaconPolisher(
            window_length=int(ctx.job.params.get("window_length", 250))
        )
        result = polisher.polish(
            payload["backbone"], payload["reads"], payload["mappings"]
        )
        ctx.clock.advance(0.05)  # nominal wall time of a miniature run
        return ToolExecutionResult(
            stdout=f"polished {result.windows_polished}/{result.windows_total} windows",
            result=result,
            breakdown={"polish": 0.05},
        )

    if workload == "dataset":
        timing = model.cpu_end_to_end(_dataset_from(ctx), threads=threads)
        ctx.clock.advance(timing.total_seconds)
        return ToolExecutionResult(
            stdout=f"racon cpu finished in {timing.total_seconds:.1f}s",
            result=timing,
            breakdown=dict(timing.breakdown),
        )

    duration = model.cpu_unit_time(threads)
    ctx.clock.advance(duration)
    return ToolExecutionResult(
        stdout=f"racon cpu unit finished in {duration:.2f}s",
        result=duration,
        breakdown={"cpu_total": duration},
    )


def racon_gpu_executor(argv: list[str], ctx: ToolExecutionContext) -> ToolExecutionResult:
    """The ``racon_gpu`` binary: GPU-accelerated polishing.

    Falls back to the CPU path when GYAN did not enable GPUs for this
    job — the user-agnostic degradation the paper's Challenge II demands.
    """
    if not ctx.gpu_enabled or not ctx.gpu_devices:
        return racon_cpu_executor(argv, ctx)
    model = RaconPerfModel()
    threads = _flag_value(argv, "-t", int(ctx.job.params.get("threads", 4)))
    batches = _flag_value(
        argv, "--cudapoa-batches", int(ctx.job.params.get("batches", 1))
    )
    banded = "-b" in argv or str(ctx.job.params.get("banding", "false")) == "true"
    workload = ctx.job.params.get("workload", "unit")
    containerized = ctx.job.metrics.container is not None

    if workload in ("payload", "files"):
        payload = _racon_inputs(ctx, workload)
        timing = _timing_for(ctx)
        batcher = CudaPOABatcher(timing, batches=batches, banded=banded)
        polisher = RaconPolisher(
            window_length=int(ctx.job.params.get("window_length", 250)),
            banded=banded,
        )
        result = polisher.polish(
            payload["backbone"],
            payload["reads"],
            payload["mappings"],
            window_processor=batcher,
        )
        return ToolExecutionResult(
            stdout=(
                f"polished {result.windows_polished}/{result.windows_total} windows "
                f"on GPU {timing.device.minor_number}"
            ),
            result=result,
            breakdown={
                "gpu_alloc": batcher.stats.alloc_seconds,
                "gpu_kernels": batcher.stats.kernel_seconds,
                "cuda_api_overhead": batcher.stats.transfer_seconds,
            },
        )

    if workload == "dataset":
        return _racon_gpu_dataset(ctx, model, threads, batches, banded)

    duration = model.gpu_unit_compute_time(threads, batches, banded, containerized)
    timing = _timing_for(ctx)
    prep = model._prep_time(threads, containerized)
    timing.api_call("racon_host_prep", prep, category="cpu")
    emit_kernel_with_duration(
        timing,
        "generatePOAKernel",
        duration - prep,
        mem_to_comp=3.5,
        grid_blocks=max(15, batches * 15),
    )
    timing.synchronize()
    return ToolExecutionResult(
        stdout=f"racon gpu unit finished in {duration:.2f}s",
        result=duration,
        breakdown={"gpu_total": duration},
    )


def _racon_gpu_dataset(
    ctx: ToolExecutionContext,
    model: RaconPerfModel,
    threads: int,
    batches: int,
    banded: bool,
) -> ToolExecutionResult:
    """The §VI-A paper-scale GPU run, executed phase by phase."""
    dataset = _dataset_from(ctx)
    predicted = model.gpu_end_to_end(dataset, threads, batches, banded)
    scale = dataset.size_bytes / ALZHEIMERS_NFL.size_bytes
    timing = _timing_for(ctx, pcie_efficiency=RACON_PCIE_EFFICIENCY)

    start = ctx.clock.now
    # Shared pipeline (I/O, overlap handling, stitching) on the host.
    timing.api_call(
        "racon_pipeline", predicted.breakdown["pipeline"], category="cpu"
    )
    # cudapoa working-set allocation (~2 s, from the malloc cost model).
    t0 = ctx.clock.now
    workspace = timing.malloc(
        min(RACON_WORKSPACE_BYTES, timing.device.memory.free_bytes - 512 * MIB),
        tag="cudapoa_workspace",
    )
    alloc_seconds = ctx.clock.now - t0

    kernel_budget = predicted.breakdown["gpu_kernels"]
    n_chunks = max(1, math.ceil(dataset.size_bytes / TRANSFER_CHUNK_BYTES))
    chunk_bytes = dataset.size_bytes / n_chunks
    kernel_seconds = 0.0
    transfer_seconds = 0.0
    for _ in range(n_chunks):
        t0 = ctx.clock.now
        timing.memcpy(MemcpyKind.HOST_TO_DEVICE, chunk_bytes)
        transfer_seconds += ctx.clock.now - t0
        t0 = ctx.clock.now
        emit_kernel_with_duration(
            timing,
            "generatePOAKernel",
            kernel_budget * 0.98 / n_chunks,
            mem_to_comp=3.5,
            grid_blocks=max(15, batches * 15),
        )
        emit_kernel_with_duration(
            timing,
            "generateConsensusKernel",
            kernel_budget * 0.02 / n_chunks,
            mem_to_comp=3.0,
            grid_blocks=max(15, batches * 15),
        )
        kernel_seconds += ctx.clock.now - t0
        timing.synchronize()
        t0 = ctx.clock.now
        timing.memcpy(MemcpyKind.DEVICE_TO_HOST, chunk_bytes)
        transfer_seconds += ctx.clock.now - t0
    # The residual reads cudapoa could not place on the device.
    timing.api_call("racon_cpu_tail", GPU_CPU_TAIL_S * scale, category="cpu")
    timing.free(workspace)
    total = ctx.clock.now - start
    return ToolExecutionResult(
        stdout=f"racon gpu finished {dataset.name} in {total:.1f}s",
        result=predicted,
        breakdown={
            "pipeline": predicted.breakdown["pipeline"],
            "gpu_alloc": alloc_seconds,
            "gpu_kernels": kernel_seconds,
            "cuda_api_overhead": transfer_seconds,
            "cpu_tail": GPU_CPU_TAIL_S * scale,
            "total": total,
        },
    )


# --------------------------------------------------------------------- #
# Bonito executors
# --------------------------------------------------------------------- #
def bonito_executor(argv: list[str], ctx: ToolExecutionContext) -> ToolExecutionResult:
    """The ``bonito`` binary (``bonito basecaller``), CPU or GPU.

    Device selection follows the rendered command line: GYAN's wrapper
    emits ``--device cuda`` only when ``__galaxy_gpu_enabled__`` was
    true.
    """
    use_gpu = "cuda" in argv and ctx.gpu_enabled and bool(ctx.gpu_devices)
    workload = ctx.job.params.get("workload", "dataset")
    model = BonitoPerfModel()

    if workload == "payload":
        payload = ctx.job.params["payload"]
        pore: PoreModel = payload["pore"]
        reads = payload["reads"]
        timing = _timing_for(ctx) if use_gpu else None
        basecaller = Basecaller(pore, timing=timing)
        start = ctx.clock.now
        result = basecaller.basecall(reads)
        if timing is None:
            ctx.clock.advance(result.total_flops / (CPU_EFFECTIVE_GFLOPS * 1e9))
        duration = ctx.clock.now - start
        return ToolExecutionResult(
            stdout=(
                f"basecalled {len(result.records)} reads, "
                f"mean identity {result.mean_identity:.3f}"
            ),
            result=result,
            breakdown={"basecalling": duration},
        )

    if workload == "unit":
        # A short representative slice of basecalling used by the
        # scheduling experiments (Cases 1-4), where only placement and
        # occupancy matter, not the multi-hour dataset time.
        if use_gpu:
            timing = _timing_for(ctx)
            emit_kernel_with_duration(
                timing, "sgemm_128x64_nn", 20.0, mem_to_comp=0.25, grid_blocks=120
            )
            timing.synchronize()
            timing.api_call("ctc_decode_cpu", 2.0, category="cpu")
        else:
            ctx.clock.advance(22.0 * 52.0)  # the same slice, ~52x slower
        return ToolExecutionResult(
            stdout="bonito unit slice finished",
            breakdown={"basecalling": 22.0 if use_gpu else 22.0 * 52.0},
        )

    dataset = _dataset_from(ctx)
    if not use_gpu:
        timing_cpu = model.cpu_time(dataset)
        ctx.clock.advance(timing_cpu.total_seconds)
        return ToolExecutionResult(
            stdout=f"bonito cpu finished {dataset.name} in {timing_cpu.total_hours:.1f}h",
            result=timing_cpu,
            breakdown=dict(timing_cpu.breakdown),
        )

    predicted = model.gpu_time(dataset)
    timing = _timing_for(ctx)
    total = predicted.total_seconds
    start = ctx.clock.now
    # Transfers: staged FAST5 in, FASTA out.
    timing.api_call(
        "cudaMemcpyHtoD",
        total * GPU_PHASE_FRACTIONS["memcpy"] * 0.8,
        category="memcpy_htod",
    )
    # GEMM kernels dominate (Fig. 6): a handful of large aggregated
    # launches, compute-bound.
    gemm_budget = total * GPU_PHASE_FRACTIONS["gemm_kernels"]
    n_launches = 32
    for _ in range(n_launches):
        emit_kernel_with_duration(
            timing,
            "sgemm_128x64_nn",
            gemm_budget / n_launches,
            mem_to_comp=0.25,
            grid_blocks=120,
        )
    # Launch and synchronisation overhead of the framework's many small
    # kernels, aggregated.
    timing.api_call(
        "cudaLaunchKernel", total * GPU_PHASE_FRACTIONS["kernel_launch"], category="launch"
    )
    timing.api_call(
        "cudaStreamSynchronize", total * GPU_PHASE_FRACTIONS["kernel_sync"], category="sync"
    )
    timing.api_call(
        "cudaMemcpyDtoH",
        total * GPU_PHASE_FRACTIONS["memcpy"] * 0.2,
        category="memcpy_dtoh",
    )
    timing.api_call(
        "ctc_decode_cpu", total * GPU_PHASE_FRACTIONS["decode_cpu"], category="cpu"
    )
    elapsed = ctx.clock.now - start
    return ToolExecutionResult(
        stdout=f"bonito gpu finished {dataset.name} in {elapsed / 3600.0:.2f}h",
        result=predicted,
        breakdown=dict(predicted.breakdown),
    )


def seqstats_executor(argv: list[str], ctx: ToolExecutionContext) -> ToolExecutionResult:
    """The CPU-only control tool: trivial, never touches a GPU."""
    ctx.clock.advance(0.5)
    return ToolExecutionResult(stdout="seqstats ok", breakdown={"cpu_total": 0.5})


# --------------------------------------------------------------------- #
# registration
# --------------------------------------------------------------------- #
def register_paper_tools(
    app: GalaxyApp, racon_gpu_ids: str = "0", bonito_gpu_ids: str = "1"
) -> None:
    """Install the paper's tools and executors into a Galaxy app.

    ``racon_gpu_ids`` / ``bonito_gpu_ids`` fill the requirement
    ``version`` tags — the per-tool GPU preferences the multi-GPU cases
    of §VI-C use (Racon wants device 0, Bonito device 1).
    """
    from repro.galaxy.tool_xml import parse_tool_xml
    from repro.tools.wrappers import (
        CPU_ONLY_TOOL_XML,
        bonito_tool_xml,
        racon_macros_xml,
        racon_tool_xml,
    )

    app.install_tool(
        parse_tool_xml(
            racon_tool_xml(),
            macros={"macros.xml": racon_macros_xml(racon_gpu_ids)},
        )
    )
    app.install_tool(parse_tool_xml(bonito_tool_xml(bonito_gpu_ids)))
    app.install_tool(parse_tool_xml(CPU_ONLY_TOOL_XML))
    app.register_executor("racon", racon_cpu_executor)
    app.register_executor("racon_gpu", racon_gpu_executor)
    app.register_executor("bonito", bonito_executor)
    app.register_executor("seqstats", seqstats_executor)
