"""A minimizer-seed read-to-reference mapper (the minimap2 substitute).

Racon's pipeline needs read-to-backbone mappings; the authors use
minimap2.  This module provides a from-scratch replacement adequate for
the reproduction: (w, k)-minimizer indexing of the target, seed lookup
per read, diagonal binning, and a best-diagonal vote that yields a PAF
interval.  It is intentionally simple — no chaining DP, no SVs — but on
the simulator's read error rates it recovers >95 % of true origins,
which the tests assert against the generator's ground truth.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.tools.seqio.paf import PafRecord
from repro.tools.seqio.records import SeqRecord, reverse_complement

_ENCODE = {"A": 0, "C": 1, "G": 2, "T": 3}


def _encode(sequence: str) -> np.ndarray:
    """Sequence to uint8 codes; unknown bases become 'A'."""
    table = np.zeros(256, dtype=np.uint8)
    for base, code in _ENCODE.items():
        table[ord(base)] = code
        table[ord(base.lower())] = code
    return table[np.frombuffer(sequence.encode(), dtype=np.uint8)]


def kmer_codes(sequence: str, k: int) -> np.ndarray:
    """Rolling k-mer integer codes (length ``len(sequence) - k + 1``).

    Vectorised: codes are built by horner-scheme accumulation over k
    shifted views rather than a Python loop over positions.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    encoded = _encode(sequence).astype(np.int64)
    n = len(encoded) - k + 1
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    codes = np.zeros(n, dtype=np.int64)
    for offset in range(k):
        codes = codes * 4 + encoded[offset : offset + n]
    return codes


def minimizers(sequence: str, k: int = 15, w: int = 10) -> list[tuple[int, int]]:
    """(kmer_code, position) minimizers with window ``w``.

    The minimizer of each window of ``w`` consecutive k-mers is the one
    with the smallest hashed code; duplicates collapse.  Hashing avoids
    the poly-A pathology of raw lexicographic minima.
    """
    codes = kmer_codes(sequence, k)
    if codes.size == 0:
        return []
    # Simple integer hash (xorshift-multiply), vectorised.  Arithmetic in
    # uint64 with explicit wraparound keeps NumPy happy.
    hashed = codes.astype(np.uint64)
    hashed ^= hashed >> np.uint64(13)
    hashed *= np.uint64(0x9E3779B97F4A7C15)
    hashed &= np.uint64((1 << 63) - 1)
    n = codes.size
    window = min(w, n)
    picks: set[tuple[int, int]] = set()
    # Sliding-window argmin via stride tricks would allocate n*w; use a
    # monotonic deque for O(n).
    from collections import deque

    dq: deque[int] = deque()
    for i in range(n):
        while dq and hashed[dq[-1]] >= hashed[i]:
            dq.pop()
        dq.append(i)
        if dq[0] <= i - window:
            dq.popleft()
        if i >= window - 1:
            j = dq[0]
            picks.add((int(codes[j]), j))
    return sorted(picks, key=lambda t: t[1])


@dataclass
class MinimizerIndex:
    """Minimizer index of one target sequence."""

    target: SeqRecord
    k: int
    w: int
    table: dict[int, list[int]]

    @classmethod
    def build(cls, target: SeqRecord, k: int = 15, w: int = 10) -> "MinimizerIndex":
        """Index ``target``'s forward strand."""
        table: dict[int, list[int]] = defaultdict(list)
        for code, pos in minimizers(target.sequence, k=k, w=w):
            table[code].append(pos)
        return cls(target=target, k=k, w=w, table=dict(table))

    def seeds(self, query: str) -> list[tuple[int, int]]:
        """(query_pos, target_pos) seed matches for a query string."""
        hits: list[tuple[int, int]] = []
        for code, qpos in minimizers(query, k=self.k, w=self.w):
            for tpos in self.table.get(code, ()):
                hits.append((qpos, tpos))
        return hits


class MinimizerMapper:
    """Maps reads to a single target via best-diagonal voting."""

    def __init__(
        self,
        target: SeqRecord,
        k: int = 15,
        w: int = 10,
        min_seeds: int = 3,
        diagonal_slop: int = 100,
    ) -> None:
        self.index = MinimizerIndex.build(target, k=k, w=w)
        self.min_seeds = min_seeds
        self.diagonal_slop = diagonal_slop

    def _vote(self, seeds: list[tuple[int, int]]) -> tuple[int, list[tuple[int, int]]] | None:
        """Bin seeds by diagonal; return (votes, seeds) of the best bin."""
        if len(seeds) < self.min_seeds:
            return None
        bins: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for qpos, tpos in seeds:
            bins[(tpos - qpos) // self.diagonal_slop].append((qpos, tpos))
        best_key = max(bins, key=lambda key: len(bins[key]))
        # Merge the two adjacent bins — indel drift straddles boundaries.
        merged = list(bins[best_key])
        for neighbour in (best_key - 1, best_key + 1):
            merged.extend(bins.get(neighbour, ()))
        if len(merged) < self.min_seeds:
            return None
        return len(merged), merged

    def map_read(self, read: SeqRecord) -> PafRecord | None:
        """Map one read; returns a PAF record or None when unmapped."""
        target = self.index.target
        for strand, query in (
            ("+", read.sequence),
            ("-", reverse_complement(read.sequence)),
        ):
            vote = self._vote(self.index.seeds(query))
            if vote is None:
                continue
            votes, seeds = vote
            qpositions = [q for q, _ in seeds]
            tpositions = [t for _, t in seeds]
            qstart, qend = min(qpositions), max(qpositions) + self.index.k
            tstart, tend = min(tpositions), max(tpositions) + self.index.k
            # Extend the target interval to cover the full read span.
            tstart = max(0, tstart - qstart)
            tend = min(len(target), tend + (len(read) - qend))
            block = max(qend - qstart, tend - tstart)
            return PafRecord(
                query_name=read.name,
                query_length=len(read),
                query_start=0,
                query_end=len(read),
                strand=strand,
                target_name=target.name,
                target_length=len(target),
                target_start=tstart,
                target_end=tend,
                residue_matches=votes * self.index.k,
                alignment_block_length=block,
            )
        return None

    def map_reads(self, reads: list[SeqRecord]) -> list[PafRecord]:
        """Map many reads; unmapped reads are dropped (like minimap2)."""
        records = []
        for read in reads:
            record = self.map_read(read)
            if record is not None:
                records.append(record)
        return records
