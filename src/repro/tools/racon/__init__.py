"""Racon: windowed POA consensus polishing, CPU and (simulated) GPU.

Racon (Vaser et al. 2017) polishes a draft assembly: it splits the
backbone into windows, gathers the read fragments mapping into each
window, builds a partial-order alignment (POA) of the fragments, and
replaces the window with the POA consensus.  The GPU build offloads the
POA/consensus step to ClaraGenomics CUDA kernels (``generatePOAKernel``
and ``generateConsensusKernel`` in the paper's Fig. 4), batched by the
``--cudapoa-batches`` parameter.

This package implements the whole pipeline from scratch:

* :mod:`alignment` — global and banded pairwise alignment (the *banding
  approximation* of the paper's parameter sweeps);
* :mod:`poa` — partial-order alignment graphs with sequence-to-graph
  alignment and heaviest-bundle consensus;
* :mod:`consensus` — the windowed polishing pipeline (CPU path);
* :mod:`cuda` — the batched device path through the GPU simulator,
  producing *bit-identical* consensus while accounting time on the
  device model;
* :mod:`perf_model` — the calibrated paper-scale timing model behind
  Figs. 3 and 7 and the §VI-A breakdown.
"""

from repro.tools.racon.alignment import (
    AlignmentResult,
    global_alignment,
    banded_alignment,
    identity,
    edit_distance,
)
from repro.tools.racon.poa import POAGraph
from repro.tools.racon.consensus import RaconPolisher, PolishResult, Window
from repro.tools.racon.cuda import CudaPOABatcher
from repro.tools.racon.perf_model import RaconPerfModel, RaconTiming

__all__ = [
    "AlignmentResult",
    "global_alignment",
    "banded_alignment",
    "identity",
    "edit_distance",
    "POAGraph",
    "RaconPolisher",
    "PolishResult",
    "Window",
    "CudaPOABatcher",
    "RaconPerfModel",
    "RaconTiming",
]
