"""Pairwise alignment: global Needleman-Wunsch and a banded variant.

Racon scores windows with SIMD-accelerated global alignment; its GPU
build exposes a *banding approximation* that restricts the dynamic
program to a diagonal band, trading a little accuracy for a large
constant-factor win.  Both appear in the paper's parameter sweeps
(Figs. 3 and 7, "with/without banding approximation"), so both are
implemented: the full DP (row-vectorised with NumPy) and the banded DP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Racon's default scoring (match, mismatch, gap).
DEFAULT_MATCH = 3
DEFAULT_MISMATCH = -5
DEFAULT_GAP = -4

_NEG_INF = np.iinfo(np.int32).min // 4


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of a pairwise alignment.

    ``cigar`` uses =, X, I, D ops (match / mismatch / insertion-to-query
    / deletion-from-query), query-relative.
    """

    score: int
    cigar: str
    query_aligned: str
    target_aligned: str

    @property
    def matches(self) -> int:
        """Number of exactly matching columns."""
        return sum(
            1
            for q, t in zip(self.query_aligned, self.target_aligned, strict=True)
            if q == t and q != "-"
        )

    @property
    def columns(self) -> int:
        """Total alignment columns."""
        return len(self.query_aligned)

    @property
    def identity(self) -> float:
        """Matches over columns (0.0 for empty alignments)."""
        return self.matches / self.columns if self.columns else 0.0


def _encode(sequence: str) -> np.ndarray:
    return np.frombuffer(sequence.encode(), dtype=np.uint8)


def _traceback(
    pointer: np.ndarray, query: str, target: str
) -> tuple[str, str, str]:
    """Walk the pointer matrix from the corner; returns (cigar, qa, ta).

    Pointer codes: 0 diagonal, 1 up (gap in target / insertion), 2 left
    (gap in query / deletion).
    """
    i, j = len(query), len(target)
    ops: list[str] = []
    qa: list[str] = []
    ta: list[str] = []
    while i > 0 or j > 0:
        move = pointer[i, j]
        if i > 0 and j > 0 and move == 0:
            qa.append(query[i - 1])
            ta.append(target[j - 1])
            ops.append("=" if query[i - 1] == target[j - 1] else "X")
            i -= 1
            j -= 1
        elif i > 0 and (move == 1 or j == 0):
            qa.append(query[i - 1])
            ta.append("-")
            ops.append("I")
            i -= 1
        else:
            qa.append("-")
            ta.append(target[j - 1])
            ops.append("D")
            j -= 1
    ops.reverse()
    qa.reverse()
    ta.reverse()
    # Run-length encode the op string into a CIGAR.
    cigar: list[str] = []
    run = 0
    prev = ""
    for op in ops + [""]:
        if op == prev:
            run += 1
        else:
            if prev:
                cigar.append(f"{run}{prev}")
            prev = op
            run = 1
    return "".join(cigar), "".join(qa), "".join(ta)


def global_alignment(
    query: str,
    target: str,
    match: int = DEFAULT_MATCH,
    mismatch: int = DEFAULT_MISMATCH,
    gap: int = DEFAULT_GAP,
) -> AlignmentResult:
    """Needleman-Wunsch global alignment with linear gap penalty.

    The DP fills row by row with the inner loop vectorised across the
    target dimension for the substitution and deletion terms; the
    insertion term has a serial dependency handled with a prefix-max
    trick only when profitable, otherwise a thin Python loop — windows in
    Racon are short (hundreds of bases), so clarity wins.
    """
    n, m = len(query), len(target)
    q = _encode(query)
    t = _encode(target)
    score = np.empty((n + 1, m + 1), dtype=np.int32)
    pointer = np.zeros((n + 1, m + 1), dtype=np.uint8)
    score[0, :] = np.arange(m + 1, dtype=np.int32) * gap
    score[:, 0] = np.arange(n + 1, dtype=np.int32) * gap
    pointer[0, 1:] = 2
    pointer[1:, 0] = 1
    steps = np.arange(1, m + 1, dtype=np.int32)
    for i in range(1, n + 1):
        sub = np.where(t == q[i - 1], match, mismatch).astype(np.int32)
        diag = score[i - 1, :-1] + sub
        up = score[i - 1, 1:] + gap
        best = np.maximum(diag, up)
        ptr_row = np.where(diag >= up, 0, 1).astype(np.uint8)
        # Left (gap-in-query) chains have a serial dependency; with a
        # linear gap penalty they reduce to a prefix max:
        #   row[j] = j*gap + max(row[0], max_{k<=j}(best[k-1] - k*gap))
        row = score[i]
        adjusted = best - steps * gap
        prefix = np.maximum.accumulate(np.maximum(adjusted, row[0]))
        row[1:] = steps * gap + prefix
        from_best = row[1:] == best
        pointer[i, 1:] = np.where(from_best, ptr_row, 2)
    cigar, qa, ta = _traceback(pointer, query, target)
    return AlignmentResult(
        score=int(score[n, m]), cigar=cigar, query_aligned=qa, target_aligned=ta
    )


def banded_alignment(
    query: str,
    target: str,
    band: int = 64,
    match: int = DEFAULT_MATCH,
    mismatch: int = DEFAULT_MISMATCH,
    gap: int = DEFAULT_GAP,
) -> AlignmentResult:
    """Global alignment restricted to a diagonal band of half-width ``band``.

    Cells outside the band are -inf; the result equals the full DP
    whenever the optimal path stays inside the band (always true for the
    small indel drift of same-window fragments), at a fraction of the
    work — this is the paper's *banding approximation*.
    """
    n, m = len(query), len(target)
    if band <= 0:
        raise ValueError("band must be positive")
    if abs(n - m) >= band:
        # The corner lies outside the band; widen to keep it feasible.
        band = abs(n - m) + band
    q = _encode(query)
    t = _encode(target)
    score = np.full((n + 1, m + 1), _NEG_INF, dtype=np.int32)
    pointer = np.zeros((n + 1, m + 1), dtype=np.uint8)
    score[0, 0] = 0
    upper = min(m, band)
    score[0, 1 : upper + 1] = np.arange(1, upper + 1, dtype=np.int32) * gap
    pointer[0, 1 : upper + 1] = 2
    lower = min(n, band)
    score[1 : lower + 1, 0] = np.arange(1, lower + 1, dtype=np.int32) * gap
    pointer[1 : lower + 1, 0] = 1
    for i in range(1, n + 1):
        j_low = max(1, i - band)
        j_high = min(m, i + band)
        if j_low > j_high:
            continue
        js = np.arange(j_low, j_high + 1)
        sub = np.where(t[js - 1] == q[i - 1], match, mismatch).astype(np.int32)
        diag = score[i - 1, j_low - 1 : j_high] + sub
        up = score[i - 1, j_low : j_high + 1] + gap
        best = np.maximum(diag, up)
        ptr_row = np.where(diag >= up, 0, 1).astype(np.uint8)
        row = score[i]
        # Same prefix-max reduction of the left-move chain as in
        # :func:`global_alignment`, restricted to the band.
        width = j_high - j_low + 1
        steps = np.arange(1, width + 1, dtype=np.int64)
        adjusted = best.astype(np.int64) - steps * gap
        prefix = np.maximum.accumulate(
            np.maximum(adjusted, np.int64(row[j_low - 1]))
        )
        segment = steps * gap + prefix
        row[j_low : j_high + 1] = segment
        from_best = segment == best
        pointer[i, j_low : j_high + 1] = np.where(from_best, ptr_row, 2)
    cigar, qa, ta = _traceback(pointer, query, target)
    return AlignmentResult(
        score=int(score[n, m]), cigar=cigar, query_aligned=qa, target_aligned=ta
    )


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance, vectorised row DP."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    bv = _encode(b)
    previous = np.arange(len(b) + 1, dtype=np.int32)
    for i, ch in enumerate(_encode(a), start=1):
        current = np.empty_like(previous)
        current[0] = i
        sub = previous[:-1] + (bv != ch)
        dele = previous[1:] + 1
        best = np.minimum(sub, dele)
        prev = current[0]
        for j in range(1, len(b) + 1):
            prev = min(best[j - 1], prev + 1)
            current[j] = prev
        previous = current
    return int(previous[-1])


def identity(a: str, b: str) -> float:
    """Sequence identity derived from edit distance over max length."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - edit_distance(a, b) / longest
