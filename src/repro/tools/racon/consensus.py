"""The windowed Racon polishing pipeline (CPU path).

Mirrors Racon's structure: split the backbone into fixed-length windows,
project each mapped read onto the windows it overlaps (clipping the read
by linear coordinate interpolation — Racon uses the alignment, we use
the PAF interval, adequate at window granularity), build a POA per
window seeded with the backbone fragment, call the consensus, and stitch
the polished windows back together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tools.racon.alignment import DEFAULT_GAP, DEFAULT_MATCH, DEFAULT_MISMATCH
from repro.tools.racon.poa import POAGraph
from repro.tools.seqio.paf import PafRecord
from repro.tools.seqio.records import SeqRecord, reverse_complement

#: Racon's default window length is 500 bases.
DEFAULT_WINDOW_LENGTH = 500
#: Fragments shorter than this fraction of their window are discarded
#: (they carry too little signal and slow the POA down) — Racon applies
#: an equivalent quality/length filter.
MIN_FRAGMENT_FRACTION = 0.02


@dataclass
class Window:
    """One backbone window and the read fragments assigned to it."""

    index: int
    start: int
    end: int
    backbone_fragment: str
    fragments: list[str] = field(default_factory=list)
    #: POA fusion weight per fragment (parallel to :attr:`fragments`);
    #: quality-weighted when the polisher is configured for it.
    weights: list[int] = field(default_factory=list)

    def fragment_weight(self, position: int) -> int:
        """Weight of fragment ``position`` (1 when weights are unused)."""
        if position < len(self.weights):
            return self.weights[position]
        return 1

    @property
    def length(self) -> int:
        """Window span on the backbone."""
        return self.end - self.start

    @property
    def coverage(self) -> float:
        """Mean fragment coverage of the window."""
        if self.length == 0:
            return 0.0
        return sum(len(f) for f in self.fragments) / self.length

    def workload_cells(self, banded: bool = False, band: int = 64) -> int:
        """Approximate DP cells the window costs (drives the GPU model)."""
        cells = 0
        for fragment in self.fragments:
            if banded:
                cells += len(fragment) * min(2 * band + 1, max(1, self.length))
            else:
                cells += len(fragment) * max(1, self.length)
        return cells


@dataclass
class PolishResult:
    """Outcome of one polishing run."""

    polished: SeqRecord
    windows_total: int
    windows_polished: int
    fragments_used: int
    fragments_dropped: int

    @property
    def polish_fraction(self) -> float:
        """Share of windows that had read support."""
        if self.windows_total == 0:
            return 0.0
        return self.windows_polished / self.windows_total


class RaconPolisher:
    """Configurable Racon-style polisher.

    Parameters
    ----------
    window_length:
        Backbone window size (Racon default 500).
    banded / band:
        The paper's *banding approximation*.  In this reproduction the
        consensus itself is computed identically with or without banding
        (the adaptive band always covers window-scale indel drift); the
        flag changes the modelled device workload (see
        :meth:`Window.workload_cells`) and is threaded through to the
        perf model.
    """

    def __init__(
        self,
        window_length: int = DEFAULT_WINDOW_LENGTH,
        match: int = DEFAULT_MATCH,
        mismatch: int = DEFAULT_MISMATCH,
        gap: int = DEFAULT_GAP,
        banded: bool = False,
        band: int = 64,
        quality_threshold: float | None = None,
        weight_by_quality: bool = False,
    ) -> None:
        """See class docstring; quality handling mirrors real Racon:

        ``quality_threshold``
            Fragments whose mean Phred quality falls below this are
            dropped (Racon's ``-q``, default 10.0 there; ``None`` here
            disables the filter so quality-less FASTA inputs work).
        ``weight_by_quality``
            When set, each fragment's POA fusion weight scales with its
            mean quality (higher-confidence reads out-vote noisy ones).
        """
        if window_length <= 0:
            raise ValueError("window_length must be positive")
        self.window_length = window_length
        self.match = match
        self.mismatch = mismatch
        self.gap = gap
        self.banded = banded
        self.band = band
        self.quality_threshold = quality_threshold
        self.weight_by_quality = weight_by_quality

    # ------------------------------------------------------------------ #
    # window construction
    # ------------------------------------------------------------------ #
    def build_windows(
        self,
        backbone: SeqRecord,
        reads: list[SeqRecord],
        mappings: list[PafRecord],
    ) -> tuple[list[Window], int]:
        """Split the backbone and assign read fragments to windows.

        Returns (windows, dropped_fragment_count).
        """
        length = len(backbone)
        windows: list[Window] = []
        for index, start in enumerate(range(0, length, self.window_length)):
            end = min(length, start + self.window_length)
            windows.append(
                Window(
                    index=index,
                    start=start,
                    end=end,
                    backbone_fragment=backbone.sequence[start:end],
                )
            )
        reads_by_name = {read.name: read for read in reads}
        dropped = 0
        for mapping in mappings:
            read = reads_by_name.get(mapping.query_name)
            if read is None or mapping.target_name != backbone.name:
                dropped += 1
                continue
            sequence = read.sequence
            quality = read.quality
            if mapping.strand == "-":
                sequence = reverse_complement(sequence)
                quality = quality[::-1] if quality else None
            dropped += self._assign_fragments(windows, sequence, quality, mapping)
        return windows, dropped

    @staticmethod
    def _mean_quality(quality: str) -> float:
        return sum(ord(c) - 33 for c in quality) / len(quality) if quality else 0.0

    def _fragment_weight(self, quality: str | None) -> int:
        """POA fusion weight of a fragment from its quality string."""
        if not self.weight_by_quality or not quality:
            return 1
        # Q10 -> 1, Q20 -> 2, Q40 -> 4 (capped): confident reads out-vote.
        return max(1, min(4, int(self._mean_quality(quality) // 10)))

    def _assign_fragments(
        self,
        windows: list[Window],
        sequence: str,
        quality: str | None,
        mapping: PafRecord,
    ) -> int:
        """Clip one read onto every window it overlaps; returns drops."""
        tstart, tend = mapping.target_start, mapping.target_end
        qstart, qend = mapping.query_start, mapping.query_end
        tspan = max(1, tend - tstart)
        qspan = qend - qstart
        dropped = 0

        def read_pos(target_pos: int) -> int:
            scaled = qstart + (target_pos - tstart) * qspan / tspan
            return int(min(max(scaled, qstart), qend))

        first = tstart // self.window_length
        last = (tend - 1) // self.window_length if tend > tstart else first
        for wi in range(first, min(last + 1, len(windows))):
            window = windows[wi]
            clip_start = max(tstart, window.start)
            clip_end = min(tend, window.end)
            if clip_end <= clip_start:
                continue
            lo, hi = read_pos(clip_start), read_pos(clip_end)
            fragment = sequence[lo:hi]
            if len(fragment) < MIN_FRAGMENT_FRACTION * window.length:
                dropped += 1
                continue
            fragment_quality = quality[lo:hi] if quality else None
            if (
                self.quality_threshold is not None
                and fragment_quality
                and self._mean_quality(fragment_quality) < self.quality_threshold
            ):
                dropped += 1
                continue
            window.fragments.append(fragment)
            window.weights.append(self._fragment_weight(fragment_quality))
        return dropped

    # ------------------------------------------------------------------ #
    # per-window consensus
    # ------------------------------------------------------------------ #
    def polish_window(self, window: Window) -> str:
        """POA consensus of one window (backbone kept when unsupported)."""
        if not window.fragments or not window.backbone_fragment:
            return window.backbone_fragment
        graph = POAGraph(
            window.backbone_fragment,
            match=self.match,
            mismatch=self.mismatch,
            gap=self.gap,
        )
        for position, fragment in enumerate(window.fragments):
            graph.add_sequence(fragment, weight=window.fragment_weight(position))
        return graph.consensus()

    # ------------------------------------------------------------------ #
    # full pipeline
    # ------------------------------------------------------------------ #
    def polish(
        self,
        backbone: SeqRecord,
        reads: list[SeqRecord],
        mappings: list[PafRecord],
        window_processor=None,
    ) -> PolishResult:
        """Polish ``backbone`` with ``reads`` mapped by ``mappings``.

        ``window_processor`` overrides per-window consensus computation —
        the CUDA batcher passes itself here so the GPU path shares all
        of the windowing logic.
        """
        windows, dropped = self.build_windows(backbone, reads, mappings)
        consensuses = (
            [self.polish_window(w) for w in windows]
            if window_processor is None
            else window_processor(windows, self)
        )
        polished_count = sum(1 for w in windows if w.fragments)
        used = sum(len(w.fragments) for w in windows)
        polished = SeqRecord(
            name=f"{backbone.name}_polished", sequence="".join(consensuses)
        )
        return PolishResult(
            polished=polished,
            windows_total=len(windows),
            windows_polished=polished_count,
            fragments_used=used,
            fragments_dropped=dropped,
        )

    def polish_rounds(
        self,
        backbone: SeqRecord,
        reads: list[SeqRecord],
        rounds: int = 2,
        mapper_k: int = 13,
        mapper_w: int = 5,
        window_processor=None,
    ) -> list[PolishResult]:
        """Iterative polishing — how Racon is used in practice.

        Each round re-maps the reads against the previous round's output
        (the coordinates shift as indels are corrected) and polishes
        again; assemblies typically converge within 2-4 rounds.  Returns
        one :class:`PolishResult` per round, in order.
        """
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        from repro.tools.mapping import MinimizerMapper

        results: list[PolishResult] = []
        current = backbone
        for round_index in range(rounds):
            mapper = MinimizerMapper(current, k=mapper_k, w=mapper_w)
            mappings = mapper.map_reads(reads)
            result = self.polish(
                current, reads, mappings, window_processor=window_processor
            )
            result.polished.name = f"{backbone.name}_round{round_index + 1}"
            results.append(result)
            current = result.polished
        return results
