"""The batched CUDA POA path (ClaraGenomics analogue).

Racon-GPU groups windows into ``--cudapoa-batches`` device batches; per
batch it copies the fragment data host-to-device, launches
``generatePOAKernel`` then ``generateConsensusKernel``, synchronises and
copies results back — exactly the call mix the paper's NVProf hotspot
chart (Fig. 4) shows.  Windows whose fragments exceed the device-batch
memory budget fall back to host polishing, producing the "additional CPU
polishing for the remaining portion of the reads that could not be
polished in GPU" of §VI-A.

Consensus results are computed with the *same* host functions as the CPU
path, so GPU and CPU outputs are bit-identical — the device model only
accounts time and memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.kernels import KernelLaunch, KernelTimingModel, MemcpyKind
from repro.tools.racon.consensus import RaconPolisher, Window

#: FLOPs charged per POA DP cell.  A cudapoa cell touches several
#: predecessors, branch bookkeeping and traceback pointers; 146 FLOPs/
#: cell against 28 B/cell of traffic puts the kernel's memory-time /
#: compute-time ratio at ~3.5, which is what the paper's NVProf stall
#: analysis reports (~70 % memory-dependency vs ~20 % execution-
#: dependency stalls).
FLOPS_PER_CELL = 146.0
#: Bytes of device traffic per DP cell (score matrix reads/writes).
BYTES_PER_CELL = 28.0
#: Threads per CUDA block in cudapoa kernels.
POA_BLOCK_THREADS = 64
#: Device-memory budget per window slot in a batch (scores + graph).
BYTES_PER_WINDOW_SLOT = 4 * 1024 * 1024


@dataclass
class CudaBatchStats:
    """Accounting for one device batch."""

    batch_index: int
    windows: int
    cells: int
    htod_bytes: float
    dtoh_bytes: float
    kernel_seconds: float
    transfer_seconds: float


@dataclass
class CudaPolishStats:
    """Aggregate accounting across a GPU-polished run."""

    batches: list[CudaBatchStats] = field(default_factory=list)
    windows_on_gpu: int = 0
    windows_on_cpu: int = 0
    alloc_seconds: float = 0.0

    @property
    def kernel_seconds(self) -> float:
        """Total device-kernel time."""
        return sum(b.kernel_seconds for b in self.batches)

    @property
    def transfer_seconds(self) -> float:
        """Total PCIe transfer time."""
        return sum(b.transfer_seconds for b in self.batches)


class CudaPOABatcher:
    """Processes Racon windows through the simulated device in batches.

    Usable directly as a ``window_processor`` for
    :meth:`repro.tools.racon.consensus.RaconPolisher.polish`.

    Parameters
    ----------
    timing:
        The device timing model (owns device, clock, profiler, PID).
    batches:
        The ``--cudapoa-batches`` count: windows are spread across this
        many device batches.
    banded:
        Banding approximation: shrinks per-window DP cell counts.
    band:
        Band half-width when ``banded``.
    """

    def __init__(
        self,
        timing: KernelTimingModel,
        batches: int = 1,
        banded: bool = False,
        band: int = 64,
    ) -> None:
        if batches <= 0:
            raise ValueError("batches must be positive")
        self.timing = timing
        self.batches = batches
        self.banded = banded
        self.band = band
        self.stats = CudaPolishStats()

    # ------------------------------------------------------------------ #
    def __call__(self, windows: list[Window], polisher: RaconPolisher) -> list[str]:
        """Process all windows; returns per-window consensus strings."""
        results: list[str | None] = [None] * len(windows)
        gpu_windows = [w for w in windows if w.fragments]
        cpu_windows = [w for w in windows if not w.fragments]
        for window in cpu_windows:
            results[window.index] = window.backbone_fragment

        # cudaMalloc of the working set, charged once (paper: ~2 s of the
        # 15 s GPU polish is allocation).
        if gpu_windows:
            slots = max(1, (len(gpu_windows) + self.batches - 1) // self.batches)
            alloc_start = self.timing.host.clock.now
            allocation = self.timing.malloc(
                min(
                    slots * BYTES_PER_WINDOW_SLOT,
                    self.timing.device.memory.free_bytes // 2 + 1,
                ),
                tag="cudapoa_workspace",
            )
            self.stats.alloc_seconds += self.timing.host.clock.now - alloc_start
        else:
            allocation = None

        for batch_index, batch in enumerate(self._split(gpu_windows)):
            if not batch:
                continue
            self._process_batch(batch_index, batch, polisher, results)

        if allocation is not None:
            self.timing.free(allocation)
        return [r if r is not None else "" for r in results]

    def _split(self, windows: list[Window]) -> list[list[Window]]:
        """Round-robin windows into ``batches`` groups (cudapoa's layout)."""
        groups: list[list[Window]] = [[] for _ in range(self.batches)]
        for i, window in enumerate(windows):
            groups[i % self.batches].append(window)
        return groups

    def _process_batch(
        self,
        batch_index: int,
        batch: list[Window],
        polisher: RaconPolisher,
        results: list[str | None],
    ) -> None:
        cells = sum(w.workload_cells(self.banded, self.band) for w in batch)
        htod = float(sum(sum(len(f) for f in w.fragments) for w in batch))
        t0 = self.timing.host.clock.now

        self.timing.memcpy(MemcpyKind.HOST_TO_DEVICE, htod)
        transfer = self.timing.host.clock.now - t0

        k0 = self.timing.host.clock.now
        self.timing.launch(
            KernelLaunch(
                name="generatePOAKernel",
                grid_blocks=max(1, len(batch)),
                threads_per_block=POA_BLOCK_THREADS,
                flops=cells * FLOPS_PER_CELL,
                bytes_read=cells * BYTES_PER_CELL * 0.75,
                bytes_written=cells * BYTES_PER_CELL * 0.25,
            )
        )
        self.timing.synchronize()
        consensus_cells = sum(len(w.backbone_fragment) * 4 for w in batch)
        self.timing.launch(
            KernelLaunch(
                name="generateConsensusKernel",
                grid_blocks=max(1, len(batch)),
                threads_per_block=POA_BLOCK_THREADS,
                flops=consensus_cells * 4.0,
                bytes_read=consensus_cells * 8.0,
                bytes_written=float(sum(len(w.backbone_fragment) for w in batch)),
            )
        )
        self.timing.synchronize()
        kernel_seconds = self.timing.host.clock.now - k0

        # The actual consensus values come from the shared host routines,
        # guaranteeing CPU/GPU result equality.
        dtoh = 0.0
        for window in batch:
            consensus = polisher.polish_window(window)
            results[window.index] = consensus
            dtoh += len(consensus)
        t1 = self.timing.host.clock.now
        self.timing.memcpy(MemcpyKind.DEVICE_TO_HOST, dtoh)
        self.timing.synchronize()
        transfer += self.timing.host.clock.now - t1

        self.stats.windows_on_gpu += len(batch)
        self.stats.batches.append(
            CudaBatchStats(
                batch_index=batch_index,
                windows=len(batch),
                cells=cells,
                htod_bytes=htod,
                dtoh_bytes=dtoh,
                kernel_seconds=kernel_seconds,
                transfer_seconds=transfer,
            )
        )
