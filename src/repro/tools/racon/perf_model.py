"""Calibrated Racon performance model (paper Figs. 3, 7 and §VI-A).

Two scales are modelled:

**Unit model** (Figs. 3/7): the paper sweeps CPU thread count,
``--cudapoa-batches`` and banding for a fixed work unit and reports
seconds.  The model decomposes unit time into a host preparation part
(thread-scaled, with contention penalties past the sweet spot) and a
device part (occupancy improves with batches for small banded kernels;
per-batch overhead dominates for large unbanded kernels).  Coefficients
are calibrated to the paper's quoted optima:

* bare metal, unbanded: best 1.72 s at 4 threads / 1 batch;
* bare metal, banded: best 1.67 s at 4 threads / 16 batches;
* bare metal CPU-only: 3.22 s at 4 threads (~2x slower than GPU);
* containerized, unbanded: best at 2 threads / 4 batches;
* containerized, banded: best at 2 threads / 8 batches;
* container launch + cold-start overhead ~0.6 s (~36 % of compute time).

**End-to-end model** (§VI-A): for paper-scale datasets, anchored to the
17 GB Alzheimers NFL measurements — CPU ~410 s end-to-end with 117 s of
polishing; GPU ~200 s end-to-end with 15 s of polishing (2 s allocation
+ 13 s kernels + ~0.1 ms CPU tail) plus ~40 s of CUDA API overhead
(chunked transfers + synchronisation).  Other datasets scale these
components by size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.workloads.datasets import ALZHEIMERS_NFL, DatasetDescriptor

# ---- unit model calibration (Figs. 3 and 7) --------------------------- #
#: CPU-only unit time: serial + parallel/threads; 3.22 s at 4 threads.
CPU_SERIAL_S = 0.90
CPU_PARALLEL_S = 9.28

#: GPU host-side preparation, bare metal: 0.475 s at 4 threads.
BARE_PREP_BASE_S = 0.25
BARE_PREP_PARALLEL_S = 0.90
#: CPU contention past 4 threads (feeding threads fight the tool's own).
BARE_THREAD_PENALTY_S = 0.05
BARE_THREAD_SWEET_SPOT = 4

#: In-container preparation: cgroup CPU limits move the sweet spot to 2.
CONTAINER_PREP_BASE_S = 0.25
CONTAINER_PREP_PARALLEL_S = 0.55
CONTAINER_THREAD_PENALTY_S = 0.12
CONTAINER_THREAD_SWEET_SPOT = 2

#: Unbanded kernels: one batch already fills the device; extra batches
#: only add launch/staging overhead.
UNBANDED_KERNEL_S = 1.245
UNBANDED_BATCH_OVERHEAD = 0.04

#: Banded kernels are small: occupancy o(b) = b / (b + OCC_HALF) grows
#: with batch count, against a linear per-batch overhead.
BANDED_KERNEL_S = 0.946
BANDED_OCC_HALF = 1.5
BANDED_BATCH_OVERHEAD_S = 0.01

#: Container staging effects: pinned-memory staging prefers mid-sized
#: unbanded batches (optimum 4) and penalises very high banded counts.
CONTAINER_UNBANDED_STAGING = 0.06
CONTAINER_BANDED_STAGING_S = 0.02
CONTAINER_BANDED_STAGING_KNEE = 8

#: Docker launch + cold start (matches the simulated runtime's charges).
CONTAINER_OVERHEAD_S = 0.61

# ---- end-to-end calibration (§VI-A, 17 GB Alzheimers NFL) ------------- #
CPU_PIPELINE_NFL_S = 293.0
CPU_POLISH_NFL_S = 117.0
GPU_PIPELINE_NFL_S = 145.0
GPU_ALLOC_S = 2.0
GPU_KERNEL_NFL_S = 13.0
GPU_API_OVERHEAD_NFL_S = 40.0
GPU_CPU_TAIL_S = 0.0001
#: Banding shrinks the paper-scale kernel time by this factor.
BANDED_KERNEL_FACTOR = 0.76
#: Fraction of polish work that stays parallel across threads.
POLISH_PARALLEL_FRACTION = 0.85
REFERENCE_THREADS = 4


@dataclass(frozen=True)
class RaconTiming:
    """A predicted Racon execution time with its phase breakdown."""

    device: str  # 'cpu' | 'gpu'
    total_seconds: float
    breakdown: dict[str, float] = field(default_factory=dict, hash=False)
    threads: int = 4
    batches: int | None = None
    banded: bool = False
    containerized: bool = False

    @property
    def polish_seconds(self) -> float:
        """Time spent in the polishing phase."""
        keys = ("polish", "gpu_alloc", "gpu_kernels", "cpu_tail")
        return sum(self.breakdown.get(k, 0.0) for k in keys)


class RaconPerfModel:
    """Racon timing predictions at both unit and paper scale."""

    # ------------------------------------------------------------------ #
    # unit model (Figs. 3 and 7)
    # ------------------------------------------------------------------ #
    def cpu_unit_time(self, threads: int) -> float:
        """CPU-only unit time across thread counts (Fig. 3 CPU series)."""
        if threads <= 0:
            raise ValueError("threads must be positive")
        return CPU_SERIAL_S + CPU_PARALLEL_S / threads

    def _prep_time(self, threads: int, containerized: bool) -> float:
        if threads <= 0:
            raise ValueError("threads must be positive")
        if containerized:
            base, parallel = CONTAINER_PREP_BASE_S, CONTAINER_PREP_PARALLEL_S
            penalty, sweet = CONTAINER_THREAD_PENALTY_S, CONTAINER_THREAD_SWEET_SPOT
        else:
            base, parallel = BARE_PREP_BASE_S, BARE_PREP_PARALLEL_S
            penalty, sweet = BARE_THREAD_PENALTY_S, BARE_THREAD_SWEET_SPOT
        return base + parallel / threads + penalty * max(0, threads - sweet)

    def _kernel_time(self, batches: int, banded: bool, containerized: bool) -> float:
        if batches <= 0:
            raise ValueError("batches must be positive")
        if banded:
            occupancy = batches / (batches + BANDED_OCC_HALF)
            time = BANDED_KERNEL_S / occupancy + BANDED_BATCH_OVERHEAD_S * batches
            if containerized:
                time += CONTAINER_BANDED_STAGING_S * max(
                    0, batches - CONTAINER_BANDED_STAGING_KNEE
                )
            return time
        time = UNBANDED_KERNEL_S * (1.0 + UNBANDED_BATCH_OVERHEAD * (batches - 1))
        if containerized:
            time = UNBANDED_KERNEL_S * (
                1.0 + CONTAINER_UNBANDED_STAGING * abs(math.log2(batches) - 2.0)
            )
        return time

    def gpu_unit_compute_time(
        self,
        threads: int,
        batches: int = 1,
        banded: bool = False,
        containerized: bool = False,
    ) -> float:
        """GPU unit time *excluding* the container launch overhead.

        This is what the in-container tool process itself spends; the
        container runtime's launch/cold-start charge is added by the
        runner (or by :meth:`gpu_unit_time` for standalone predictions).
        """
        return self._prep_time(threads, containerized) + self._kernel_time(
            batches, banded, containerized
        )

    def gpu_unit_time(
        self,
        threads: int,
        batches: int = 1,
        banded: bool = False,
        containerized: bool = False,
    ) -> float:
        """GPU unit time for one sweep configuration.

        Containerized times include the ~0.6 s launch/cold-start
        overhead, as the paper's Fig. 7 measurements do.
        """
        time = self.gpu_unit_compute_time(threads, batches, banded, containerized)
        if containerized:
            time += CONTAINER_OVERHEAD_S
        return time

    def best_gpu_config(
        self,
        banded: bool,
        containerized: bool = False,
        thread_choices: tuple[int, ...] = (1, 2, 4, 8),
        batch_choices: tuple[int, ...] = (1, 4, 8, 16),
    ) -> tuple[int, int, float]:
        """(threads, batches, seconds) minimising the unit time."""
        best: tuple[int, int, float] | None = None
        for threads in thread_choices:
            for batches in batch_choices:
                t = self.gpu_unit_time(threads, batches, banded, containerized)
                if best is None or t < best[2]:
                    best = (threads, batches, t)
        assert best is not None
        return best

    # ------------------------------------------------------------------ #
    # end-to-end model (§VI-A)
    # ------------------------------------------------------------------ #
    def _scale(self, dataset: DatasetDescriptor) -> float:
        return dataset.size_bytes / ALZHEIMERS_NFL.size_bytes

    def _thread_factor(self, threads: int) -> float:
        serial = 1.0 - POLISH_PARALLEL_FRACTION
        return serial + POLISH_PARALLEL_FRACTION * REFERENCE_THREADS / threads

    def cpu_end_to_end(
        self, dataset: DatasetDescriptor = ALZHEIMERS_NFL, threads: int = 4
    ) -> RaconTiming:
        """Paper-scale CPU-only run: pipeline + polish."""
        scale = self._scale(dataset)
        polish = CPU_POLISH_NFL_S * scale * self._thread_factor(threads)
        pipeline = CPU_PIPELINE_NFL_S * scale
        return RaconTiming(
            device="cpu",
            total_seconds=pipeline + polish,
            breakdown={"pipeline": pipeline, "polish": polish},
            threads=threads,
        )

    def gpu_end_to_end(
        self,
        dataset: DatasetDescriptor = ALZHEIMERS_NFL,
        threads: int = 4,
        batches: int = 1,
        banded: bool = False,
        containerized: bool = False,
    ) -> RaconTiming:
        """Paper-scale GPU run with the §VI-A phase breakdown."""
        scale = self._scale(dataset)
        kernel = GPU_KERNEL_NFL_S * scale
        if banded:
            kernel *= BANDED_KERNEL_FACTOR
        api = GPU_API_OVERHEAD_NFL_S * scale
        pipeline = GPU_PIPELINE_NFL_S * scale
        breakdown = {
            "pipeline": pipeline,
            "gpu_alloc": GPU_ALLOC_S,
            "gpu_kernels": kernel,
            "cpu_tail": GPU_CPU_TAIL_S,
            "cuda_api_overhead": api,
        }
        if containerized:
            breakdown["container_overhead"] = CONTAINER_OVERHEAD_S
        return RaconTiming(
            device="gpu",
            total_seconds=sum(breakdown.values()),
            breakdown=breakdown,
            threads=threads,
            batches=batches,
            banded=banded,
            containerized=containerized,
        )

    def speedup(
        self, dataset: DatasetDescriptor = ALZHEIMERS_NFL, threads: int = 4
    ) -> float:
        """End-to-end GPU speedup over CPU (paper: ~2x on NFL)."""
        return (
            self.cpu_end_to_end(dataset, threads).total_seconds
            / self.gpu_end_to_end(dataset, threads).total_seconds
        )
