"""Partial-order alignment (POA) graphs with consensus calling.

Racon's core data structure: a DAG whose paths spell the sequences it
has absorbed.  The first sequence seeds a linear chain; each further
sequence is aligned *to the graph* (dynamic programming over the
topological order) and fused in — matches bump node/edge weights,
mismatches and insertions add branch nodes.  The consensus is the
heaviest path (Racon §Methods: "heaviest bundle").

Complexity is O(|V| * L) per added sequence; window-sized inputs
(hundreds of bases, tens of fragments) stay comfortably fast with the
row-vectorised DP below.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.tools.racon.alignment import DEFAULT_GAP, DEFAULT_MATCH, DEFAULT_MISMATCH

_NEG_INF = np.int64(np.iinfo(np.int32).min // 4)


@dataclass
class _Node:
    """One POA node: a base with support weight."""

    node_id: int
    base: str
    weight: int = 1


class POAGraph:
    """A partial-order alignment graph.

    Parameters
    ----------
    sequence:
        The seed sequence (Racon seeds each window's graph with the
        backbone fragment).
    match / mismatch / gap:
        Alignment scoring used for every subsequent fusion.
    """

    def __init__(
        self,
        sequence: str,
        match: int = DEFAULT_MATCH,
        mismatch: int = DEFAULT_MISMATCH,
        gap: int = DEFAULT_GAP,
    ) -> None:
        if not sequence:
            raise ValueError("POA graph needs a non-empty seed sequence")
        self.match = match
        self.mismatch = mismatch
        self.gap = gap
        self._nodes: list[_Node] = []
        self._out: dict[int, dict[int, int]] = {}  # u -> {v: weight}
        self._in: dict[int, set[int]] = {}
        #: mismatch alternatives: node -> {base: alt_node}
        self._alternatives: dict[int, dict[str, int]] = {}
        self.sequences_added = 0
        previous = None
        for base in sequence:
            node = self._new_node(base)
            if previous is not None:
                self._add_edge(previous, node.node_id, 1)
            previous = node.node_id
        self.sequences_added = 1

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def _new_node(self, base: str, weight: int = 1) -> _Node:
        node = _Node(node_id=len(self._nodes), base=base, weight=weight)
        self._nodes.append(node)
        self._out[node.node_id] = {}
        self._in[node.node_id] = set()
        return node

    def _add_edge(self, u: int, v: int, weight: int) -> None:
        self._out[u][v] = self._out[u].get(v, 0) + weight
        self._in[v].add(u)

    @property
    def node_count(self) -> int:
        """Number of nodes currently in the graph."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of distinct edges."""
        return sum(len(targets) for targets in self._out.values())

    def base(self, node_id: int) -> str:
        """Base labelling a node."""
        return self._nodes[node_id].base

    def topological_order(self) -> list[int]:
        """Kahn topological order (the graph is a DAG by construction)."""
        indegree = {nid: len(self._in[nid]) for nid in range(len(self._nodes))}
        queue = deque(nid for nid, deg in indegree.items() if deg == 0)
        order: list[int] = []
        while queue:
            nid = queue.popleft()
            order.append(nid)
            for succ in self._out[nid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self._nodes):  # pragma: no cover - invariant
            raise RuntimeError("POA graph contains a cycle")
        return order

    # ------------------------------------------------------------------ #
    # sequence-to-graph alignment
    # ------------------------------------------------------------------ #
    def align(self, sequence: str) -> list[tuple[int | None, int | None]]:
        """Locally align ``sequence`` to the graph (Smith-Waterman style).

        Returns alignment pairs ``(node_id | None, seq_index | None)`` —
        ``(n, j)`` match/mismatch, ``(n, None)`` node skipped (deletion),
        ``(None, j)`` base inserted.  The alignment is *local*: low-
        scoring fragment ends are soft-clipped (no pairs emitted), which
        is what keeps window-boundary slop from fusing into the graph as
        spurious insertions — mirroring Racon's per-window clipping.
        """
        if not sequence:
            return []
        order = self.topological_order()
        rank_of = {nid: r for r, nid in enumerate(order, start=1)}
        n_rows = len(order) + 1
        length = len(sequence)
        seq = np.frombuffer(sequence.encode(), dtype=np.uint8)

        score = np.zeros((n_rows, length + 1), dtype=np.int64)
        # moves: 0 diag, 1 del, 2 ins, 3 stop (local start)
        move = np.full((n_rows, length + 1), 3, dtype=np.uint8)
        pred = np.zeros((n_rows, length + 1), dtype=np.int32)

        gap = np.int64(self.gap)
        steps = np.arange(1, length + 1, dtype=np.int64)
        zero = np.int64(0)
        for r, nid in enumerate(order, start=1):
            node = self._nodes[nid]
            preds = [rank_of[p] for p in self._in[nid]] or [0]
            sub = np.where(
                seq == ord(node.base), self.match, self.mismatch
            ).astype(np.int64)
            # Best over predecessors for diagonal and deletion moves.
            if len(preds) == 1:
                p = preds[0]
                diag = score[p, :-1] + sub
                dele = score[p, 1:] + gap
                pred_diag = pred_del = np.full(length, p, dtype=np.int32)
            else:
                diag_stack = np.stack([score[p, :-1] for p in preds])
                del_stack = np.stack([score[p, 1:] for p in preds])
                diag_idx = np.argmax(diag_stack, axis=0)
                del_idx = np.argmax(del_stack, axis=0)
                cols = np.arange(length)
                diag = diag_stack[diag_idx, cols] + sub
                dele = del_stack[del_idx, cols] + gap
                preds_arr = np.array(preds, dtype=np.int32)
                pred_diag = preds_arr[diag_idx]
                pred_del = preds_arr[del_idx]
            row = score[r]
            row[0] = 0  # local: starting fresh is always available

            better_diag = diag >= dele
            best = np.where(better_diag, diag, dele)
            move_row = np.where(better_diag, 0, 1).astype(np.uint8)
            pred_row = np.where(better_diag, pred_diag, pred_del)
            # Insertion chains have a serial dependency; with a linear
            # gap penalty they reduce to a prefix max:
            #   row[j] = j*gap + max_{k<=j}(best[k-1] - k*gap)
            # (clamped-to-zero cells cannot seed a profitable insertion
            # chain since gap < 0, so clamping after the chain is exact.)
            adjusted = best - steps * gap
            prefix = np.maximum.accumulate(adjusted)
            chain = steps * gap + prefix
            clamped = np.maximum(chain, zero)
            row[1:] = clamped
            from_best = chain == best
            move[r, 1:] = np.where(
                clamped == 0, 3, np.where(from_best, move_row, 2)
            )
            pred[r, 1:] = np.where(from_best, pred_row, r)

        # Local end: the global maximum cell.
        flat_end = int(np.argmax(score))
        r, j = divmod(flat_end, length + 1)
        pairs: list[tuple[int | None, int | None]] = []
        while r > 0 and score[r, j] > 0:
            m = move[r, j]
            if m == 3:
                break
            if m == 0:
                pairs.append((order[r - 1], j - 1))
                r = int(pred[r, j])
                j -= 1
            elif m == 1:
                pairs.append((order[r - 1], None))
                r = int(pred[r, j])
            else:
                pairs.append((None, j - 1))
                j -= 1
        pairs.reverse()
        return pairs

    # ------------------------------------------------------------------ #
    # fusion
    # ------------------------------------------------------------------ #
    def add_sequence(self, sequence: str, weight: int = 1) -> None:
        """Align ``sequence`` to the graph and fuse it in.

        Acyclicity is preserved by a rank guard: every edge added by the
        fusion goes from a lower to a strictly higher rank, where ranks
        are a valid topological order of the pre-fusion graph extended
        with synthetic fractional ranks for nodes created (or reused as
        branches) during this walk.  Branch reuse is only permitted when
        the candidate's rank fits strictly between the previous node's
        rank and the rank of the next matched backbone node, which is
        exactly the condition under which both of its new edges point
        "forward"; otherwise a fresh node is created.
        """
        if not sequence:
            return
        pairs = self.align(sequence)
        rank: dict[int, float] = {
            nid: float(r) for r, nid in enumerate(self.topological_order())
        }
        # Upper bound per pair: rank of the next traceback pair anchored
        # to an existing node that also consumes a sequence base.
        bounds = [float("inf")] * len(pairs)
        next_bound = float("inf")
        for i in range(len(pairs) - 1, -1, -1):
            node_id, j = pairs[i]
            bounds[i] = next_bound
            if node_id is not None and j is not None:
                next_bound = rank[node_id]

        def synthetic_rank(prev: int | None, bound: float) -> float:
            low = rank[prev] if prev is not None else -1.0
            high = bound if bound != float("inf") else low + 1.0
            return (low + high) / 2.0

        previous: int | None = None
        for i, (node_id, j) in enumerate(pairs):
            if j is None:
                continue  # deletion: the node is skipped, no new support
            base = sequence[j]
            bound = bounds[i]
            prev_rank = rank[previous] if previous is not None else -1.0
            if node_id is not None and self._nodes[node_id].base == base:
                current = node_id
                self._nodes[current].weight += weight
            elif node_id is not None:
                # Mismatch: reuse the alternative node when its rank fits.
                alts = self._alternatives.setdefault(node_id, {})
                candidate = alts.get(base)
                if candidate is not None and prev_rank < rank.get(
                    candidate, -1.0
                ) < bound:
                    current = candidate
                    self._nodes[current].weight += weight
                else:
                    current = self._new_node(base, weight=weight).node_id
                    rank[current] = synthetic_rank(previous, bound)
                    alts.setdefault(base, current)
            else:
                # Insertion: reuse a same-base insertion node previously
                # created after the same predecessor, when its rank fits.
                current = -1
                if previous is not None:
                    for succ in self._out[previous]:
                        if (
                            self._nodes[succ].base == base
                            and succ != previous
                            and prev_rank < rank.get(succ, -1.0) < bound
                        ):
                            current = succ
                            self._nodes[succ].weight += weight
                            break
                if current < 0:
                    current = self._new_node(base, weight=weight).node_id
                    rank[current] = synthetic_rank(previous, bound)
            # A rank inversion would create a cycle; the support is
            # still counted on the node, only the edge is dropped.
            if (
                previous is not None
                and current != previous
                and rank[previous] < rank[current]
            ):
                self._add_edge(previous, current, weight)
            previous = current
        self.sequences_added += 1

    # ------------------------------------------------------------------ #
    # consensus
    # ------------------------------------------------------------------ #
    #: Per-edge penalty in the consensus DP.  A plain "heaviest path"
    #: that sums weights favours LONGER paths, so every weight-1
    #: insertion branch in a low-coverage region gets absorbed into the
    #: consensus — a systematic growth bias that compounds under
    #: iterative polishing.  Charging each edge its baseline support of
    #: 1 makes a detour profitable only when its edges carry MORE than
    #: baseline support (i.e. multiple reads agree on the insertion),
    #: which is the behaviour Racon's heaviest-bundle traversal has.
    CONSENSUS_EDGE_PENALTY = 1.0

    def consensus(self) -> str:
        """Edge-support consensus (penalised heaviest path).

        ``score[v] = max(0, max_u score[u] + w(u,v) - 1)`` with ties
        broken toward extending a path (so unanimous coverage-1 chains —
        a bare backbone — survive intact), toward the heavier edge, and
        toward the lower (earlier-created, backbone-first) node id.
        """
        order = self.topological_order()
        score: dict[int, float] = {}
        back: dict[int, int | None] = {}
        depth: dict[int, int] = {}
        for nid in order:
            best_score = 0.0
            best_parent: int | None = None
            best_key = (-1.0, 1)  # (edge weight, -parent priority)
            for parent in self._in[nid]:
                weight = self._out[parent][nid]
                cand = score[parent] + weight - self.CONSENSUS_EDGE_PENALTY
                key = (float(weight), -parent)
                if cand > best_score or (
                    cand == best_score
                    and (best_parent is None or key > best_key)
                ):
                    best_score = cand
                    best_parent = parent
                    best_key = key
            score[nid] = best_score
            back[nid] = best_parent
            depth[nid] = depth[best_parent] + 1 if best_parent is not None else 1
        end = max(score, key=lambda nid: (score[nid], depth[nid], -nid))
        path: list[int] = []
        node: int | None = end
        while node is not None:
            path.append(node)
            node = back[node]
        path.reverse()
        return "".join(self._nodes[nid].base for nid in path)
