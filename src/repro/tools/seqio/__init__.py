"""Sequence I/O: FASTA, FASTQ, PAF, and a FAST5-like signal container."""

from repro.tools.seqio.records import SeqRecord, SignalRead
from repro.tools.seqio.fasta import parse_fasta, write_fasta
from repro.tools.seqio.fastq import parse_fastq, write_fastq
from repro.tools.seqio.paf import PafRecord, parse_paf, write_paf

__all__ = [
    "SeqRecord",
    "SignalRead",
    "parse_fasta",
    "write_fasta",
    "parse_fastq",
    "write_fastq",
    "PafRecord",
    "parse_paf",
    "write_paf",
]
