"""FASTA parsing and serialisation."""

from __future__ import annotations

from typing import Iterable

from repro.tools.seqio.records import SeqRecord


def parse_fasta(text: str) -> list[SeqRecord]:
    """Parse FASTA text into records.

    Tolerates leading blank lines and multi-line sequences; rejects
    content before the first header.
    """
    records: list[SeqRecord] = []
    name: str | None = None
    description = ""
    chunks: list[str] = []

    def flush() -> None:
        if name is not None:
            records.append(
                SeqRecord(name=name, sequence="".join(chunks), description=description)
            )

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith(">"):
            flush()
            header = line[1:].split(None, 1)
            if not header:
                raise ValueError("FASTA header with no name")
            name = header[0]
            description = header[1] if len(header) > 1 else ""
            chunks = []
        else:
            if name is None:
                raise ValueError("sequence data before any FASTA header")
            chunks.append(line)
    flush()
    return records


def write_fasta(records: Iterable[SeqRecord], line_width: int = 80) -> str:
    """Serialise records as FASTA with wrapped sequence lines."""
    if line_width <= 0:
        raise ValueError("line_width must be positive")
    out: list[str] = []
    for record in records:
        if record.description:
            out.append(f">{record.name} {record.description}")
        else:
            out.append(f">{record.name}")
        seq = record.sequence
        for start in range(0, len(seq), line_width):
            out.append(seq[start : start + line_width])
        if not seq:
            out.append("")
    return "\n".join(out) + "\n"
