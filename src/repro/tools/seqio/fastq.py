"""FASTQ parsing and serialisation."""

from __future__ import annotations

from typing import Iterable

from repro.tools.seqio.records import SeqRecord


def parse_fastq(text: str) -> list[SeqRecord]:
    """Parse FASTQ text (strict four-line records)."""
    lines = [line for line in text.splitlines() if line.strip()]
    if len(lines) % 4 != 0:
        raise ValueError(f"FASTQ line count {len(lines)} is not a multiple of 4")
    records: list[SeqRecord] = []
    for i in range(0, len(lines), 4):
        header, sequence, plus, quality = lines[i : i + 4]
        if not header.startswith("@"):
            raise ValueError(f"record {i // 4}: header must start with '@'")
        if not plus.startswith("+"):
            raise ValueError(f"record {i // 4}: separator must start with '+'")
        parts = header[1:].split(None, 1)
        records.append(
            SeqRecord(
                name=parts[0],
                sequence=sequence.strip(),
                quality=quality.strip(),
                description=parts[1] if len(parts) > 1 else "",
            )
        )
    return records


def write_fastq(records: Iterable[SeqRecord]) -> str:
    """Serialise records as FASTQ; missing qualities become 'I' (Q40)."""
    out: list[str] = []
    for record in records:
        quality = record.quality or "I" * len(record.sequence)
        out.extend([f"@{record.name}", record.sequence, "+", quality])
    return "\n".join(out) + "\n"


def mean_quality(record: SeqRecord, offset: int = 33) -> float:
    """Mean Phred quality of a record (0.0 when no quality string)."""
    if not record.quality:
        return 0.0
    return sum(ord(c) - offset for c in record.quality) / len(record.quality)
