"""PAF (Pairwise mApping Format) records.

Racon's command line takes reads, *mappings of reads to the backbone*
(typically minimap2 PAF output), and the backbone itself.  Our mapper
(:mod:`repro.tools.mapping`) and read simulator both emit these records.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PafRecord:
    """One PAF line (the 12 mandatory columns)."""

    query_name: str
    query_length: int
    query_start: int
    query_end: int
    strand: str  # '+' or '-'
    target_name: str
    target_length: int
    target_start: int
    target_end: int
    residue_matches: int
    alignment_block_length: int
    mapping_quality: int = 60

    def __post_init__(self) -> None:
        if self.strand not in "+-":
            raise ValueError(f"strand must be '+' or '-', got {self.strand!r}")
        if not 0 <= self.query_start <= self.query_end <= self.query_length:
            raise ValueError(f"bad query interval on {self.query_name}")
        if not 0 <= self.target_start <= self.target_end <= self.target_length:
            raise ValueError(f"bad target interval on {self.query_name}")

    @property
    def target_span(self) -> int:
        """Bases of the target the mapping covers."""
        return self.target_end - self.target_start

    @property
    def identity_estimate(self) -> float:
        """Matches over block length (minimap2's gap-compressed analogue)."""
        if self.alignment_block_length == 0:
            return 0.0
        return self.residue_matches / self.alignment_block_length

    def to_line(self) -> str:
        """Tab-separated PAF line."""
        return "\t".join(
            str(x)
            for x in (
                self.query_name,
                self.query_length,
                self.query_start,
                self.query_end,
                self.strand,
                self.target_name,
                self.target_length,
                self.target_start,
                self.target_end,
                self.residue_matches,
                self.alignment_block_length,
                self.mapping_quality,
            )
        )


def parse_paf(text: str) -> list[PafRecord]:
    """Parse PAF text (mandatory columns; extra SAM-like tags ignored)."""
    records: list[PafRecord] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        fields = line.split("\t")
        if len(fields) < 12:
            raise ValueError(f"PAF line {lineno}: expected >=12 fields, got {len(fields)}")
        records.append(
            PafRecord(
                query_name=fields[0],
                query_length=int(fields[1]),
                query_start=int(fields[2]),
                query_end=int(fields[3]),
                strand=fields[4],
                target_name=fields[5],
                target_length=int(fields[6]),
                target_start=int(fields[7]),
                target_end=int(fields[8]),
                residue_matches=int(fields[9]),
                alignment_block_length=int(fields[10]),
                mapping_quality=int(fields[11]),
            )
        )
    return records


def write_paf(records: list[PafRecord]) -> str:
    """Serialise records as PAF text."""
    return "\n".join(record.to_line() for record in records) + "\n"
