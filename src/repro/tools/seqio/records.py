"""Core sequence/signal record types."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

DNA_ALPHABET = "ACGT"

_COMPLEMENT = str.maketrans("ACGTacgt", "TGCAtgca")


def reverse_complement(sequence: str) -> str:
    """Reverse complement of a DNA string (case-preserving)."""
    return sequence.translate(_COMPLEMENT)[::-1]


@dataclass
class SeqRecord:
    """A named nucleotide sequence, optionally with per-base qualities."""

    name: str
    sequence: str
    quality: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.quality is not None and len(self.quality) != len(self.sequence):
            raise ValueError(
                f"{self.name}: quality length {len(self.quality)} != "
                f"sequence length {len(self.sequence)}"
            )

    def __len__(self) -> int:
        return len(self.sequence)

    @property
    def gc_content(self) -> float:
        """Fraction of G/C bases (0.0 for the empty sequence)."""
        if not self.sequence:
            return 0.0
        gc = sum(1 for base in self.sequence.upper() if base in "GC")
        return gc / len(self.sequence)

    def reverse_complement(self) -> "SeqRecord":
        """A new record holding the reverse complement."""
        return SeqRecord(
            name=self.name,
            sequence=reverse_complement(self.sequence),
            quality=self.quality[::-1] if self.quality else None,
            description=self.description,
        )

    def subsequence(self, start: int, end: int, name: str | None = None) -> "SeqRecord":
        """A clipped copy covering ``[start, end)``."""
        return SeqRecord(
            name=name or f"{self.name}:{start}-{end}",
            sequence=self.sequence[start:end],
            quality=self.quality[start:end] if self.quality else None,
        )


@dataclass
class SignalRead:
    """A raw nanopore read: the picoampere signal plus metadata.

    This is the FAST5-file analogue — Oxford Nanopore stores one signal
    array per read in HDF5 containers; we keep them in memory.  When the
    read was simulated, ``true_sequence`` carries the ground truth used
    for accuracy evaluation.
    """

    read_id: str
    signal: np.ndarray
    sample_rate_hz: float = 4000.0
    true_sequence: str | None = None
    channel: int = 1

    def __post_init__(self) -> None:
        self.signal = np.asarray(self.signal, dtype=np.float32)
        if self.signal.ndim != 1:
            raise ValueError("signal must be one-dimensional")

    def __len__(self) -> int:
        return int(self.signal.shape[0])

    @property
    def duration_seconds(self) -> float:
        """Sampling duration of the read."""
        return len(self) / self.sample_rate_hz
