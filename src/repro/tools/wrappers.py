"""Galaxy tool wrapper XML for Racon and Bonito (paper Codes 1 and 3).

These strings are the reproduction's counterparts of the paper's
``macros.xml`` (Code 1) and ``racon.xml`` (Code 3): the macros file
declares the new ``<requirement type="compute">gpu</requirement>`` and
the wrapper's Cheetah command switches executable on
``$__galaxy_gpu_enabled__``.
"""

from __future__ import annotations

#: Paper Code 1 — the requirements macro with the compute/gpu entry.
#: The ``version`` attribute of the gpu requirement carries the
#: requested GPU minor ID(s) (paper §IV-C).
RACON_MACROS_XML = """\
<macros>
    <xml name="requirements">
        <requirements>
            <requirement type="package" version="1.4.20">racon</requirement>
            <requirement type="compute" version="@GPU_IDS@">gpu</requirement>
            <container type="docker">gulsumgudukbay/racon_dockerfile:latest</container>
        </requirements>
    </xml>
    <token name="@TOOL_VERSION@">1.4.20</token>
</macros>
"""

#: Paper Code 3 — the Racon wrapper.  The command template reads
#: ``__galaxy_gpu_enabled__`` from the parameter dictionary exactly as
#: the paper describes, choosing ``racon_gpu`` or ``racon``.
RACON_TOOL_XML = """\
<tool id="racon" name="Racon consensus" version="@TOOL_VERSION@">
    <macros>
        <import>macros.xml</import>
    </macros>
    <expand macro="requirements"/>
    <command>
#if $__galaxy_gpu_enabled__ == "true"
racon_gpu -t $threads --cudapoa-batches $batches
#if $banding == "true"
 -b
#end if
#else
racon -t $threads
#end if
 reads.fa mappings.paf backbone.fa
    </command>
    <inputs>
        <param name="threads" type="integer" value="4" label="CPU threads"/>
        <param name="batches" type="integer" value="1" label="CUDA POA batches"/>
        <param name="banding" type="text" value="false" label="Banding approximation"/>
    </inputs>
    <outputs>
        <data name="consensus" format="fasta" label="Polished consensus"/>
    </outputs>
</tool>
"""

#: A Bonito wrapper in the same style (pip package 0.3.2 in the paper).
BONITO_TOOL_XML = """\
<tool id="bonito" name="Bonito basecaller" version="0.3.2">
    <requirements>
        <requirement type="package" version="0.3.2">ont-bonito</requirement>
        <requirement type="compute" version="@GPU_IDS@">gpu</requirement>
        <container type="docker">nanoporetech/bonito:0.3.2</container>
    </requirements>
    <command>
#if $__galaxy_gpu_enabled__ == "true"
bonito basecaller dna_r9.4.1 reads/ --device cuda
#else
bonito basecaller dna_r9.4.1 reads/ --device cpu
#end if
    </command>
    <inputs>
        <param name="model" type="text" value="dna_r9.4.1" label="Model"/>
    </inputs>
    <outputs>
        <data name="basecalls" format="fasta" label="Basecalled reads"/>
    </outputs>
</tool>
"""

#: A CPU-only control tool: no compute requirement at all, so stock and
#: GYAN behaviour must coincide (the "retain the original execution
#: flow" property).
CPU_ONLY_TOOL_XML = """\
<tool id="seqstats" name="Sequence statistics" version="1.0">
    <requirements>
        <requirement type="package" version="1.0">seqstats</requirement>
    </requirements>
    <command>
seqstats -t $threads input.fa
    </command>
    <inputs>
        <param name="threads" type="integer" value="1" label="CPU threads"/>
    </inputs>
    <outputs>
        <data name="stats" format="tabular"/>
    </outputs>
</tool>
"""


def racon_tool_xml(gpu_ids: str = "0") -> str:
    """The Racon wrapper with the requested GPU minor ID(s) filled in."""
    return RACON_TOOL_XML


def racon_macros_xml(gpu_ids: str = "0") -> str:
    """The macros file with the requested GPU minor ID(s) filled in."""
    return RACON_MACROS_XML.replace("@GPU_IDS@", gpu_ids)


def bonito_tool_xml(gpu_ids: str = "1") -> str:
    """The Bonito wrapper with the requested GPU minor ID(s) filled in."""
    return BONITO_TOOL_XML.replace("@GPU_IDS@", gpu_ids)
