"""Chaos runs: a workload driven under an injected fault plan.

One function, :func:`run_chaos`, is shared by the ``python -m repro
faults`` CLI and the chaos tests: build a deployment (resilient or
stock), arm an :class:`~repro.gpusim.faults.InjectionPlan`, push a fixed
alternating Racon/Bonito workload through it, and report per-job
survival.  The result serialises stably (:meth:`ChaosRunResult.to_json`)
so two runs of the same seeded plan can be compared byte for byte.

In a *resilient* deployment every layer of the degradation stack is
armed — NVML retries, launch requeues, device quarantine, multi-hop
resubmission — and the expectation is that every job still reaches OK.
In a *stock* deployment the same plan loses jobs: a mid-run device death
fails the job with nothing to resubmit it, and an NVML flake crashes job
mapping outright.  The delta between the two runs is the resilience
layer's contribution, which is the point of the exercise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.cluster.node import ComputeNode
from repro.core.orchestrator import build_deployment
from repro.gpusim.faults import InjectionPlan, build_scenario
from repro.observability.tracing import Tracer

#: The default alternating workload (tool ids cycled over ``jobs``).
DEFAULT_TOOLS = ("racon", "bonito")


@dataclass(frozen=True)
class ChaosJobResult:
    """Survival record for one submitted job."""

    tool: str
    state: str
    destination: str | None
    resubmit_chain: tuple[int, ...]
    error: str | None = None
    #: Typed overload reason when the job was *shed* (deliberately
    #: refused) rather than lost — distinct from failure in the ledger.
    shed_reason: str | None = None

    @property
    def survived(self) -> bool:
        return self.state == "ok"

    @property
    def shed(self) -> bool:
        return self.shed_reason is not None

    def to_dict(self) -> dict:
        data: dict = {"tool": self.tool, "state": self.state,
                      "destination": self.destination}
        if self.resubmit_chain:
            data["resubmit_chain"] = list(self.resubmit_chain)
        if self.error:
            data["error"] = self.error
        if self.shed_reason:
            data["shed_reason"] = self.shed_reason
        return data


@dataclass
class ChaosRunResult:
    """Everything one chaos run observed, stably serialisable."""

    plan: InjectionPlan
    resilient: bool
    jobs: list[ChaosJobResult] = field(default_factory=list)
    #: Exception message when the *app itself* crashed (stock mode only:
    #: an unhandled NVML error aborts mapping); jobs after the crash are
    #: never submitted and count as lost.
    crashed: str | None = None
    faults_fired: int = 0
    nvml_errors_served: int = 0
    container_failures_served: int = 0
    launch_requeues: int = 0
    quarantine_events: list[tuple[str, str]] = field(default_factory=list)
    degraded_queries: int = 0
    end_time: float = 0.0
    jobs_requested: int = 0
    #: Populated tracer / registry when the run was traced (``trace=True``);
    #: excluded from :meth:`to_dict` so serialisation is unchanged.
    tracer: object = field(default=None, repr=False, compare=False)
    registry: object = field(default=None, repr=False, compare=False)

    @property
    def survived(self) -> int:
        return sum(1 for j in self.jobs if j.survived)

    @property
    def shed(self) -> int:
        """Jobs the overload layer *deliberately* refused (typed reason)."""
        return sum(1 for j in self.jobs if j.shed)

    @property
    def lost(self) -> int:
        """Jobs that neither finished OK nor were deliberately shed.

        Shed is load management, loss is damage; the two are counted
        apart so a hardened run can shed under a storm and still report
        zero losses.
        """
        return self.jobs_requested - self.survived - self.shed

    @property
    def all_ok(self) -> bool:
        return self.crashed is None and self.lost == 0

    def to_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "resilient": self.resilient,
            "jobs_requested": self.jobs_requested,
            "survived": self.survived,
            "shed": self.shed,
            "lost": self.lost,
            "crashed": self.crashed,
            "jobs": [j.to_dict() for j in self.jobs],
            "faults_fired": self.faults_fired,
            "nvml_errors_served": self.nvml_errors_served,
            "container_failures_served": self.container_failures_served,
            "launch_requeues": self.launch_requeues,
            "quarantine_events": [list(q) for q in self.quarantine_events],
            "degraded_queries": self.degraded_queries,
            "end_time": round(self.end_time, 6),
        }

    def to_json(self) -> str:
        """Stable serialisation for byte-for-byte reproducibility checks."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def resolve_plan(
    scenario: str | None = None,
    plan_file=None,
    seed: int = 0,
    device_count: int = 2,
) -> InjectionPlan:
    """A plan from a named scenario or a JSON file (file wins)."""
    if plan_file is not None:
        return InjectionPlan.from_file(plan_file)
    return build_scenario(scenario or "k80-die-midrun", seed=seed,
                          device_count=device_count)


def run_chaos(
    plan: InjectionPlan,
    jobs: int | None = None,
    resilient: bool | None = None,
    tools: tuple[str, ...] | None = None,
    trace: bool = False,
    clock=None,
) -> ChaosRunResult:
    """Drive ``jobs`` tool runs through a deployment under ``plan``.

    Everything is deterministic: the deployment, the plan (seeded), and
    the workload order, so equal inputs produce identical results.

    A plan may embed the workload it was authored against
    (:class:`~repro.gpusim.faults.WorkloadSpec` — verifier
    counterexamples do): its fields supply the defaults here, and also
    pin the job_conf and resubmit hop cap of the deployment.  Explicit
    arguments always win over the embedded spec.

    With ``trace=True`` a :class:`~repro.observability.tracing.Tracer`
    is bound to the deployment's clock and threaded through every layer;
    the populated tracer and the deployment's metrics registry come back
    on :attr:`ChaosRunResult.tracer` / :attr:`~ChaosRunResult.registry`
    (both excluded from serialisation, so ``to_json`` is unchanged).

    ``clock`` injects a pre-built virtual clock into the testbed — the
    determinism checker passes its permuting shim here.
    """
    # Imported here: executors pulls in workloads.datasets, so a module-
    # level import would cycle through this package's __init__.
    from repro.tools.executors import register_paper_tools

    spec = plan.workload
    if jobs is None:
        jobs = spec.jobs if spec is not None else 8
    if resilient is None:
        resilient = spec.resilient if spec is not None else True
    if tools is None:
        tools = spec.tools if spec is not None else DEFAULT_TOOLS

    node = ComputeNode.paper_testbed(clock=clock)
    tracer = Tracer(node.clock) if trace else None
    deployment = build_deployment(
        node=node,
        resilient=resilient,
        job_conf_xml=spec.job_conf_xml if spec is not None else None,
        max_resubmit_hops=(
            spec.max_resubmit_hops if spec is not None else None
        ),
        tracer=tracer,
    )
    register_paper_tools(deployment.app)
    injector = deployment.inject(plan)

    result = ChaosRunResult(plan=plan, resilient=resilient,
                            jobs_requested=jobs)
    finished: list[tuple[str, object]] = []
    for i in range(jobs):
        tool = tools[i % len(tools)]
        try:
            job = deployment.run_tool(tool, {"workload": "unit"})
        except Exception as exc:  # stock mode: mapping itself can crash
            result.crashed = f"{type(exc).__name__}: {exc}"
            break
        finished.append((tool, job))
    # Job ids come from a process-global counter; renumber chains relative
    # to this run's first job so equal runs serialise byte-for-byte.
    base = min(deployment.app.jobs, default=1)
    for tool, job in finished:
        result.jobs.append(
            ChaosJobResult(
                tool=tool,
                state=job.state.value,
                destination=job.metrics.destination_id,
                resubmit_chain=tuple(
                    jid - base + 1 for jid in job.metrics.resubmit_chain
                ),
                error=(job.stderr or None)
                if job.state.value == "error" else None,
                shed_reason=job.metrics.shed_reason,
            )
        )

    result.faults_fired = len(injector.fired)
    plane = deployment.gpu_host.faults
    result.nvml_errors_served = plane.nvml_errors_served
    result.container_failures_served = plane.container_failures_served
    result.launch_requeues = sum(
        runner.requeues for runner in deployment.app.runners.values()
    )
    if deployment.health_tracker is not None:
        result.quarantine_events = [
            (e.device_id, e.kind)
            for e in deployment.health_tracker.events
            if e.kind in ("quarantine", "readmit")
        ]
    result.degraded_queries = deployment.mapper.degraded_queries
    result.end_time = deployment.clock.now
    result.tracer = tracer
    result.registry = deployment.app.metrics_registry
    return result
