"""Descriptors for the paper's evaluation datasets.

The descriptor carries the figures the performance models consume (size,
read counts, lengths); ``make_miniature`` produces an actually runnable
scaled-down instance with the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass

GIB = 1024**3


@dataclass(frozen=True)
class DatasetDescriptor:
    """A sequencing dataset at paper scale.

    Attributes
    ----------
    name:
        Identifier used in figures and benchmark rows.
    technology:
        ``"pacbio"`` (Racon's input) or ``"nanopore"`` (Bonito's).
    size_bytes:
        On-disk size the paper quotes.
    n_reads / mean_read_length:
        Read statistics consistent with the size (estimated where the
        paper does not state them; signal data is ~10 bytes/base).
    reference_length:
        Approximate genome/transcriptome span the reads cover.
    """

    name: str
    technology: str
    size_bytes: int
    n_reads: int
    mean_read_length: int
    reference_length: int

    def __post_init__(self) -> None:
        if self.technology not in ("pacbio", "nanopore"):
            raise ValueError(f"unknown technology {self.technology!r}")

    @property
    def size_gib(self) -> float:
        """Size in GiB."""
        return self.size_bytes / GIB

    @property
    def total_bases(self) -> int:
        """Total sequenced bases."""
        return self.n_reads * self.mean_read_length

    @property
    def coverage_depth(self) -> float:
        """Mean coverage of the reference."""
        return self.total_bases / max(1, self.reference_length)

    def scaled(self, factor: float, name: str | None = None) -> "DatasetDescriptor":
        """A proportionally scaled descriptor (used by sweep benches)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return DatasetDescriptor(
            name=name or f"{self.name}-x{factor:g}",
            technology=self.technology,
            size_bytes=max(1, int(self.size_bytes * factor)),
            n_reads=max(1, int(self.n_reads * factor)),
            mean_read_length=self.mean_read_length,
            reference_length=max(1, int(self.reference_length * factor)),
        )


#: Paper §VI-A: "a 17 GB Alzheimers NFL Dataset, which contains the
#: polished sequencing results for the Alzheimer human brain
#: transcriptome" (PacBio IsoSeq).  Read stats estimated from IsoSeq NFL
#: library characteristics (~2-3 kb transcripts).
ALZHEIMERS_NFL = DatasetDescriptor(
    name="Alzheimers_NFL",
    technology="pacbio",
    size_bytes=17 * GIB,
    n_reads=6_000_000,
    mean_read_length=2_500,
    reference_length=90_000_000,
)

#: Paper §VI-A: Acinetobacter_pittii raw fast5, 1.5 GB (Monash dataset).
#: Fast5 signal is ~10 bytes/base at ~8-10 samples/base.
ACINETOBACTER_PITTII = DatasetDescriptor(
    name="Acinetobacter_pittii",
    technology="nanopore",
    size_bytes=int(1.5 * GIB),
    n_reads=20_000,
    mean_read_length=8_000,
    reference_length=4_000_000,
)

#: Paper §VI-A: Klebsiella_pneumoniae_KSB2 raw fast5, 5.2 GB — the paper
#: approximates its CPU basecalling as ~4x the smaller dataset's.
KLEBSIELLA_KSB2 = DatasetDescriptor(
    name="Klebsiella_pneumoniae_KSB2",
    technology="nanopore",
    size_bytes=int(5.2 * GIB),
    n_reads=70_000,
    mean_read_length=8_000,
    reference_length=5_500_000,
)

PAPER_DATASETS: dict[str, DatasetDescriptor] = {
    d.name: d for d in (ALZHEIMERS_NFL, ACINETOBACTER_PITTII, KLEBSIELLA_KSB2)
}
