"""Diurnal heavy-traffic workload generator for the fleet tier.

Production Galaxy traffic is not a flat Poisson stream: submissions
follow a day curve (quiet nights, working-hours peak), the user
population sets the base rate, and incident-style burst storms ride on
top.  This module generates that shape deterministically — seeded
Poisson arrivals per tick, modulated by a 24-entry day curve and any
configured :class:`BurstStorm` windows — as *batched* arrival groups:
every tick emits at most one :class:`ArrivalBatch` per tool class, which
is exactly the same-instant burst shape the columnar fleet path
(:mod:`repro.cluster.fleet`) amortises its mapping over.

Everything is pure and seeded: the same :class:`DiurnalProfile` always
yields byte-identical batches, which the fleet determinism tests rely
on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace

from repro.hotpath import hot_path

#: Seconds per day / per curve slot.
DAY_SECONDS = 86_400.0
HOUR_SECONDS = 3_600.0

#: Default 24-entry day curve (index = hour of day), normalised below.
#: Shape: 03:00 trough, steady morning ramp, 14:00–16:00 peak, evening
#: tail — the classic academic-service submission profile.
DEFAULT_DAY_CURVE: tuple[float, ...] = (
    0.45, 0.38, 0.33, 0.30, 0.32, 0.40,
    0.55, 0.75, 1.00, 1.25, 1.45, 1.55,
    1.50, 1.55, 1.65, 1.60, 1.45, 1.30,
    1.15, 1.05, 0.95, 0.80, 0.65, 0.52,
)


@dataclass(frozen=True)
class FleetToolClass:
    """One tool population in the fleet workload mix.

    ``gpu_seconds``/``cpu_seconds`` are the service times on the GPU and
    CPU arms; ``degradable`` marks classes whose CPU fallback is
    acceptable under overload (the brownout-style degrade-before-shed
    arm from PR 7) — long-running basecallers are not degradable, so
    they queue and ultimately shed instead.
    """

    name: str
    gpu_eligible: bool
    gpu_seconds: float
    cpu_seconds: float
    weight: float
    degradable: bool = False

    @property
    def gpu_benefit(self) -> float:
        """The paper's GPU-benefit ratio: CPU time over GPU time.

        Tools whose kernels barely beat their CPU arm score low; the
        benefit-aware placement policy uses this to decide who may
        claim scarce GPU slots first (``inf`` for CPU-only tools keeps
        them out of the comparison entirely — they never ask for one).
        """
        if self.gpu_seconds <= 0.0:
            return math.inf
        return self.cpu_seconds / self.gpu_seconds


#: The paper-flavoured default mix: GYAN's two GPU tools plus the CPU
#: bulk that dominates real Galaxy traffic (weights sum to 1).
DEFAULT_FLEET_TOOLS: tuple[FleetToolClass, ...] = (
    FleetToolClass("racon_gpu", True, 240.0, 2_400.0, 0.20, degradable=True),
    FleetToolClass("bonito_gpu", True, 900.0, 21_600.0, 0.10),
    FleetToolClass("minimap2_cpu", False, 0.0, 300.0, 0.30),
    FleetToolClass("bwa_mem_cpu", False, 0.0, 600.0, 0.25),
    FleetToolClass("fastqc_cpu", False, 0.0, 120.0, 0.15),
)


@dataclass(frozen=True)
class BurstStorm:
    """A rate-multiplier window layered over the day curve."""

    start: float  #: seconds from the horizon start
    duration: float
    multiplier: float


@dataclass(frozen=True)
class ArrivalBatch:
    """All same-class arrivals of one tick, as one same-instant burst."""

    time: float
    tool: int  #: index into the profile's tool table
    count: int


@dataclass(frozen=True)
class DiurnalProfile:
    """Knobs of the generator (see ``docs/fleet-scale.md``)."""

    users: int = 10_000
    jobs_per_user_day: float = 2.5
    days: float = 1.0
    tick_seconds: float = 60.0
    day_curve: tuple[float, ...] = DEFAULT_DAY_CURVE
    tools: tuple[FleetToolClass, ...] = DEFAULT_FLEET_TOOLS
    storms: tuple[BurstStorm, ...] = ()
    seed: int = 0

    @property
    def expected_jobs(self) -> float:
        """Expected arrivals over the horizon, storms excluded."""
        return self.users * self.jobs_per_user_day * self.days

    def scaled_to(self, target_jobs: int) -> "DiurnalProfile":
        """The same shape with the user population resized so expected
        arrivals (storms excluded) reach ``target_jobs``."""
        users = math.ceil(target_jobs / (self.jobs_per_user_day * self.days))
        return replace(self, users=users)


#: The canonical A/B storm window (seconds): a midday incident riding
#: the 14:00 peak, shared by the bench suite, the differential policy
#: tests, and ``repro fleet --ab`` so every comparison uses the same
#: diurnal seed and the same surge.
AB_STORM_START = 43_200.0
AB_STORM_DURATION = 7_200.0
AB_STORM_MULTIPLIER = 4.0


def ab_storm_profile(target_jobs: int, seed: int = 7) -> DiurnalProfile:
    """One diurnal day with the canonical A/B storm, sized to a target.

    This is the fixture every placement-policy comparison runs on: the
    same seed, the same 24-entry curve, the same midday storm — so any
    difference between two runs is the policy, nothing else.
    """
    storm = BurstStorm(
        start=AB_STORM_START,
        duration=AB_STORM_DURATION,
        multiplier=AB_STORM_MULTIPLIER,
    )
    return DiurnalProfile(seed=seed, storms=(storm,)).scaled_to(target_jobs)


def _poisson(rng: random.Random, lam: float) -> int:
    """A seeded Poisson draw.

    Knuth's product method below λ=30 (exact, O(λ)); above that a
    normal approximation (rounded, clamped) keeps large-λ ticks O(1) —
    at fleet rates λ per tick runs into the hundreds and the exact
    method's λ multiplications per draw would dominate generation.
    """
    if lam <= 0.0:
        return 0
    if lam < 30.0:
        threshold = math.exp(-lam)
        count, product = 0, rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count
    sample = rng.gauss(lam, math.sqrt(lam))
    return max(0, round(sample))


def storm_multiplier(storms: tuple[BurstStorm, ...], t: float) -> float:
    """Combined storm multiplier active at instant ``t``."""
    factor = 1.0
    for storm in storms:
        if storm.start <= t < storm.start + storm.duration:
            factor *= storm.multiplier
    return factor


@hot_path
def diurnal_batches(profile: DiurnalProfile) -> list[ArrivalBatch]:
    """Generate the seeded arrival batches for one profile.

    Returns batches sorted by (time, tool index); ticks or classes that
    drew zero arrivals emit nothing.  The day curve is normalised to
    mean 1.0, so the expected total (storms excluded) is exactly
    :attr:`DiurnalProfile.expected_jobs`.
    """
    if not profile.tools:
        raise ValueError("profile needs at least one tool class")
    if len(profile.day_curve) != 24:
        raise ValueError(
            f"day_curve needs 24 hourly entries, got {len(profile.day_curve)}"
        )
    rng = random.Random(profile.seed)
    curve_mean = sum(profile.day_curve) / len(profile.day_curve)
    base_rate = profile.expected_jobs / (profile.days * DAY_SECONDS)
    horizon = profile.days * DAY_SECONDS
    tick = profile.tick_seconds
    batches: list[ArrivalBatch] = []
    ticks = int(horizon / tick)
    for i in range(ticks):
        t = i * tick
        hour = int((t % DAY_SECONDS) / HOUR_SECONDS)
        shape = profile.day_curve[hour] / curve_mean
        rate = base_rate * shape * storm_multiplier(profile.storms, t)
        lam_tick = rate * tick
        for tool_index, tool in enumerate(profile.tools):
            count = _poisson(rng, lam_tick * tool.weight)
            if count:
                batches.append(ArrivalBatch(time=t, tool=tool_index, count=count))
    return batches
