"""On-disk materialisation of miniature datasets.

Galaxy tools exchange *files*; the simulators mostly pass objects.  This
module closes the loop for the examples and I/O tests: a simulated read
set materialises to the exact files the real Racon command line names —
``reads.fastq``, ``backbone.fasta``, ``mappings.paf`` — and loads back
through the seqio parsers, byte-for-byte round-trippable.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

from repro.tools.mapping import MinimizerMapper
from repro.tools.seqio.fasta import parse_fasta, write_fasta
from repro.tools.seqio.fastq import parse_fastq, write_fastq
from repro.tools.seqio.paf import parse_paf, write_paf
from repro.tools.seqio.records import SeqRecord
from repro.workloads.generator import ReadSet, corrupted_backbone


@dataclass(frozen=True)
class MaterializedDataset:
    """Paths of one materialised dataset."""

    directory: str
    reads_fastq: str
    backbone_fasta: str
    mappings_paf: str
    truth_fasta: str

    def total_bytes(self) -> int:
        """On-disk footprint (what a DatasetDescriptor's size models)."""
        return sum(
            pathlib.Path(p).stat().st_size
            for p in (
                self.reads_fastq,
                self.backbone_fasta,
                self.mappings_paf,
                self.truth_fasta,
            )
        )


def _phred_for(read_set: ReadSet) -> str:
    # Simulated reads carry no per-base qualities; emit a uniform Q20,
    # consistent with their ~1-3 % error rates.
    return chr(33 + 20)


def materialize(
    read_set: ReadSet,
    directory,
    backbone: SeqRecord | None = None,
    mapper_k: int = 13,
    mapper_w: int = 5,
) -> MaterializedDataset:
    """Write a read set as the Racon input file triple (+ truth).

    The backbone defaults to a freshly corrupted draft; mappings come
    from the minimizer mapper against that backbone (not from ground
    truth), so the files describe a runnable, self-consistent pipeline
    input.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if backbone is None:
        backbone = corrupted_backbone(read_set, seed=1)

    quality_char = _phred_for(read_set)
    fastq_records = [
        SeqRecord(
            name=record.name,
            sequence=record.sequence,
            quality=record.quality or quality_char * len(record.sequence),
        )
        for record in read_set.records
    ]
    mappings = MinimizerMapper(backbone, k=mapper_k, w=mapper_w).map_reads(
        read_set.records
    )

    reads_path = directory / "reads.fastq"
    backbone_path = directory / "backbone.fasta"
    paf_path = directory / "mappings.paf"
    truth_path = directory / "truth.fasta"
    reads_path.write_text(write_fastq(fastq_records))
    backbone_path.write_text(write_fasta([backbone]))
    paf_path.write_text(write_paf(mappings))
    truth_path.write_text(write_fasta([read_set.genome]))
    return MaterializedDataset(
        directory=str(directory),
        reads_fastq=str(reads_path),
        backbone_fasta=str(backbone_path),
        mappings_paf=str(paf_path),
        truth_fasta=str(truth_path),
    )


@dataclass
class LoadedDataset:
    """A dataset read back from disk, ready for the polisher."""

    backbone: SeqRecord
    reads: list[SeqRecord]
    mappings: list
    truth: SeqRecord | None = None


def load(dataset: MaterializedDataset) -> LoadedDataset:
    """Parse a materialised dataset back into polisher inputs."""
    backbone = parse_fasta(pathlib.Path(dataset.backbone_fasta).read_text())[0]
    reads = parse_fastq(pathlib.Path(dataset.reads_fastq).read_text())
    mappings = parse_paf(pathlib.Path(dataset.mappings_paf).read_text())
    truth_path = pathlib.Path(dataset.truth_fasta)
    truth = parse_fasta(truth_path.read_text())[0] if truth_path.exists() else None
    return LoadedDataset(backbone=backbone, reads=reads, mappings=mappings, truth=truth)
