"""Synthetic genome / long-read generation.

Reads carry PacBio/Nanopore-style errors (substitutions, insertions,
deletions) at configurable rates, and each read remembers its true origin
interval so the simulator can emit ground-truth PAF mappings — standing
in for the minimap2 overlap step of the real Racon pipeline (our
:mod:`repro.tools.mapping` minimizer mapper can recompute them
independently, which the tests cross-check).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tools.seqio.paf import PafRecord
from repro.tools.seqio.records import DNA_ALPHABET, SeqRecord, reverse_complement

_BASES = np.frombuffer(DNA_ALPHABET.encode(), dtype=np.uint8)


def simulate_genome(length: int, seed: int = 0, gc_content: float = 0.5) -> str:
    """A random genome of ``length`` bases with the given GC fraction."""
    if length <= 0:
        raise ValueError("genome length must be positive")
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError("gc_content must be in [0, 1]")
    rng = np.random.default_rng(seed)
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    indices = rng.choice(4, size=length, p=[at, gc, gc, at])  # A C G T
    return _BASES[indices].tobytes().decode()


def mutate_sequence(
    sequence: str,
    rng: np.random.Generator,
    substitution_rate: float = 0.02,
    insertion_rate: float = 0.005,
    deletion_rate: float = 0.005,
) -> str:
    """Apply independent per-base errors; returns the corrupted sequence."""
    out: list[str] = []
    for base in sequence:
        r = rng.random()
        if r < deletion_rate:
            continue
        if r < deletion_rate + insertion_rate:
            out.append(DNA_ALPHABET[rng.integers(4)])
            out.append(base)
            continue
        if r < deletion_rate + insertion_rate + substitution_rate:
            choices = [b for b in DNA_ALPHABET if b != base]
            out.append(choices[rng.integers(3)])
            continue
        out.append(base)
    return "".join(out)


@dataclass
class SimulatedRead:
    """A read plus its ground-truth origin on the genome."""

    record: SeqRecord
    genome_start: int
    genome_end: int
    strand: str  # '+' or '-'


@dataclass
class ReadSet:
    """A genome, its reads, and ground-truth mappings."""

    genome: SeqRecord
    reads: list[SimulatedRead] = field(default_factory=list)

    @property
    def records(self) -> list[SeqRecord]:
        """Just the read records."""
        return [r.record for r in self.reads]

    def truth_paf(self) -> list[PafRecord]:
        """Ground-truth PAF mappings (the minimap2 substitute)."""
        records = []
        for read in self.reads:
            length = len(read.record)
            span = read.genome_end - read.genome_start
            records.append(
                PafRecord(
                    query_name=read.record.name,
                    query_length=length,
                    query_start=0,
                    query_end=length,
                    strand=read.strand,
                    target_name=self.genome.name,
                    target_length=len(self.genome),
                    target_start=read.genome_start,
                    target_end=read.genome_end,
                    residue_matches=min(length, span),
                    alignment_block_length=max(length, span),
                )
            )
        return records

    def mean_coverage(self) -> float:
        """Mean read coverage over the genome."""
        total = sum(r.genome_end - r.genome_start for r in self.reads)
        return total / max(1, len(self.genome))


def simulate_reads(
    genome: str,
    n_reads: int,
    mean_length: int,
    seed: int = 0,
    substitution_rate: float = 0.02,
    insertion_rate: float = 0.005,
    deletion_rate: float = 0.005,
    length_sd_fraction: float = 0.2,
    reverse_strand_fraction: float = 0.0,
    genome_name: str = "ref",
) -> ReadSet:
    """Draw error-bearing reads uniformly from ``genome``.

    ``reverse_strand_fraction`` controls how many reads come from the
    minus strand (Racon's windows handle both via the PAF strand field).
    """
    if n_reads <= 0:
        raise ValueError("n_reads must be positive")
    if mean_length <= 0 or mean_length > len(genome):
        raise ValueError("mean_length must be in (0, genome length]")
    rng = np.random.default_rng(seed)
    read_set = ReadSet(genome=SeqRecord(name=genome_name, sequence=genome))
    for i in range(n_reads):
        length = int(
            np.clip(
                rng.normal(mean_length, mean_length * length_sd_fraction),
                mean_length // 4,
                len(genome),
            )
        )
        start = int(rng.integers(0, len(genome) - length + 1))
        end = start + length
        fragment = genome[start:end]
        strand = "-" if rng.random() < reverse_strand_fraction else "+"
        observed = mutate_sequence(
            fragment if strand == "+" else reverse_complement(fragment),
            rng,
            substitution_rate=substitution_rate,
            insertion_rate=insertion_rate,
            deletion_rate=deletion_rate,
        )
        read_set.reads.append(
            SimulatedRead(
                record=SeqRecord(name=f"read_{i:05d}", sequence=observed),
                genome_start=start,
                genome_end=end,
                strand=strand,
            )
        )
    return read_set


def simulate_read_set(
    genome_length: int = 5_000,
    coverage: float = 20.0,
    mean_read_length: int = 500,
    seed: int = 0,
    **error_rates: float,
) -> ReadSet:
    """Convenience: genome + reads at a target coverage depth."""
    genome = simulate_genome(genome_length, seed=seed)
    n_reads = max(1, int(round(coverage * genome_length / mean_read_length)))
    return simulate_reads(
        genome,
        n_reads=n_reads,
        mean_length=mean_read_length,
        seed=seed + 1,
        **error_rates,
    )


def corrupted_backbone(read_set: ReadSet, seed: int = 99, error_scale: float = 2.0) -> SeqRecord:
    """A draft assembly backbone: the genome with amplified errors.

    Racon's input backbone comes from a fast assembler and is *less*
    accurate than the reads consensus will be; we model it by mutating
    the truth at ``error_scale`` times the default read error rates.
    """
    rng = np.random.default_rng(seed)
    draft = mutate_sequence(
        read_set.genome.sequence,
        rng,
        substitution_rate=0.02 * error_scale,
        insertion_rate=0.005 * error_scale,
        deletion_rate=0.005 * error_scale,
    )
    return SeqRecord(name=f"{read_set.genome.name}_draft", sequence=draft)
