"""Burst-storm workloads: overload the job path, measure what survives.

The chaos runs (:mod:`repro.workloads.chaos`) stress the *fault* plane;
this module stresses the *load* plane: a seeded arrival process whose
rate spikes by an order of magnitude in burst windows, replayed with
launch/finish overlap so destination queues actually fill.  Against a
stock deployment the storm grows queues without bound and loses jobs
when clustered infrastructure faults land mid-burst; against a hardened
deployment (``build_deployment(overload=True)``) the bounded
destinations bounce REJECTED_BUSY into degrade arms, expired jobs shed
with typed reasons, brownout strips GPU mapping from low-benefit tools,
and every *admitted* job still completes.

Everything runs on the virtual clock from seeded generators, so
:meth:`StormResult.to_json` is byte-for-byte reproducible — the CI
overload-smoke job double-runs it and diffs.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.cluster.node import ComputeNode
from repro.core.orchestrator import build_deployment
from repro.galaxy.job import JobState
from repro.gpusim.faults import build_scenario
from repro.resilience.shedding import RejectedBusy, ShedReason
from repro.workloads.traces import (
    ArrivalTrace,
    DEFAULT_DURATIONS,
    DEFAULT_TOOL_MIX,
    TraceEntry,
)

#: Serialisation schema tag for :meth:`StormResult.to_json`.
STORM_SCHEMA = "gyan.storm/v1"


def generate_storm_trace(
    n_jobs: int = 48,
    seed: int = 0,
    base_interarrival_s: float = 4.0,
    burst_factor: float = 10.0,
    calm_jobs: int = 6,
    burst_jobs: int = 10,
    tool_mix: dict[str, float] | None = None,
    durations: dict[str, float] | None = None,
) -> ArrivalTrace:
    """A seeded arrival trace alternating calm stretches and bursts.

    Jobs arrive in repeating waves of ``calm_jobs`` submissions at the
    base interarrival time followed by ``burst_jobs`` submissions
    ``burst_factor`` times faster — the thundering-herd shape (pipeline
    kick-offs, class assignments due at midnight) that motivates bounded
    queues.  Pure :mod:`random` seeded by ``seed``; no wall clock.
    """
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    if base_interarrival_s <= 0:
        raise ValueError("base_interarrival_s must be positive")
    if burst_factor < 1.0:
        raise ValueError("burst_factor must be >= 1 (a burst is faster)")
    if calm_jobs < 1 or burst_jobs < 1:
        raise ValueError("calm_jobs and burst_jobs must be positive")
    tool_mix = tool_mix or DEFAULT_TOOL_MIX
    durations = durations or DEFAULT_DURATIONS
    tools = sorted(tool_mix)
    total_weight = sum(tool_mix[t] for t in tools)
    rng = random.Random(seed)
    wave = calm_jobs + burst_jobs
    now = 0.0
    entries: list[TraceEntry] = []
    for i in range(n_jobs):
        in_burst = (i % wave) >= calm_jobs
        mean = base_interarrival_s / (burst_factor if in_burst else 1.0)
        now += rng.expovariate(1.0 / mean)
        pick = rng.random() * total_weight
        tool_id = tools[-1]
        for candidate in tools:
            pick -= tool_mix[candidate]
            if pick <= 0:
                tool_id = candidate
                break
        duration = durations[tool_id] * rng.uniform(0.9, 1.1)
        entries.append(
            TraceEntry(
                arrival_time=round(now, 6),
                tool_id=tool_id,
                duration=round(duration, 6),
            )
        )
    return ArrivalTrace(entries=entries, seed=seed)


@dataclass
class StormResult:
    """Everything one storm run observed, stably serialisable.

    The central ledger identity: ``jobs_requested = admitted + shed +
    never_submitted``; among the admitted, ``completed_ok +
    lost_admitted``.  A hardened run may shed freely (that is load
    management) but must keep ``lost_admitted`` at zero — once the
    system said yes, it finishes the job.
    """

    hardened: bool
    seed: int
    scenario: str | None
    jobs_requested: int = 0
    #: Jobs whose launch was accepted (process started).
    admitted: int = 0
    completed_ok: int = 0
    #: Admitted jobs that ended in ERROR (or never reached a terminal
    #: state) — the losses the hardened mode must hold at zero.
    lost_admitted: int = 0
    #: Typed shed counts, by :class:`ShedReason` value.
    shed: dict[str, int] = field(default_factory=dict)
    #: Jobs never submitted because the app crashed first (stock mode).
    never_submitted: int = 0
    crashed: str | None = None
    #: Peak simultaneous inflight per destination, in sorted id order.
    peak_inflight: dict[str, int] = field(default_factory=dict)
    redirects: int = 0
    brownout_peak_level: int = 0
    breaker_trips: int = 0
    backpressure_waits: int = 0
    end_time: float = 0.0

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def all_admitted_ok(self) -> bool:
        return self.crashed is None and self.lost_admitted == 0

    def to_dict(self) -> dict:
        return {
            "schema": STORM_SCHEMA,
            "hardened": self.hardened,
            "seed": self.seed,
            "scenario": self.scenario,
            "jobs_requested": self.jobs_requested,
            "admitted": self.admitted,
            "completed_ok": self.completed_ok,
            "lost_admitted": self.lost_admitted,
            "shed": dict(sorted(self.shed.items())),
            "shed_total": self.shed_total,
            "never_submitted": self.never_submitted,
            "crashed": self.crashed,
            "peak_inflight": dict(sorted(self.peak_inflight.items())),
            "redirects": self.redirects,
            "brownout_peak_level": self.brownout_peak_level,
            "breaker_trips": self.breaker_trips,
            "backpressure_waits": self.backpressure_waits,
            "end_time": round(self.end_time, 6),
        }

    def to_json(self) -> str:
        """Stable serialisation for byte-for-byte reproducibility checks."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def run_storm(
    jobs: int = 48,
    seed: int = 0,
    hardened: bool = True,
    scenario: str | None = "burst-storm",
    burst_factor: float = 10.0,
    clock=None,
) -> StormResult:
    """Drive a burst storm through a deployment with launch overlap.

    Unlike :func:`~repro.workloads.chaos.run_chaos` (strictly
    synchronous, queue depth never exceeds one), this driver launches
    jobs at their arrival instants and finishes them when their virtual
    duration elapses, so burst arrivals genuinely stack up inside
    destination queues — the condition the overload layer exists for.

    Hardened mode builds ``build_deployment(overload=True)`` and reacts
    to REJECTED_BUSY by walking degrade arms, then holding the job under
    *backpressure* (draining running work) until either a slot opens or
    the job's deadline expires and it is shed.  Stock mode has no
    admission control: queues grow unboundedly and clustered faults
    crash mapping or lose launches outright.
    """
    from repro.galaxy.app import ToolExecutionResult
    from repro.tools.executors import register_paper_tools

    node = ComputeNode.paper_testbed(clock=clock)
    deployment = build_deployment(node=node, overload=hardened)
    app = deployment.app
    register_paper_tools(app)
    if scenario is not None:
        deployment.inject(build_scenario(scenario, seed=seed))
    trace = generate_storm_trace(jobs, seed=seed, burst_factor=burst_factor)

    result = StormResult(
        hardened=hardened,
        seed=seed,
        scenario=scenario,
        jobs_requested=jobs,
    )
    overload = app.overload
    virtual_clock = deployment.clock

    saved_executors = dict(app.executors)
    for name in list(app.executors):
        app.register_executor(
            name, lambda argv, ctx: ToolExecutionResult(stdout="storm stub")
        )
    # (end_time, seq, runner, handle): seq breaks end-time ties in
    # launch order, deterministically.
    running: list[tuple[float, int, object, object]] = []
    stock_inflight: dict[str, int] = {}
    stock_peak: dict[str, int] = {}
    admitted_ids: set[int] = set()
    seq = 0

    def finish_due(now: float) -> None:
        for item in sorted([x for x in running if x[0] <= now]):
            end, _, runner, handle = item
            if virtual_clock.now < end:
                virtual_clock.advance_to(end)
            runner.finish(handle)
            dest_id = handle.job.metrics.destination_id
            if dest_id is not None and dest_id in stock_inflight:
                stock_inflight[dest_id] -= 1
            running.remove(item)

    def launch_with_degrade(job, destination):
        """Launch, degrading on REJECTED_BUSY, then backpressure-wait."""
        from repro.galaxy.runners.base import is_transient_launch_error

        target, seen = destination, {destination.destination_id}
        attempt = 1
        while True:
            runner = app.runner_for(target)
            breaker = runner.launch_breaker
            if breaker is not None and not breaker.allows():
                overload.shed(job, ShedReason.BREAKER_OPEN,
                              note=f"breaker {breaker.name}")
                return None, None
            try:
                launched = runner.launch(job, target)
            except RejectedBusy:
                next_id = target.resubmit_destination
                if next_id is not None and next_id not in seen:
                    target = app.job_config.destination(next_id)
                    seen.add(target.destination_id)
                    overload.record_redirect()
                    result.redirects += 1
                    continue
                # Every arm is full: drain one running job and retry
                # from the preferred destination, unless the deadline
                # passed (or nothing is draining) — then shed, typed.
                if overload.expired(job):
                    overload.shed(job, ShedReason.DEADLINE_EXPIRED,
                                  note="expired under backpressure")
                    return None, None
                if not running:
                    overload.shed(job, ShedReason.QUEUE_FULL,
                                  note="all arms full, nothing draining")
                    return None, None
                result.backpressure_waits += 1
                finish_due(min(item[0] for item in running))
                target, seen = destination, {destination.destination_id}
                continue
            except Exception as exc:
                if not is_transient_launch_error(exc) or job.is_terminal:
                    raise
                if breaker is not None:
                    breaker.record_failure()
                policy = runner.launch_retry
                if policy is None or attempt >= policy.max_attempts:
                    if job.state is JobState.NEW:
                        job.transition(JobState.QUEUED, virtual_clock.now)
                    job.fail(f"launch failed: {exc}", virtual_clock.now)
                    overload.release(job)
                    return None, None
                virtual_clock.advance(policy.delay_for(attempt))
                attempt += 1
                continue
            if breaker is not None:
                breaker.record_success()
            return launched, target

    try:
        for index, entry in enumerate(trace.entries):
            finish_due(entry.arrival_time)
            if virtual_clock.now < entry.arrival_time:
                virtual_clock.advance_to(entry.arrival_time)
            job = app.submit(entry.tool_id, {"workload": "unit"})
            if overload is not None and overload.should_shed(entry.tool_id):
                overload.shed(job, ShedReason.BROWNOUT_SHED,
                              note=entry.tool_id)
                continue
            try:
                destination = app.map_destination(job)
            except Exception as exc:  # stock mode: mapping crashes raw
                result.crashed = f"{type(exc).__name__}: {exc}"
                result.never_submitted = jobs - index - 1
                break
            if overload is not None and job.metrics.deadline is None:
                job.metrics.deadline = overload.deadline_for(
                    destination, job.metrics.submit_time
                )
            if overload is not None:
                handle, destination = launch_with_degrade(job, destination)
                if handle is None:
                    continue
            else:
                try:
                    handle = app.runner_for(destination).launch(
                        job, destination
                    )
                except Exception as exc:
                    # Stock mode: a transient daemon hiccup at launch is
                    # a lost job — nothing requeues it.
                    if not job.is_terminal:
                        if job.state is JobState.NEW:
                            job.transition(
                                JobState.QUEUED, virtual_clock.now
                            )
                        job.fail(
                            f"launch failed: {exc}", virtual_clock.now
                        )
                    continue
                dest_id = destination.destination_id
                stock_inflight[dest_id] = stock_inflight.get(dest_id, 0) + 1
                stock_peak[dest_id] = max(
                    stock_peak.get(dest_id, 0), stock_inflight[dest_id]
                )
            admitted_ids.add(job.job_id)
            seq += 1
            running.append(
                (virtual_clock.now + entry.duration,
                 seq,
                 app.runner_for(destination),
                 handle)
            )
        finish_due(float("inf"))
    finally:
        app.executors = saved_executors

    result.admitted = len(admitted_ids)
    result.completed_ok = sum(
        1
        for jid in admitted_ids
        if app.jobs[jid].state.value == "ok"
    )
    result.lost_admitted = result.admitted - result.completed_ok
    if overload is not None:
        result.shed = overload.shed_by_reason()
        result.peak_inflight = dict(sorted(overload.peak_inflight.items()))
    else:
        result.peak_inflight = dict(sorted(stock_peak.items()))
    if deployment.brownout is not None:
        result.brownout_peak_level = deployment.brownout.peak_level
    breakers = [deployment.nvml_breaker, *deployment.launch_breakers.values()]
    result.breaker_trips = sum(
        sum(1 for _, _, to in b.transitions if to.value == "open")
        for b in breakers
        if b is not None
    )
    result.end_time = virtual_clock.now
    return result
