"""Job-arrival traces: time-driven scheduling workloads.

The paper's multi-GPU cases are hand-placed four-job scenarios; real
deployments see stochastic streams of heterogeneous submissions.  This
module generates reproducible Poisson-arrival traces of mixed tool
submissions and replays them against a GYAN deployment on the virtual
clock, collecting the scheduling statistics (placements, queue of
overlaps, per-device occupancy over time) the allocation-strategy
ablations compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Tool mix of a typical long-read shop: mostly polishing, some
#: basecalling, occasional CPU utility jobs.
DEFAULT_TOOL_MIX: dict[str, float] = {
    "racon": 0.5,
    "bonito": 0.3,
    "seqstats": 0.2,
}
#: Virtual runtime (s) of each tool's unit job in trace replays.
DEFAULT_DURATIONS: dict[str, float] = {
    "racon": 1.72,
    "bonito": 22.0,
    "seqstats": 0.5,
}


@dataclass(frozen=True)
class TraceEntry:
    """One submission in an arrival trace."""

    arrival_time: float
    tool_id: str
    duration: float


@dataclass
class ArrivalTrace:
    """A reproducible sequence of job arrivals."""

    entries: list[TraceEntry] = field(default_factory=list)
    seed: int = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def makespan_lower_bound(self) -> float:
        """Last arrival plus its duration — no schedule beats this."""
        if not self.entries:
            return 0.0
        return max(e.arrival_time + e.duration for e in self.entries)

    def tool_counts(self) -> dict[str, int]:
        """Submissions per tool."""
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.tool_id] = counts.get(entry.tool_id, 0) + 1
        return counts


def generate_trace(
    n_jobs: int = 20,
    mean_interarrival_s: float = 5.0,
    tool_mix: dict[str, float] | None = None,
    durations: dict[str, float] | None = None,
    seed: int = 0,
) -> ArrivalTrace:
    """Poisson arrivals with a categorical tool mix.

    Durations get +-20 % lognormal-ish jitter so overlapping intervals
    vary between seeds.
    """
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    if mean_interarrival_s <= 0:
        raise ValueError("mean_interarrival_s must be positive")
    tool_mix = tool_mix or DEFAULT_TOOL_MIX
    durations = durations or DEFAULT_DURATIONS
    total = sum(tool_mix.values())
    tools = sorted(tool_mix)
    probabilities = [tool_mix[t] / total for t in tools]
    missing = [t for t in tools if t not in durations]
    if missing:
        raise ValueError(f"no duration for tools: {missing}")
    rng = np.random.default_rng(seed)
    now = 0.0
    entries: list[TraceEntry] = []
    for _ in range(n_jobs):
        now += float(rng.exponential(mean_interarrival_s))
        tool_id = tools[int(rng.choice(len(tools), p=probabilities))]
        duration = float(durations[tool_id] * rng.uniform(0.8, 1.2))
        entries.append(
            TraceEntry(arrival_time=now, tool_id=tool_id, duration=duration)
        )
    return ArrivalTrace(entries=entries, seed=seed)


@dataclass
class ReplayedJob:
    """Outcome of one trace entry."""

    entry: TraceEntry
    gpu_ids: tuple[str, ...]
    gpu_enabled: bool
    start_time: float
    end_time: float
    #: Queueing delay before launch (0 except under the 'wait' policy).
    wait_time: float = 0.0

    @property
    def spread(self) -> int:
        """How many devices the job occupied."""
        return len(self.gpu_ids)

    @property
    def completion_time(self) -> float:
        """Arrival-to-finish latency (wait + execution)."""
        return self.end_time - self.entry.arrival_time


@dataclass
class ReplayResult:
    """Aggregate outcome of a trace replay."""

    jobs: list[ReplayedJob] = field(default_factory=list)
    max_concurrent_per_gpu: dict[str, int] = field(default_factory=dict)

    @property
    def gpu_jobs(self) -> list[ReplayedJob]:
        """Jobs that actually ran on a GPU."""
        return [j for j in self.jobs if j.gpu_enabled]

    @property
    def scattered_jobs(self) -> int:
        """GPU jobs spread over more than one device."""
        return sum(1 for j in self.gpu_jobs if j.spread > 1)

    def mean_colocation(self) -> float:
        """Average of max concurrent processes across devices."""
        if not self.max_concurrent_per_gpu:
            return 0.0
        return sum(self.max_concurrent_per_gpu.values()) / len(
            self.max_concurrent_per_gpu
        )

    def mean_completion_time(self) -> float:
        """Mean arrival-to-finish latency of the GPU jobs."""
        gpu_jobs = self.gpu_jobs
        if not gpu_jobs:
            return 0.0
        return sum(j.completion_time for j in gpu_jobs) / len(gpu_jobs)

    def mean_wait_time(self) -> float:
        """Mean queueing delay of the GPU jobs."""
        gpu_jobs = self.gpu_jobs
        if not gpu_jobs:
            return 0.0
        return sum(j.wait_time for j in gpu_jobs) / len(gpu_jobs)


class TraceReplayer:
    """Replays an arrival trace against one GYAN deployment.

    Jobs start at their arrival instant (the virtual clock jumps
    forward between arrivals) and hold their GPU processes for their
    trace duration, so later arrivals observe realistic occupancy —
    exactly the contention pattern the allocation strategies differ on.

    Parameters
    ----------
    deployment:
        A GYAN deployment (its mapper's strategy governs placement).
    gpu_policy:
        ``"place"`` (default) launches GPU jobs immediately, wherever
        the allocation strategy puts them — the paper's behaviour.
        ``"wait"`` holds a GPU job in a queue until some device is idle
        (the design alternative the A7 ablation compares).
    colocation_slowdown:
        When True, a GPU job sharing a device with k-1 others at launch
        runs ~k times longer (time-shared SMs) — a first-order model of
        the "stalling due to context switching" the paper's §IV-C2
        motivates the memory strategy with.
    """

    def __init__(
        self,
        deployment,
        gpu_policy: str = "place",
        colocation_slowdown: bool = False,
    ) -> None:
        if gpu_policy not in ("place", "wait"):
            raise ValueError(f"unknown gpu_policy {gpu_policy!r}")
        self.deployment = deployment
        self.gpu_policy = gpu_policy
        self.colocation_slowdown = colocation_slowdown

    def replay(self, trace: ArrivalTrace) -> ReplayResult:
        """Run the trace to completion; returns the replay statistics.

        Tool bodies are stubbed for the duration of the replay: the
        trace dictates execution times, so the executors' own virtual-
        time accounting must not interfere.  Placement decisions are
        unaffected (they happen at launch, before any body runs).
        """
        saved_executors = dict(self.deployment.app.executors)
        try:
            return self._replay(trace)
        finally:
            self.deployment.app.executors = saved_executors

    def _replay(self, trace: ArrivalTrace) -> ReplayResult:
        from repro.galaxy.app import ToolExecutionResult

        deployment = self.deployment
        for name in list(deployment.app.executors):
            deployment.app.register_executor(
                name, lambda argv, ctx: ToolExecutionResult(stdout="trace stub")
            )
        clock = deployment.clock
        result = ReplayResult()
        running: list[tuple[float, object, object]] = []  # (end, runner, handle)
        concurrency: dict[str, int] = {
            str(d.minor_number): 0 for d in deployment.gpu_host.devices
        }
        peaks = dict(concurrency)

        def finish_due(now: float) -> None:
            due = [item for item in running if item[0] <= now]
            for item in sorted(due, key=lambda x: x[0]):
                end, runner, handle = item
                if clock.now < end:
                    clock.advance_to(end)
                runner.finish(handle)
                if handle.host_process is not None:
                    for index in handle.host_process.device_indices:
                        concurrency[str(index)] -= 1
                running.remove(item)

        def wants_gpu(tool_id: str) -> bool:
            return deployment.app.tool(tool_id).requires_gpu

        for entry in trace.entries:
            finish_due(entry.arrival_time)
            if clock.now < entry.arrival_time:
                clock.advance_to(entry.arrival_time)
            launch_time = max(clock.now, entry.arrival_time)
            if (
                self.gpu_policy == "wait"
                and wants_gpu(entry.tool_id)
                and deployment.gpu_host is not None
            ):
                # Hold the job until a device frees up.
                while not deployment.gpu_host.available_devices() and running:
                    earliest = min(item[0] for item in running)
                    finish_due(earliest)
                launch_time = max(clock.now, entry.arrival_time)
            job = deployment.app.submit(
                entry.tool_id, {"workload": "unit", "trace_duration": entry.duration}
            )
            destination = deployment.app.map_destination(job)
            runner = deployment.app.runner_for(destination)
            handle = runner.launch(job, destination)
            gpu_ids: tuple[str, ...] = ()
            sharing = 1
            if handle.host_process is not None:
                gpu_ids = tuple(
                    str(i) for i in handle.host_process.device_indices
                )
                for gid in gpu_ids:
                    concurrency[gid] += 1
                    peaks[gid] = max(peaks[gid], concurrency[gid])
                if gpu_ids:
                    sharing = max(concurrency[gid] for gid in gpu_ids)
            duration = entry.duration
            if self.colocation_slowdown and gpu_ids:
                duration *= sharing
            end_time = launch_time + duration
            running.append((end_time, runner, handle))
            result.jobs.append(
                ReplayedJob(
                    entry=entry,
                    gpu_ids=gpu_ids,
                    gpu_enabled=bool(gpu_ids),
                    start_time=launch_time,
                    end_time=end_time,
                    wait_time=launch_time - entry.arrival_time,
                )
            )
        finish_due(float("inf"))
        result.max_concurrent_per_gpu = peaks
        return result
