"""PERF601 fixture: per-row rendering inside an exporter loop."""

from repro.hotpath import hot_path


@hot_path
def render_rows(samples) -> str:
    out = ""
    for value in samples:
        out += f"{value}\n"
    return out


@hot_path
def stream_rows(samples, sink) -> None:
    for value in samples:
        sink.write(f"{value}\n")


@hot_path
def tabulate(rows) -> list:
    out = []
    for row in rows:
        out.append(f"{row.when},{row.device},{row.util},{row.mem}\n")
    return out
