"""PERF602 fixture: linear scan where an indexed API exists."""

from repro.hotpath import hot_path


@hot_path
def spans_for_job(spans, job_id):
    return [s for s in spans if s.job_id == job_id]
