"""PERF603 fixture: device probe repeated inside a loop."""

from repro.hotpath import hot_path


@hot_path
def poll(device, samples):
    readings = []
    for _ in samples:
        readings.append(device.nvmlDeviceGetUtilizationRates())
    return readings
