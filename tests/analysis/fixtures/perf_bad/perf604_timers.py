"""PERF604 fixture: self-rearming timer chain and per-tick loop."""

from repro.hotpath import hot_path


@hot_path
def sample(now, clock) -> None:
    clock.call_later(1.0, sample)


@hot_path
def arm_per_tick(clock, ticks, on_tick) -> None:
    for tick in range(ticks):
        clock.call_at(float(tick), on_tick)
