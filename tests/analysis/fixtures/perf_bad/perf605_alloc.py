"""PERF605 fixture: fresh container per pass of a while loop."""

from repro.hotpath import hot_path


@hot_path
def drain(queue) -> int:
    drained = 0
    while queue:
        batch = [item for item in queue.pop()]
        drained += len(batch)
    return drained
