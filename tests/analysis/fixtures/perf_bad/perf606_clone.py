"""PERF606 fixture: deepcopy / json round-trip cloning."""

import copy
import json

from repro.hotpath import hot_path


@hot_path
def snapshot(state):
    return copy.deepcopy(state)


@hot_path
def json_clone(payload):
    return json.loads(json.dumps(payload))
