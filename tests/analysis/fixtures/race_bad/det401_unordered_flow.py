"""Seeded-bad fixture: DET401 — unordered iteration into output sinks."""


def export_device_names(fh):
    # Set iteration straight into a file write: byte order is the set's.
    for name in {"gpu0", "gpu1", "gpu2"}:
        fh.write(name + "\n")


def export_metrics(samples: dict, fh):
    import json

    # Dict iteration serialised per-entry without sort_keys.
    for label, value in samples.items():
        fh.write(json.dumps({label: value}))
