"""Seeded-bad fixture: DET402 — unseeded entropy in simulation code."""

import os
import random
import uuid
from random import choice


def pick_device(devices):
    return random.choice(devices)


def job_token():
    return str(uuid.uuid4())


def salt():
    return os.urandom(8)


def pick_tool(tools):
    return choice(tools)
