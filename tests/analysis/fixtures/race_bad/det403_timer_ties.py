"""Seeded-bad fixture: DET403 — same-timestamp timers without keys."""

DEADLINE = 30.0


def arm_monitors(clock, sample, flush):
    # Two distinct unkeyed registrations on one instant: firing order is
    # pinned only by registration order.
    clock.call_at(DEADLINE, sample)
    clock.call_at(DEADLINE, flush)


def arm_probes(clock, probes: set):
    # Registration order follows set order — itself unordered.
    for probe in {p for p in probes}:
        clock.call_later(5.0, probe)
