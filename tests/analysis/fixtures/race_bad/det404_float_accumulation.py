"""Seeded-bad fixture: DET404 — float accumulation over a set."""


def total_power(watts_per_device: dict) -> float:
    return sum({w * 1.05 for w in watts_per_device.values()})


def total_runtime(durations: set) -> float:
    total = 0.0
    for duration in {d for d in durations}:
        total += duration
    return total
