"""Table-driven tests: one good and one bad fixture per config rule."""

from __future__ import annotations

import pytest

from repro.analysis.config_rules import (
    ConfigContext,
    analyze_job_conf_text,
    analyze_tool_against_job_conf,
    analyze_tool_text,
)

GOOD_JOB_CONF = """\
<job_conf>
    <destinations default="dynamic">
        <destination id="dynamic" runner="dynamic">
            <param id="function">gpu_destination</param>
        </destination>
        <destination id="local_gpu" runner="local">
            <param id="resubmit_destination">local_cpu</param>
            <param id="gpu_memory_mib">4096</param>
        </destination>
        <destination id="local_cpu" runner="local"/>
        <destination id="docker_gpu" runner="docker">
            <param id="docker_enabled">true</param>
        </destination>
    </destinations>
</job_conf>
"""


def _tool_xml(version: str = "0", container: bool = False) -> str:
    container_xml = (
        '<container type="docker">example/image:latest</container>' if container else ""
    )
    return f"""\
<tool id="t1" name="T" version="1.0">
    <requirements>
        <requirement type="compute" version="{version}">gpu</requirement>
        {container_xml}
    </requirements>
    <command>t1 input.fa</command>
</tool>
"""


def _ids(findings) -> set[str]:
    return {f.rule_id for f in findings}


@pytest.fixture
def ctx():
    return ConfigContext()


class TestJobConfRules:
    """Each (rule, bad snippet) pair, plus the clean baseline."""

    JOB_CONF_CASES = [
        (
            "GYAN100",
            "<job_conf><destinations/></job_conf>".replace(
                "<destinations/>", ""
            ),  # no destinations section
        ),
        (
            "GYAN104",
            GOOD_JOB_CONF.replace("gpu_destination", "no_such_rule"),
        ),
        (
            "GYAN105",
            GOOD_JOB_CONF.replace(
                '<param id="function">gpu_destination</param>', ""
            ),
        ),
        (
            "GYAN106",
            GOOD_JOB_CONF.replace(
                "<param id=\"resubmit_destination\">local_cpu</param>",
                "<param id=\"resubmit_destination\">missing</param>",
            ),
        ),
        (
            "GYAN107",
            GOOD_JOB_CONF.replace(
                '<destination id="local_cpu" runner="local"/>',
                '<destination id="local_cpu" runner="local">'
                '<param id="resubmit_destination">local_gpu</param>'
                "</destination>",
            ),
        ),
        (
            "GYAN108",
            GOOD_JOB_CONF.replace(
                "<param id=\"gpu_memory_mib\">4096</param>",
                "<param id=\"gpu_memory_mib\">99999</param>",
            ),
        ),
        (
            "GYAN109",
            GOOD_JOB_CONF.replace(' default="dynamic"', ""),
        ),
        (
            "GYAN110",
            GOOD_JOB_CONF.replace(
                '<destination id="local_cpu" runner="local"/>',
                '<destination id="local_cpu" runner="local">'
                '<param id="gpu_enabled_override">true</param>'
                "</destination>",
            ),
        ),
    ]

    def test_good_job_conf_is_clean(self, ctx):
        config, findings = analyze_job_conf_text(GOOD_JOB_CONF, "job_conf.xml", ctx)
        assert config is not None
        assert findings == []

    @pytest.mark.parametrize(
        "rule_id,xml", JOB_CONF_CASES, ids=[c[0] for c in JOB_CONF_CASES]
    )
    def test_bad_job_conf_fires_rule(self, ctx, rule_id, xml):
        _, findings = analyze_job_conf_text(xml, "job_conf.xml", ctx)
        assert rule_id in _ids(findings)

    def test_cycle_reported_once_per_cycle(self, ctx):
        xml = GOOD_JOB_CONF.replace(
            '<destination id="local_cpu" runner="local"/>',
            '<destination id="local_cpu" runner="local">'
            '<param id="resubmit_destination">local_gpu</param>'
            "</destination>",
        )
        _, findings = analyze_job_conf_text(xml, None, ctx)
        assert len([f for f in findings if f.rule_id == "GYAN107"]) == 1

    def test_resubmit_to_override_false_is_clean(self, ctx):
        # Pinning the override OFF is exactly what a recovery arm should
        # do; only a truthy pin defeats the CPU arm (GYAN110).
        xml = GOOD_JOB_CONF.replace(
            '<destination id="local_cpu" runner="local"/>',
            '<destination id="local_cpu" runner="local">'
            '<param id="gpu_enabled_override">false</param>'
            "</destination>",
        )
        _, findings = analyze_job_conf_text(xml, None, ctx)
        assert "GYAN110" not in _ids(findings)

    def test_self_resubmit_is_a_cycle(self, ctx):
        xml = GOOD_JOB_CONF.replace(
            "<param id=\"resubmit_destination\">local_cpu</param>",
            "<param id=\"resubmit_destination\">local_gpu</param>",
        )
        _, findings = analyze_job_conf_text(xml, None, ctx)
        assert "GYAN107" in _ids(findings)

    def test_aggregate_oversubscription_without_single_offender(self, ctx):
        # Two destinations under the per-die limit but over the host total.
        xml = GOOD_JOB_CONF.replace(
            "<param id=\"gpu_memory_mib\">4096</param>",
            "<param id=\"gpu_memory_mib\">11441</param>",
        ).replace(
            '<destination id="local_cpu" runner="local"/>',
            '<destination id="local_cpu" runner="local">'
            '<param id="gpu_memory_mib">11441</param>'
            "</destination>",
        ).replace(
            '<param id="docker_enabled">true</param>',
            '<param id="docker_enabled">true</param>'
            '<param id="gpu_memory_mib">1000</param>',
        )
        _, findings = analyze_job_conf_text(xml, None, ctx)
        aggregate = [f for f in findings if f.rule_id == "GYAN108"]
        assert len(aggregate) == 1
        assert "aggregate" in aggregate[0].message


class TestToolRules:
    TOOL_CASES = [
        ("GYAN100", "<tool id='t1'><requirements>"),  # not well-formed
        ("GYAN101", _tool_xml(version="0,x")),
        ("GYAN101", _tool_xml(version="-1")),
        ("GYAN102", _tool_xml(version="5")),
    ]

    def test_good_tool_is_clean(self, ctx):
        tool, findings = analyze_tool_text(_tool_xml("0,1"), "t.xml", ctx)
        assert tool is not None
        assert findings == []

    @pytest.mark.parametrize(
        "rule_id,xml",
        TOOL_CASES,
        ids=[f"{c[0]}-{i}" for i, c in enumerate(TOOL_CASES)],
    )
    def test_bad_tool_fires_rule(self, ctx, rule_id, xml):
        _, findings = analyze_tool_text(xml, "t.xml", ctx)
        assert rule_id in _ids(findings)

    def test_device_count_override(self):
        wide = ConfigContext(device_count=8)
        tool, findings = analyze_tool_text(_tool_xml("5"), "t.xml", wide)
        assert findings == []


class TestContainerDestinationCrossCheck:
    def _config(self, ctx, mapping: str):
        xml = GOOD_JOB_CONF.replace(
            "</destinations>", f"</destinations><tools>{mapping}</tools>"
        )
        config, findings = analyze_job_conf_text(xml, None, ctx)
        assert findings == []
        return config

    def test_container_tool_on_plain_destination_warns(self, ctx):
        config = self._config(ctx, '<tool id="t1" destination="local_cpu"/>')
        tool, _ = analyze_tool_text(_tool_xml(container=True), "t.xml", ctx)
        findings = analyze_tool_against_job_conf(tool, "t.xml", config)
        assert _ids(findings) == {"GYAN103"}

    def test_container_tool_on_docker_destination_is_clean(self, ctx):
        config = self._config(ctx, '<tool id="t1" destination="docker_gpu"/>')
        tool, _ = analyze_tool_text(_tool_xml(container=True), "t.xml", ctx)
        assert analyze_tool_against_job_conf(tool, "t.xml", config) == []

    def test_dynamic_default_is_skipped(self, ctx):
        config, _ = analyze_job_conf_text(GOOD_JOB_CONF, None, ctx)
        tool, _ = analyze_tool_text(_tool_xml(container=True), "t.xml", ctx)
        assert analyze_tool_against_job_conf(tool, "t.xml", config) == []

    def test_tool_without_container_is_skipped(self, ctx):
        config = self._config(ctx, '<tool id="t1" destination="local_cpu"/>')
        tool, _ = analyze_tool_text(_tool_xml(container=False), "t.xml", ctx)
        assert analyze_tool_against_job_conf(tool, "t.xml", config) == []
