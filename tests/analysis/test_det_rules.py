"""Rule-by-rule coverage of the static DET4xx determinism pass.

Each seeded-bad fixture under ``fixtures/race_bad/`` must trigger
exactly its own rule family, and the shipped simulator sources must
stay clean — the acceptance contract of gyan-race's static layer.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.race.det_rules import analyze_det_text

FIXTURES = Path(__file__).parent / "fixtures" / "race_bad"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _findings_for(fixture: str):
    path = FIXTURES / fixture
    return analyze_det_text(path.read_text(), str(path))


class TestDet401:
    def test_fixture_fires_rule(self):
        findings = _findings_for("det401_unordered_flow.py")
        assert {f.rule_id for f in findings} == {"DET401"}
        assert len(findings) == 2  # set arm + dict arm

    def test_set_iteration_carries_line_evidence(self):
        findings = _findings_for("det401_unordered_flow.py")
        assert all(f.line is not None for f in findings)
        assert all(str(FIXTURES) in (f.path or "") for f in findings)

    def test_sorted_iteration_is_clean(self):
        text = (
            "def export(fh, names):\n"
            "    for name in sorted({'b', 'a'}):\n"
            "        fh.write(name)\n"
        )
        assert analyze_det_text(text, "x.py") == []

    def test_dict_items_into_print_is_not_flagged(self):
        # CPython dicts iterate in insertion order; console output in
        # deliberate non-alphabetical order (phase order) is legitimate.
        text = (
            "def show(breakdown):\n"
            "    for key, value in breakdown.items():\n"
            "        print(key, value)\n"
        )
        assert analyze_det_text(text, "x.py") == []

    def test_set_into_print_is_flagged(self):
        text = (
            "def show(names):\n"
            "    for name in {'a', 'b'}:\n"
            "        print(name)\n"
        )
        assert [f.rule_id for f in analyze_det_text(text, "x.py")] == ["DET401"]


class TestDet402:
    def test_fixture_fires_rule(self):
        findings = _findings_for("det402_entropy.py")
        assert {f.rule_id for f in findings} == {"DET402"}
        messages = " ".join(f.message for f in findings)
        assert "random.choice" in messages
        assert "uuid.uuid4" in messages
        assert "os.urandom" in messages
        assert len(findings) == 4  # incl. the from-import choice()

    def test_seeded_generator_is_clean(self):
        text = (
            "import random\n"
            "def draw(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.random()\n"
        )
        assert analyze_det_text(text, "x.py") == []

    def test_time_time_flagged_outside_sim_code(self):
        text = "import time\nstamp = time.time()\n"
        assert [f.rule_id for f in analyze_det_text(text, "workloads/x.py")] == [
            "DET402"
        ]

    def test_time_time_left_to_src201_in_sim_code(self):
        text = "import time\nstamp = time.time()\n"
        assert analyze_det_text(text, "src/repro/gpusim/x.py") == []


class TestDet403:
    def test_fixture_fires_rule(self):
        findings = _findings_for("det403_timer_ties.py")
        assert {f.rule_id for f in findings} == {"DET403"}
        assert len(findings) == 2  # same-expression pair + set-loop arm

    def test_keyed_registrations_are_clean(self):
        text = (
            "def arm(clock, a, b):\n"
            "    clock.call_at(10.0, a, key='a')\n"
            "    clock.call_at(10.0, b, key='b')\n"
        )
        assert analyze_det_text(text, "x.py") == []

    def test_single_site_loop_is_clean(self):
        # One registration statement looping over an ordered iterable is
        # pinned by loop order — the FaultInjector.arm shape.
        text = (
            "def arm(clock, events):\n"
            "    for event in events:\n"
            "        clock.call_at(event.time, event.fire)\n"
        )
        assert analyze_det_text(text, "x.py") == []


class TestDet404:
    def test_fixture_fires_rule(self):
        findings = _findings_for("det404_float_accumulation.py")
        assert {f.rule_id for f in findings} == {"DET404"}
        assert len(findings) == 2  # sum() arm + += arm

    def test_sum_over_list_is_clean(self):
        text = "total = sum([0.1, 0.2, 0.3])\n"
        assert analyze_det_text(text, "x.py") == []

    def test_sum_over_dict_values_is_clean(self):
        # Insertion-ordered on CPython; flagging every .values() sum
        # would bury the genuinely unordered (set) cases in noise.
        text = "def f(d):\n    return sum(d.values())\n"
        assert analyze_det_text(text, "x.py") == []


class TestSuppressionAndCleanliness:
    def test_line_suppression_works(self):
        from repro.analysis.linter import apply_suppressions

        text = (
            "import random\n"
            "x = random.random()  # gyan-lint: disable=DET402\n"
        )
        findings = analyze_det_text(text, "x.py")
        assert [f.rule_id for f in findings] == ["DET402"]
        assert apply_suppressions(findings, text) == []

    @pytest.mark.parametrize("package", ["gpusim", "core", "observability",
                                         "analysis", "workloads"])
    def test_shipped_sources_are_clean(self, package):
        from repro.analysis.linter import apply_suppressions

        for path in sorted((SRC / package).rglob("*.py")):
            text = path.read_text()
            findings = apply_suppressions(
                analyze_det_text(text, str(path)), text
            )
            assert findings == [], f"{path} has DET findings: {findings}"

    def test_findings_sorted_by_line_then_rule(self):
        findings = _findings_for("det402_entropy.py")
        keys = [(f.line or 0, f.rule_id) for f in findings]
        assert keys == sorted(keys)
