"""End-to-end linter runs: exit codes, JSON output, suppressions, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.findings import Severity
from repro.analysis.linter import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    LintOptions,
    lint_paths,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def _run(paths, **kwargs):
    report = lint_paths([str(p) for p in paths], LintOptions(**kwargs))
    return report


class TestLintPaths:
    def test_good_fixtures_are_clean(self):
        report = _run([FIXTURES / "good"])
        assert report.findings == []
        assert report.files_checked == 2
        assert report.exit_code(Severity.ERROR) == EXIT_CLEAN

    def test_bad_fixtures_fail(self):
        report = _run([FIXTURES / "bad"])
        assert report.exit_code(Severity.ERROR) == EXIT_FINDINGS
        fired = {f.rule_id for f in report.findings}
        # Every config rule has a seeded fixture that trips it.
        assert {
            "GYAN100", "GYAN101", "GYAN102", "GYAN103", "GYAN104",
            "GYAN105", "GYAN106", "GYAN107", "GYAN108", "GYAN109",
        } <= fired

    def test_shipped_examples_are_clean(self):
        report = _run([REPO_ROOT / "examples"])
        assert report.findings == []
        assert report.exit_code(Severity.WARNING) == EXIT_CLEAN

    def test_repo_sources_are_clean(self):
        report = _run([REPO_ROOT / "src"])
        assert report.findings == []

    def test_missing_path_is_usage_error(self):
        report = _run(["no/such/path"])
        assert report.errors
        assert report.exit_code(Severity.ERROR) == EXIT_USAGE

    def test_fail_on_threshold(self):
        # GYAN103 is a warning: visible at --fail-on warning, ignored at
        # the default error threshold.
        paths = [FIXTURES / "bad" / "racon.xml", FIXTURES / "bad" / "job_conf.xml"]
        report = _run(paths)
        warnings = [f for f in report.findings if f.severity == Severity.WARNING]
        assert any(f.rule_id == "GYAN103" for f in warnings)
        errors = [f for f in report.findings if f.severity >= Severity.ERROR]
        assert report.exit_code(Severity.WARNING) == EXIT_FINDINGS
        if not errors:
            assert report.exit_code(Severity.ERROR) == EXIT_CLEAN

    def test_device_count_widens_range_check(self):
        path = FIXTURES / "bad" / "out_of_range.xml"
        assert _run([path]).exit_code(Severity.ERROR) == EXIT_FINDINGS
        assert _run([path], device_count=16).findings == []

    def test_findings_are_sorted_and_deduped(self):
        report = _run([FIXTURES / "bad", FIXTURES / "bad"])  # same dir twice
        keys = [(f.path, f.line or 0, f.rule_id) for f in report.findings]
        assert keys == sorted(keys)
        # Passing the directory twice must not double-count files.
        assert report.files_checked == len(set(keys)) or report.files_checked <= 5


class TestSuppressions:
    def test_xml_file_wide_suppression(self, tmp_path):
        bad = (FIXTURES / "bad" / "out_of_range.xml").read_text()
        suppressed = bad.replace(
            "<tool ", "<!-- gyan-lint: disable=GYAN102 -->\n<tool ", 1
        )
        target = tmp_path / "tool.xml"
        target.write_text(suppressed)
        assert _run([target]).findings == []

    def test_python_line_suppression(self, tmp_path):
        target = tmp_path / "gpusim" / "wall.py"
        target.parent.mkdir()
        target.write_text(
            "import time\n"
            "time.sleep(1)  # gyan-lint: disable=SRC201\n"
            "time.time()\n"
        )
        report = _run([target])
        assert [f.rule_id for f in report.findings] == ["SRC201"]
        assert report.findings[0].line == 3

    def test_python_file_wide_suppression(self, tmp_path):
        target = tmp_path / "core" / "wall.py"
        target.parent.mkdir()
        target.write_text(
            "# gyan-lint: disable-file=SRC201\n"
            "import time\n"
            "time.time()\n"
            "time.sleep(1)\n"
        )
        assert _run([target]).findings == []


class TestJsonOutput:
    def test_json_is_parseable_and_structured(self):
        report = _run([FIXTURES / "bad"])
        payload = json.loads(report.render_json())
        assert payload["files_checked"] == report.files_checked
        assert len(payload["findings"]) == len(report.findings)
        first = payload["findings"][0]
        assert {"rule_id", "severity", "message", "path"} <= set(first)

    def test_clean_run_renders_empty_findings(self):
        payload = json.loads(_run([FIXTURES / "good"]).render_json())
        assert payload["findings"] == []


class TestCli:
    def test_lint_good_exits_clean(self, capsys):
        code = main(["lint", str(FIXTURES / "good")])
        assert code == EXIT_CLEAN
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_bad_exits_findings(self, capsys):
        code = main(["lint", str(FIXTURES / "bad")])
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "GYAN107" in out

    def test_lint_json_flag(self, capsys):
        code = main(["lint", "--format", "json", str(FIXTURES / "bad")])
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]

    def test_fail_on_warning_flag(self, capsys):
        code = main([
            "lint", "--fail-on", "warning",
            str(FIXTURES / "bad" / "racon.xml"),
            str(FIXTURES / "bad" / "job_conf.xml"),
        ])
        assert code == EXIT_FINDINGS
        assert "GYAN103" in capsys.readouterr().out

    def test_devices_flag(self, capsys):
        code = main([
            "lint", "--devices", "16", str(FIXTURES / "bad" / "out_of_range.xml")
        ])
        capsys.readouterr()
        assert code == EXIT_CLEAN

    def test_no_paths_is_usage_error(self, capsys):
        code = main(["lint"])
        assert code == EXIT_USAGE
        assert "path" in capsys.readouterr().err.lower()

    def test_missing_path_is_usage_error(self, capsys):
        code = main(["lint", "does/not/exist"])
        capsys.readouterr()
        assert code == EXIT_USAGE

    def test_list_rules(self, capsys):
        code = main(["lint", "--list-rules"])
        assert code == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ("GYAN100", "SRC201", "SIM301"):
            assert rule_id in out


@pytest.mark.parametrize("name,expected", [
    ("error", Severity.ERROR),
    ("warning", Severity.WARNING),
    ("info", Severity.INFO),
])
def test_severity_from_name(name, expected):
    assert Severity.from_name(name) is expected


class TestDeterminism:
    def test_json_output_is_byte_stable_across_runs(self):
        """Two identical lint runs must render byte-identical JSON —
        CI diffs and caching depend on it."""
        first = _run([FIXTURES / "bad", FIXTURES / "good"])
        second = _run([FIXTURES / "bad", FIXTURES / "good"])
        assert first.render_json() == second.render_json()
        assert first.render_text() == second.render_text()

    def test_findings_totally_ordered(self):
        from repro.analysis.linter import finding_sort_key

        report = _run([FIXTURES / "bad"])
        keys = [finding_sort_key(f) for f in report.findings]
        assert keys == sorted(keys)
        # The key covers every finding attribute that renders, so equal
        # keys mean identical output lines — no unstable ties.
        assert len(set(keys)) == len(keys)
