"""Call-graph builder and hot-path model unit tests."""

from __future__ import annotations

from repro.analysis.perf.callgraph import build_call_graph, module_name_for
from repro.analysis.perf.hotmodel import build_hot_model


def _graph(*sources: tuple[str, str]):
    graph, errors = build_call_graph(list(sources))
    assert errors == []
    return graph


class TestDeclarations:
    def test_module_functions_methods_and_nested(self):
        graph = _graph((
            "mod.py",
            "def top():\n"
            "    def inner():\n"
            "        pass\n"
            "    inner()\n"
            "class C:\n"
            "    def meth(self):\n"
            "        pass\n",
        ))
        assert "mod.top" in graph.nodes
        assert "mod.top.<locals>.inner" in graph.nodes
        assert "mod.C.meth" in graph.nodes
        assert graph.nodes["mod.C.meth"].cls == "mod.C"
        # The nested function is called from its enclosing scope.
        assert "mod.top.<locals>.inner" in graph.nodes["mod.top"].calls

    def test_module_name_anchors_at_src(self):
        assert module_name_for("src/repro/core/monitor.py") == "repro.core.monitor"
        assert module_name_for("tests/analysis/fixtures/x.py") == "x"

    def test_syntax_error_reported_not_fatal(self):
        graph, errors = build_call_graph([
            ("bad.py", "def broken(:\n"),
            ("ok.py", "def fine():\n    pass\n"),
        ])
        assert len(errors) == 1 and "bad.py" in errors[0]
        assert "ok.fine" in graph.nodes


class TestEdges:
    def test_bare_call_and_import(self):
        graph = _graph(
            ("src/pkg/util.py", "def helper():\n    pass\n"),
            (
                "src/pkg/main.py",
                "from pkg.util import helper\n"
                "def go():\n"
                "    helper()\n",
            ),
        )
        assert "pkg.util.helper" in graph.nodes["pkg.main.go"].calls

    def test_self_method_resolution(self):
        graph = _graph((
            "m.py",
            "class C:\n"
            "    def a(self):\n"
            "        self.b()\n"
            "    def b(self):\n"
            "        pass\n",
        ))
        assert "m.C.b" in graph.nodes["m.C.a"].calls

    def test_constructor_edge_goes_to_init(self):
        graph = _graph((
            "m.py",
            "class C:\n"
            "    def __init__(self):\n"
            "        pass\n"
            "def make():\n"
            "    return C()\n",
        ))
        assert "m.C.__init__" in graph.nodes["m.make"].calls

    def test_class_attribute_heuristic(self):
        """``self.attr = ClassName()`` then ``self.attr.method()``."""
        graph = _graph((
            "m.py",
            "class Worker:\n"
            "    def run(self):\n"
            "        pass\n"
            "class Owner:\n"
            "    def __init__(self):\n"
            "        self.worker = Worker()\n"
            "    def go(self):\n"
            "        self.worker.run()\n",
        ))
        assert graph.attr_types["m.Owner"]["worker"] == "m.Worker"
        assert "m.Worker.run" in graph.nodes["m.Owner.go"].calls

    def test_annotated_parameter_type(self):
        graph = _graph((
            "m.py",
            "class Clock:\n"
            "    def advance(self):\n"
            "        pass\n"
            "def drive(clock: Clock):\n"
            "    clock.advance()\n",
        ))
        assert "m.Clock.advance" in graph.nodes["m.drive"].calls

    def test_callback_registration_site(self):
        """A bare function reference passed as an argument gets an edge."""
        graph = _graph((
            "m.py",
            "def on_tick(now):\n"
            "    pass\n"
            "def arm(clock):\n"
            "    clock.call_at(1.0, on_tick)\n",
        ))
        assert "m.on_tick" in graph.nodes["m.arm"].calls

    def test_unique_method_fallback(self):
        """``x.method()`` resolves when exactly one class defines it."""
        graph = _graph((
            "m.py",
            "class Only:\n"
            "    def rare_name(self):\n"
            "        pass\n"
            "def use(x):\n"
            "    x.rare_name()\n",
        ))
        assert "m.Only.rare_name" in graph.nodes["m.use"].calls

    def test_inherited_method_via_base(self):
        graph = _graph((
            "m.py",
            "class Base:\n"
            "    def shared(self):\n"
            "        pass\n"
            "class Child(Base):\n"
            "    def go(self):\n"
            "        self.shared()\n",
        ))
        assert "m.Base.shared" in graph.nodes["m.Child.go"].calls


class TestEnclosing:
    def test_innermost_function_wins(self):
        graph = _graph((
            "m.py",
            "def outer():\n"
            "    x = 1\n"
            "    def inner():\n"
            "        y = 2\n"
            "        return y\n"
            "    return inner\n",
        ))
        node = graph.enclosing("m.py", 4)
        assert node is not None and node.qname == "m.outer.<locals>.inner"
        assert graph.enclosing("m.py", 2).qname == "m.outer"
        assert graph.enclosing("m.py", 99) is None


class TestHotModel:
    def test_annotation_seed_propagates_transitively(self):
        graph = _graph((
            "m.py",
            "from repro.hotpath import hot_path\n"
            "@hot_path\n"
            "def entry():\n"
            "    middle()\n"
            "def middle():\n"
            "    leaf()\n"
            "def leaf():\n"
            "    pass\n"
            "def cold():\n"
            "    pass\n",
        ))
        model = build_hot_model(graph)
        assert model.is_hot("m.entry")
        assert model.is_hot("m.leaf")
        assert not model.is_hot("m.cold")
        assert model.chain_for("m.leaf") == "anno:m.entry → m.entry → m.middle → m.leaf"

    def test_cycle_terminates(self):
        graph = _graph((
            "m.py",
            "from repro.hotpath import hot_path\n"
            "@hot_path\n"
            "def a():\n"
            "    b()\n"
            "def b():\n"
            "    a()\n",
        ))
        model = build_hot_model(graph)
        assert model.is_hot("m.a") and model.is_hot("m.b")

    def test_profile_seed_and_unresolved(self):
        graph = _graph(("m.py", "def entry():\n    pass\n"))
        model = build_hot_model(
            graph,
            profile=[("bench:s", "m.entry"), ("bench:s", "m.missing")],
        )
        assert model.is_hot("m.entry")
        assert model.chain_for("m.entry") == "bench:s → m.entry"
        assert model.unresolved_seeds == ["bench:s:m.missing"]
        assert model.seeds == ["bench:s"]

    def test_shortest_chain_wins_deterministically(self):
        graph = _graph((
            "m.py",
            "from repro.hotpath import hot_path\n"
            "@hot_path\n"
            "def direct():\n"
            "    shared()\n"
            "@hot_path\n"
            "def indirect():\n"
            "    hop()\n"
            "def hop():\n"
            "    shared()\n"
            "def shared():\n"
            "    pass\n",
        ))
        first = build_hot_model(graph)
        second = build_hot_model(graph)
        # BFS depth 1 via ``direct`` beats depth 2 via ``indirect``.
        assert first.chain_for("m.shared") == "anno:m.direct → m.direct → m.shared"
        assert first.chain_for("m.shared") == second.chain_for("m.shared")
