"""gyan-perf end-to-end: driver, suppressions, baseline ratchet, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import load_baseline, render_baseline, write_baseline
from repro.analysis.findings import Severity
from repro.analysis.perf import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    PERF_SCHEMA,
    PerfOptions,
    analyze_sources,
    run_perf,
)
from repro.analysis.suppressions import SuppressionSet
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
PERF_BAD = FIXTURES / "perf_bad"
REPO_ROOT = Path(__file__).resolve().parents[2]


def _run(paths, **kwargs):
    return run_perf([str(p) for p in paths], PerfOptions(**kwargs))


class TestRunPerf:
    def test_bad_fixtures_fail_with_all_six_rules(self):
        report = _run([PERF_BAD])
        assert report.exit_code(Severity.ERROR) == EXIT_FINDINGS
        assert {f.rule_id for f in report.findings} == {
            "PERF601", "PERF602", "PERF603", "PERF604", "PERF605", "PERF606",
        }
        # Every fixture is @hot_path-annotated, so every finding is a hot
        # error carrying its seed→function chain.
        for finding in report.findings:
            assert finding.severity is Severity.ERROR
            assert finding.hot and finding.chain
            assert finding.chain.startswith("anno:")
            assert "[hot via " in finding.format_text()

    def test_shipped_sources_clean_at_error(self):
        report = _run(
            [REPO_ROOT / "src"],
            profile=str(REPO_ROOT / "BENCH_sim_core.json"),
        )
        assert report.errors == []
        assert report.unresolved_seeds == []
        hot_errors = [f for f in report.findings if f.severity >= Severity.ERROR]
        assert hot_errors == []
        assert report.exit_code(Severity.ERROR) == EXIT_CLEAN
        # The profile seeded bench scenarios on top of the annotations.
        assert any(s.startswith("bench:") for s in report.seeds)
        assert any(s.startswith("anno:") for s in report.seeds)
        assert report.hot_functions > 0
        assert report.graph_functions > report.hot_functions

    def test_json_is_byte_identical_across_runs(self):
        first = _run([PERF_BAD])
        second = _run([PERF_BAD])
        assert first.render_json() == second.render_json()
        assert first.render_text() == second.render_text()

    def test_json_schema_and_shape(self):
        payload = json.loads(_run([PERF_BAD]).render_json())
        assert payload["schema"] == PERF_SCHEMA
        assert payload["files_checked"] == 6
        assert payload["graph"]["functions"] >= 6
        assert payload["hot"]["functions"] >= 6
        first = payload["findings"][0]
        assert {"rule_id", "severity", "function", "hot", "chain"} <= set(first)

    def test_missing_path_is_usage_error(self):
        report = _run(["no/such/dir"])
        assert report.errors
        assert report.exit_code(Severity.ERROR) == EXIT_USAGE

    def test_unresolved_profile_seeds_surface(self):
        # The repo profile names scenarios whose entry points are not in
        # the fixture-only graph: they must surface, not silently cool.
        report = _run(
            [PERF_BAD], profile=str(REPO_ROOT / "BENCH_sim_core.json")
        )
        assert report.unresolved_seeds
        assert "unresolved profile entry points" in report.render_text()


class TestGoldenJson:
    SOURCE = (
        "from repro.hotpath import hot_path\n"
        "@hot_path\n"
        "def render(samples):\n"
        "    out = ''\n"
        "    for s in samples:\n"
        "        out += f'{s}!'\n"
        "    return out\n"
    )

    def test_finding_dict_is_exactly_this(self):
        findings, _graph, _model = analyze_sources([("mod.py", self.SOURCE)])
        assert [f.as_dict() for f in findings] == [{
            "rule_id": "PERF601",
            "severity": "error",
            "message": "string built up with += inside a loop — quadratic "
                       "reallocation, one copy per row",
            "path": "mod.py",
            "line": 6,
            "suggestion": "collect parts in a list and ''.join() once (or "
                          "stream buffered chunks)",
            "function": "mod.render",
            "hot": True,
            "chain": "anno:mod.render → mod.render",
        }]

    def test_cold_code_downgrades_to_info(self):
        cold = self.SOURCE.replace("@hot_path\n", "")
        findings, _graph, _model = analyze_sources([("mod.py", cold)])
        [finding] = findings
        assert finding.severity is Severity.INFO
        assert not finding.hot and finding.chain is None


class TestInlineSuppressions:
    def test_line_scope_suppresses_and_counts_as_used(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def render(samples):\n"
            "    out = ''\n"
            "    for s in samples:\n"
            "        out += f'{s}!'  # gyan: disable=PERF601\n"
            "    return out\n"
        )
        report = _run([target])
        assert report.findings == []

    def test_def_scope_covers_whole_function(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def render(samples):  # gyan: disable=PERF601\n"
            "    out = ''\n"
            "    for s in samples:\n"
            "        out += f'{s}!'\n"
            "    return out\n"
        )
        assert _run([target]).findings == []

    def test_unused_suppression_raises_sup001(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # gyan: disable=PERF601\n")
        report = _run([target])
        assert [f.rule_id for f in report.findings] == ["SUP001"]
        assert report.findings[0].severity is Severity.WARNING

    def test_det_pragma_not_audited_by_perf_run(self, tmp_path):
        """A DET4xx pragma is out of scope for perf: no SUP001."""
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # gyan: disable=DET401\n")
        assert _run([target]).findings == []

    def test_all_ast_families_honor_the_new_syntax(self):
        """SuppressionSet is family-agnostic: SRC/DET/PERF all filter."""
        from repro.analysis.findings import Finding

        text = "import time\ntime.sleep(1)  # gyan: disable=SRC201\n"
        suppressions = SuppressionSet.parse(text)
        findings = [
            Finding("SRC201", Severity.ERROR, "sleep", "mod.py", 2),
            Finding("SRC201", Severity.ERROR, "sleep", "mod.py", 1),
        ]
        kept = suppressions.filter(findings)
        assert [f.line for f in kept] == [1]


class TestBaseline:
    def test_write_then_apply_round_trips_to_clean(self, tmp_path):
        baseline_path = tmp_path / "perf-baseline.json"
        first = _run([PERF_BAD], write_baseline_path=str(baseline_path))
        assert first.findings
        second = _run([PERF_BAD], baseline=str(baseline_path))
        assert second.findings == []
        assert second.baselined == len(first.findings)
        assert second.exit_code(Severity.ERROR) == EXIT_CLEAN

    def test_new_findings_survive_the_ratchet(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(_run([PERF_BAD / "perf601_per_row.py"]).findings,
                       str(baseline_path))
        report = _run(
            [PERF_BAD / "perf601_per_row.py", PERF_BAD / "perf606_clone.py"],
            baseline=str(baseline_path),
        )
        assert {f.rule_id for f in report.findings} == {"PERF606"}

    def test_capture_is_byte_deterministic(self, tmp_path):
        findings = _run([PERF_BAD]).findings
        assert render_baseline(findings) == render_baseline(list(findings))
        path = tmp_path / "b.json"
        write_baseline(findings, str(path))
        assert path.read_text() == render_baseline(findings)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "nope", "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_lint_honors_the_same_ratchet(self, tmp_path):
        from repro.analysis.linter import LintOptions, lint_paths

        baseline_path = tmp_path / "lint-baseline.json"
        first = lint_paths(
            [str(FIXTURES / "bad")],
            LintOptions(write_baseline_path=str(baseline_path)),
        )
        assert first.findings
        second = lint_paths(
            [str(FIXTURES / "bad")], LintOptions(baseline=str(baseline_path))
        )
        assert second.findings == []
        assert second.baselined == len(first.findings)


class TestPerfCli:
    def test_perf_bad_exits_findings(self, capsys):
        code = main(["perf", "--no-profile", str(PERF_BAD)])
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "PERF601" in out and "[hot via anno:" in out

    def test_json_flag_emits_schema(self, capsys):
        code = main(["perf", "--no-profile", "--format", "json", str(PERF_BAD)])
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == PERF_SCHEMA

    def test_list_rules_shows_performance_family(self, capsys):
        code = main(["perf", "--list-rules"])
        assert code == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ("PERF601", "PERF602", "PERF603",
                        "PERF604", "PERF605", "PERF606", "SUP001"):
            assert rule_id in out

    def test_lint_list_rules_shows_the_family_too(self, capsys):
        code = main(["lint", "--list-rules"])
        assert code == EXIT_CLEAN
        assert "PERF601" in capsys.readouterr().out

    def test_missing_profile_is_usage_error(self, capsys):
        code = main(["perf", "--profile", "no/such/profile.json", str(PERF_BAD)])
        capsys.readouterr()
        assert code == EXIT_USAGE

    def test_missing_path_is_usage_error(self, capsys):
        code = main(["perf", "--no-profile", "does/not/exist"])
        capsys.readouterr()
        assert code == EXIT_USAGE


class TestLintIntegration:
    def test_lint_reports_perf_findings_on_python(self):
        from repro.analysis.linter import LintOptions, lint_paths

        report = lint_paths([str(PERF_BAD)], LintOptions())
        assert {f.rule_id for f in report.findings} >= {
            "PERF601", "PERF602", "PERF603", "PERF604", "PERF605", "PERF606",
        }
