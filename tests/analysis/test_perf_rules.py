"""PERF6xx rule detectors: one fixture per rule, plus negative cases."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.perf.perf_rules import perf_hits

PERF_BAD = Path(__file__).parent / "fixtures" / "perf_bad"


def _hits_for(text: str):
    return perf_hits(ast.parse(text))


def _rules(text: str) -> set[str]:
    return {hit.rule.rule_id for hit in _hits_for(text)}


@pytest.mark.parametrize("fixture,rule_id", [
    ("perf601_per_row.py", "PERF601"),
    ("perf602_scan.py", "PERF602"),
    ("perf603_probe.py", "PERF603"),
    ("perf604_timers.py", "PERF604"),
    ("perf605_alloc.py", "PERF605"),
    ("perf606_clone.py", "PERF606"),
])
def test_each_fixture_trips_its_rule(fixture, rule_id):
    rules = _rules((PERF_BAD / fixture).read_text())
    assert rules == {rule_id}


def test_perf601_all_three_arms_fire():
    hits = _hits_for((PERF_BAD / "perf601_per_row.py").read_text())
    assert len(hits) == 3  # +=, per-row write(), multi-field append


def test_perf604_both_arms_fire():
    hits = _hits_for((PERF_BAD / "perf604_timers.py").read_text())
    messages = [hit.message for hit in hits]
    assert any("re-arms" in m for m in messages)
    assert any("range() loop" in m for m in messages)


def test_hits_sorted_by_position():
    hits = _hits_for((PERF_BAD / "perf601_per_row.py").read_text())
    keys = [(h.line, h.rule.rule_id, h.message) for h in hits]
    assert keys == sorted(keys)


class TestNegatives:
    def test_presence_filter_is_not_a_scan(self):
        """``is not None`` filtering is one inherent pass, not PERF602."""
        assert _rules(
            "def ids(spans):\n"
            "    return [s for s in spans if s.job_id is not None]\n"
        ) == set()

    def test_two_field_fstring_append_is_benign(self):
        """Short per-record headers (e.g. FASTA) stay under PERF601's bar."""
        assert _rules(
            "def headers(records):\n"
            "    out = []\n"
            "    for r in records:\n"
            "        out.append(f'>{r.name} {r.description}')\n"
            "    return out\n"
        ) == set()

    def test_argless_constructor_in_while_is_benign(self):
        assert _rules(
            "def drain(q):\n"
            "    while q:\n"
            "        fresh = list()\n"
            "        q.pop()\n"
        ) == set()

    def test_numeric_augassign_in_loop_is_benign(self):
        assert _rules(
            "def total(samples):\n"
            "    n = 0\n"
            "    for s in samples:\n"
            "        n += 1\n"
            "    return n\n"
        ) == set()

    def test_probe_outside_loop_is_benign(self):
        assert _rules(
            "def once(device):\n"
            "    return device.nvmlDeviceGetUtilizationRates()\n"
        ) == set()

    def test_timer_registration_outside_range_loop_is_benign(self):
        assert _rules(
            "def arm(clock, cb):\n"
            "    clock.call_at(1.0, cb)\n"
        ) == set()

    def test_nested_function_bodies_not_attributed_to_outer_loop(self):
        """A def inside a loop body starts a new scope: its internals are
        not 'inside the loop' for the loop-sensitive rules."""
        assert _rules(
            "def outer(items):\n"
            "    for item in items:\n"
            "        def cb(now):\n"
            "            return f'{now}'\n"
        ) == set()
