"""The dynamic happens-before layer: ties, pruning, DET5xx, replay."""

from __future__ import annotations

import json

import pytest

from repro.analysis.findings import Severity
from repro.analysis.race import checker
from repro.analysis.race.clock_shim import (
    PermutingClock,
    Schedule,
    member_label,
)
from repro.analysis.race.driver import (
    RaceOptions,
    run_race,
    run_schedule_replay,
)
from repro.gpusim.footprint import FootprintRecorder


class TestPermutingClock:
    def test_baseline_order_matches_core_clock(self):
        fired = []
        clock = PermutingClock()
        clock.call_at(1.0, lambda now: fired.append("a"))
        clock.call_at(1.0, lambda now: fired.append("b"))
        clock.call_at(0.5, lambda now: fired.append("early"))
        clock.advance_to(2.0)
        assert fired == ["early", "a", "b"]

    def test_tie_recorded_for_unkeyed_pair(self):
        clock = PermutingClock()
        clock.call_at(1.0, lambda now: None)
        clock.call_at(1.0, lambda now: None)
        clock.advance_to(2.0)
        assert len(clock.ties) == 1
        assert clock.ties[0].when == 1.0
        assert len(clock.ties[0].members) == 2

    def test_keyed_timers_are_not_ties(self):
        fired = []
        clock = PermutingClock()
        clock.call_at(1.0, lambda now: fired.append("z"), key="z")
        clock.call_at(1.0, lambda now: fired.append("a"), key="a")
        clock.advance_to(2.0)
        assert clock.ties == []
        assert fired == ["a", "z"]  # key order, not registration order

    def test_schedule_flips_firing_order(self):
        fired = []
        clock = PermutingClock(
            schedule=Schedule(scenario="t", flips={0: (1, 0)})
        )
        clock.call_at(1.0, lambda now: fired.append("a"))
        clock.call_at(1.0, lambda now: fired.append("b"))
        clock.advance_to(2.0)
        assert fired == ["b", "a"]

    def test_bad_permutation_rejected(self):
        from repro.gpusim.errors import ClockError

        clock = PermutingClock(
            schedule=Schedule(scenario="t", flips={0: (0, 0)})
        )
        clock.call_at(1.0, lambda now: None)
        clock.call_at(1.0, lambda now: None)
        with pytest.raises(ClockError):
            clock.advance_to(2.0)

    def test_footprints_attributed_per_member(self):
        from repro.gpusim.clock import Timeline

        recorder = FootprintRecorder()
        clock = PermutingClock(recorder=recorder)
        timeline = Timeline()
        clock.call_at(1.0, lambda now: timeline.record(now, "x"))
        clock.call_at(1.0, lambda now: None)
        with recorder.installed():
            clock.advance_to(2.0)
        writer = recorder.footprint_for(member_label(0, 0))
        idle = recorder.footprint_for(member_label(0, 1))
        assert "timeline" in writer.writes
        assert idle.empty
        assert not writer.conflicts_with(idle)


class TestScheduleSerialisation:
    def test_round_trips_via_json(self, tmp_path):
        schedule = Schedule(scenario="tie-demo", flips={0: (1, 0)})
        path = tmp_path / "sched.json"
        path.write_text(schedule.to_json())
        loaded = Schedule.from_file(path)
        assert loaded.scenario == "tie-demo"
        assert loaded.flips == {0: (1, 0)}

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "not-a-schedule"}))
        with pytest.raises(ValueError):
            Schedule.from_file(path)


class TestCheckScenario:
    def test_tie_demo_reports_det501_with_minimal_schedule(self):
        result = checker.check_scenario(checker.get_scenario("tie-demo"))
        assert [f.rule_id for f in result.findings] == ["DET501"]
        assert result.findings[0].severity == Severity.ERROR
        assert len(result.schedules) == 1
        schedule = result.schedules[0]
        assert schedule["schema"] == "gyan.race/v1"
        assert schedule["flips"] == [{"tie": 0, "order": [1, 0]}]

    def test_tie_benign_reports_det502(self):
        result = checker.check_scenario(checker.get_scenario("tie-benign"))
        assert [f.rule_id for f in result.findings] == ["DET502"]
        assert result.findings[0].severity == Severity.WARNING
        assert result.schedules == []

    def test_commuting_ties_are_pruned(self):
        ran = []

        def scenario_run(clock):
            # Two unkeyed same-instant callbacks touching *no* shared
            # instrumented state: provably commute, no replay needed.
            clock.call_at(1.0, lambda now: ran.append("a"))
            clock.call_at(1.0, lambda now: ran.append("b"))
            clock.advance_to(2.0)
            return {"out.json": "{}\n"}

        scenario = checker.Scenario(
            name="_pruned", description="", run=scenario_run, default=False
        )
        result = checker.check_scenario(scenario)
        assert len(result.ties) == 1
        assert result.ties_pruned == 1
        assert result.replays == 0
        assert result.findings == []

    def test_default_scenarios_are_clean(self):
        for name in checker.default_scenarios():
            result = checker.check_scenario(checker.get_scenario(name))
            assert result.findings == [], (
                f"shipped scenario {name} has determinism findings"
            )

    def test_seeded_bad_scenarios_not_in_defaults(self):
        defaults = set(checker.default_scenarios())
        assert "tie-demo" not in defaults
        assert "tie-benign" not in defaults
        assert {"trace-workload", "chaos"} <= defaults


class TestDriver:
    def test_dynamic_run_reports_tie_demo(self):
        report = run_race(RaceOptions(
            run_static=False, scenarios=["tie-demo"],
        ))
        assert [f.rule_id for f in report.findings] == ["DET501"]
        assert report.exit_code(Severity.ERROR) == 1
        assert report.ties_observed == 1

    def test_unknown_scenario_is_usage_error(self):
        report = run_race(RaceOptions(
            run_static=False, scenarios=["no-such-scenario"],
        ))
        assert report.errors
        assert report.exit_code(Severity.ERROR) == 2

    def test_json_output_is_byte_deterministic(self):
        options = RaceOptions(run_static=False, scenarios=["tie-demo"])
        first = run_race(options).render_json()
        second = run_race(options).render_json()
        assert first == second
        payload = json.loads(first)
        assert payload["schema"] == "gyan.race-report/v1"
        assert payload["schedules"]

    def test_schedule_replay_reproduces_divergence(self, tmp_path):
        report = run_race(RaceOptions(
            run_static=False, scenarios=["tie-demo"],
        ))
        path = tmp_path / "sched.json"
        path.write_text(json.dumps(report.schedules[0]))
        replay = run_schedule_replay(path)
        assert [f.rule_id for f in replay.findings] == ["DET501"]
        assert replay.exit_code(Severity.ERROR) == 1

    def test_schedule_replay_clean_on_identity(self, tmp_path):
        path = tmp_path / "sched.json"
        path.write_text(
            Schedule(scenario="tie-demo", flips={}).to_json()
        )
        replay = run_schedule_replay(path)
        assert replay.findings == []
        assert replay.exit_code(Severity.ERROR) == 0

    def test_static_pass_on_fixtures_finds_all_rules(self):
        from pathlib import Path

        fixtures = Path(__file__).parent / "fixtures" / "race_bad"
        report = run_race(RaceOptions(
            paths=[str(fixtures)], run_dynamic=False,
        ))
        assert {f.rule_id for f in report.findings} == {
            "DET401", "DET402", "DET403", "DET404",
        }
        assert report.files_checked == 4
