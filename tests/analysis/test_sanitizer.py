"""simsan: inject real corruption into a GPUHost and assert it is caught.

The session-wide conftest fixtures install simsan for every test, so the
first assertions here also prove the suite-wide wiring works.
"""

from __future__ import annotations

import pytest

from repro.analysis import sanitizer as simsan
from repro.analysis.sanitizer import SanitizerError, SimSanitizer
from repro.gpusim.clock import VirtualClock
from repro.gpusim.errors import DoubleFreeError

MIB = 1024 * 1024


def _rule_ids(findings):
    return [f.rule_id for f in findings]


def test_simsan_is_installed_for_the_suite():
    """conftest installs simsan process-wide via GYAN_SIMSAN."""
    assert simsan.is_installed()
    assert simsan.current() is not None


def test_injected_leak_is_reported_at_process_exit(host):
    """SIM301: memory owned on a device the teardown never visits."""
    proc = host.launch_process("leaky_tool", cuda_visible_devices="0")
    # The bug: the tool allocates on GPU 1 even though its context lives
    # on GPU 0 only, so terminate_process never reclaims it.
    host.devices[1].memory.alloc(64 * MIB, proc.pid, tag="stale_batch")
    with pytest.raises(SanitizerError) as excinfo:
        host.terminate_process(proc.pid)
    finding = excinfo.value.finding
    assert finding.rule_id == "SIM301"
    assert "stale_batch" in finding.message


def test_clean_process_exit_passes(host):
    proc = host.launch_process("tidy_tool", cuda_visible_devices="0")
    allocation = host.devices[0].memory.alloc(64 * MIB, proc.pid)
    host.devices[0].memory.free(allocation)
    host.terminate_process(proc.pid)  # must not raise
    assert _rule_ids(simsan.current().drain()) == []


def test_double_free_is_recorded(host):
    """SIM302: the second free still raises, and simsan logs it."""
    proc = host.launch_process("df_tool", cuda_visible_devices="0")
    allocation = host.devices[0].memory.alloc(8 * MIB, proc.pid)
    host.devices[0].memory.free(allocation)
    with pytest.raises(DoubleFreeError):
        host.devices[0].memory.free(allocation)
    assert "SIM302" in _rule_ids(simsan.current().drain())


def test_utilization_out_of_bounds_fails_snapshot(host):
    """SIM303: a corrupted utilization counter dies at observation time."""
    host.devices[0].sm_utilization = 150.0
    with pytest.raises(SanitizerError) as excinfo:
        host.snapshot()
    assert excinfo.value.finding.rule_id == "SIM303"


def test_clock_rewind_is_caught():
    """SIM304: rewinding the virtual clock between observations."""
    san = simsan.current()
    clock = VirtualClock()
    clock.advance(10.0)
    san.check_clock(clock)
    clock._now = 3.0  # simulate the corruption the rule guards against
    with pytest.raises(SanitizerError) as excinfo:
        san.check_clock(clock)
    assert excinfo.value.finding.rule_id == "SIM304"


def test_accounting_corruption_fails_allocator_check(host):
    """SIM305: used > capacity after direct state corruption."""
    allocator = host.devices[0].memory
    allocator._context_overhead[4242] = allocator.capacity + 1
    with pytest.raises(SanitizerError) as excinfo:
        simsan.current().check_allocator(allocator)
    assert excinfo.value.finding.rule_id == "SIM305"
    del allocator._context_overhead[4242]


def test_collect_mode_records_instead_of_raising(host):
    """raise_on_violation=False turns simsan into a diagnostics sweep."""
    san = SimSanitizer(raise_on_violation=False)
    host.devices[0].sm_utilization = -1.0
    host.devices[1].sm_utilization = 400.0
    san.check_host(host)
    assert _rule_ids(san.violations) == ["SIM303", "SIM303"]
    host.devices[0].sm_utilization = 0.0
    host.devices[1].sm_utilization = 0.0


def test_lost_device_with_live_process_fails_snapshot(host):
    """SIM306: a device marked unhealthy must hold no live contexts."""
    host.launch_process("orphan_tool", cuda_visible_devices="0")
    # The bug: something flips healthy off without the mark_failed
    # teardown, so the process survives on a dead device.
    host.devices[0].healthy = False
    with pytest.raises(SanitizerError) as excinfo:
        host.snapshot()
    assert excinfo.value.finding.rule_id == "SIM306"
    # Repair so the autouse session sanitizer sees a consistent host.
    host.devices[0].mark_failed()
    simsan.current().drain()


def test_mark_failed_leaves_no_sim306(host):
    """The real failure path kills every context, so snapshots stay clean."""
    proc = host.launch_process("doomed_tool", cuda_visible_devices="1")
    casualties = host.devices[1].mark_failed(now=1.0, xid=79)
    assert proc.pid in casualties
    host.snapshot()  # must not raise
    assert _rule_ids(simsan.current().drain()) == []


def test_install_is_idempotent_and_uninstall_restores():
    first = simsan.install()
    assert simsan.install() is first  # second install is a no-op
    # Take the wrapped methods down and verify originals come back.
    from repro.gpusim.memory import MemoryAllocator

    wrapped = MemoryAllocator.alloc
    simsan.uninstall()
    try:
        assert MemoryAllocator.alloc is not wrapped
        assert not simsan.is_installed()
    finally:
        simsan.install()  # restore the suite-wide sanitizer


@pytest.mark.parametrize(
    "value,expected",
    [("1", True), ("true", True), ("on", True), ("", False), ("0", False),
     ("false", False), ("no", False)],
)
def test_enabled_from_env(value, expected):
    assert simsan.enabled_from_env({simsan.SIMSAN_ENV_VAR: value}) is expected


def test_enabled_from_env_unset():
    assert simsan.enabled_from_env({}) is False
