"""AST source rules: wall-clock discipline and NVML lifecycle."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.source_rules import analyze_source_text, is_virtual_clock_scope

GPUSIM_PATH = "src/repro/gpusim/example.py"
TOOLS_PATH = "src/repro/tools/example.py"


def _analyze(source: str, path: str = GPUSIM_PATH):
    return analyze_source_text(textwrap.dedent(source), path)


def _ids(findings):
    return [f.rule_id for f in findings]


def test_syntax_error_is_src200():
    findings = _analyze("def broken(:\n")
    assert _ids(findings) == ["SRC200"]
    assert findings[0].line == 1


class TestWallClock:
    BAD_SNIPPETS = [
        "import time\ntime.time()\n",
        "import time\ntime.sleep(1)\n",
        "import time as _t\n_t.perf_counter()\n",
        "from time import monotonic\nmonotonic()\n",
        "from time import sleep as snooze\nsnooze(2)\n",
        "import datetime\ndatetime.datetime.now()\n",
        "from datetime import datetime\ndatetime.utcnow()\n",
        "from datetime import date\ndate.today()\n",
    ]

    @pytest.mark.parametrize("source", BAD_SNIPPETS)
    def test_wall_clock_flagged_in_gpusim(self, source):
        findings = _analyze(source)
        assert _ids(findings) == ["SRC201"]
        assert findings[0].line == 2

    @pytest.mark.parametrize("source", BAD_SNIPPETS)
    def test_same_code_is_fine_outside_virtual_clock_scope(self, source):
        assert _analyze(source, path=TOOLS_PATH) == []

    def test_virtual_clock_usage_is_clean(self):
        source = """\
            from repro.gpusim.clock import VirtualClock

            def run(clock: VirtualClock):
                clock.advance(1.0)
                return clock.now
        """
        assert _analyze(source) == []

    def test_non_clock_time_attrs_are_fine(self):
        # time.strftime formats; it does not read a progressing clock the
        # simulator depends on.
        assert _analyze("import time\ntime.strftime('%Y')\n") == []

    def test_unrelated_module_named_time_attr(self):
        assert _analyze("import numpy\nnumpy.time()\n") == []

    def test_scope_predicate(self):
        assert is_virtual_clock_scope("src/repro/gpusim/clock.py")
        assert is_virtual_clock_scope("src/repro/core/mapper.py")
        assert not is_virtual_clock_scope("src/repro/tools/executors.py")
        assert not is_virtual_clock_scope("tests/test_clock.py")


class TestNvmlLifecycle:
    def test_query_before_init_is_flagged(self):
        source = """\
            lib = NvmlLibrary(host)
            count = lib.nvmlDeviceGetCount()
            lib.nvmlInit()
        """
        findings = _analyze(source, path=TOOLS_PATH)
        assert _ids(findings) == ["SRC202"]
        assert findings[0].line == 2

    def test_init_then_query_is_clean(self):
        source = """\
            lib = NvmlLibrary(host)
            lib.nvmlInit()
            count = lib.nvmlDeviceGetCount()
            lib.nvmlShutdown()
        """
        assert _analyze(source, path=TOOLS_PATH) == []

    def test_function_scope_is_independent(self):
        # The handle is constructed in one function and queried in
        # another: a lexical pass cannot order those, so stay silent.
        source = """\
            def make():
                return NvmlLibrary(host)

            def use(lib):
                return lib.nvmlDeviceGetCount()
        """
        assert _analyze(source, path=TOOLS_PATH) == []

    def test_flagged_inside_a_function(self):
        source = """\
            def probe(host):
                lib = NvmlLibrary(host)
                handle = lib.nvmlDeviceGetHandleByIndex(0)
                lib.nvmlInit()
                return handle
        """
        findings = _analyze(source, path=TOOLS_PATH)
        assert _ids(findings) == ["SRC202"]
        assert findings[0].line == 3

    def test_nested_function_does_not_leak_into_outer_scope(self):
        # The query happens inside a nested closure that runs after
        # nvmlInit(); the outer pass must not see it as "before init".
        source = """\
            def outer(host):
                lib = NvmlLibrary(host)

                def later():
                    return lib.nvmlDeviceGetCount()

                lib.nvmlInit()
                return later()
        """
        assert _analyze(source, path=TOOLS_PATH) == []

    def test_untracked_receiver_is_ignored(self):
        # `self._nvml` style receivers are attribute chains the lexical
        # pass does not track; no false positives.
        source = """\
            class Mapper:
                def count(self):
                    return self._nvml.nvmlDeviceGetCount()
        """
        assert _analyze(source, path=TOOLS_PATH) == []

    def test_module_and_function_events_do_not_mix(self):
        source = """\
            lib = NvmlLibrary(host)
            lib.nvmlInit()

            def use():
                return lib.nvmlDeviceGetCount()
        """
        assert _analyze(source, path=TOOLS_PATH) == []


def test_repo_sources_are_clean():
    """The shipped codebase passes its own source rules."""
    from pathlib import Path

    for path in sorted(Path("src").rglob("*.py")):
        findings = analyze_source_text(path.read_text(), str(path))
        assert findings == [], f"{path}: {[f.format_text() for f in findings]}"
