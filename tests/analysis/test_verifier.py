"""gyan-verify: deployment IR, static passes, model checker, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.findings import Severity
from repro.analysis.linter import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE
from repro.analysis.verifier import (
    Scope,
    VerifyOptions,
    load_deployments,
    verify_paths,
)
from repro.cli import main
from repro.gpusim.faults import InjectionPlan
from repro.workloads.chaos import run_chaos

FIXTURES = Path(__file__).parent / "fixtures" / "deployments"
REPO_ROOT = Path(__file__).resolve().parents[2]


def _verify(path, **kwargs):
    kwargs.setdefault("model_check", False)
    return verify_paths([str(path)], VerifyOptions(**kwargs))


def _rule_ids(report):
    return {f.rule_id for f in report.findings}


class TestDeploymentIR:
    def test_examples_load_as_three_deployments(self):
        deployments, findings, errors = load_deployments(
            [str(REPO_ROOT / "examples" / "configs")]
        )
        assert errors == [] and findings == []
        assert [Path(d.job_conf_path).name for d in deployments] == [
            "job_conf.xml", "job_conf_overload.xml",
            "job_conf_resilient.xml",
        ]
        first = deployments[0]
        assert "local_gpu" in first.destinations
        assert first.destinations["local_gpu"].span.line is not None
        # Same-directory tools and chaos plans attach to the deployment.
        assert {t.tool_id for t in first.tools} == {"racon", "bonito"}
        assert len(first.plans) == 2
        # The shipped autoscale plan attaches alongside the chaos plans.
        assert [a.name for a in first.autoscalers] == ["fleet-diurnal-day"]

    def test_initial_destinations_expand_dynamic_rules(self):
        deployments, _, _ = load_deployments(
            [str(REPO_ROOT / "examples" / "configs" / "job_conf.xml")]
        )
        (ir,) = deployments
        assert ir.initial_destinations("racon") == ["local_cpu", "local_gpu"]

    def test_resubmit_chain_cut_at_repeat(self):
        deployments, _, _ = load_deployments([str(FIXTURES / "bad")])
        (ir,) = deployments
        chain = ir.resubmit_chain("docker_a")
        assert chain == ["docker_a", "docker_b", "docker_a"]

    def test_unparseable_files_are_ver200(self, tmp_path):
        (tmp_path / "job_conf.xml").write_text("<job_conf><destinations>")
        report = _verify(tmp_path)
        assert _rule_ids(report) == {"VER200"}
        assert report.exit_code(Severity.ERROR) == EXIT_FINDINGS

    def test_missing_path_is_usage_error(self):
        report = _verify("no/such/path")
        assert report.exit_code(Severity.ERROR) == EXIT_USAGE

    def test_no_job_conf_is_usage_error(self, tmp_path):
        (tmp_path / "readme.json").write_text("{}")
        report = _verify(tmp_path)
        assert report.exit_code(Severity.ERROR) == EXIT_USAGE


class TestStaticPasses:
    def test_bad_fixture_trips_every_static_rule(self):
        report = _verify(FIXTURES / "bad")
        assert _rule_ids(report) >= {
            "VER201", "VER202", "VER203", "VER204", "VER205",
            "VER301", "VER302", "VER303",
        }
        assert report.exit_code(Severity.ERROR) == EXIT_FINDINGS

    def test_findings_carry_provenance(self):
        report = _verify(FIXTURES / "bad")
        by_rule = {f.rule_id: f for f in report.findings}
        assert by_rule["VER201"].path.endswith("styx.xml")
        assert by_rule["VER201"].line is not None
        assert by_rule["VER203"].line is not None
        assert by_rule["VER205"].path.endswith("plan_bad_device.json")

    def test_ver302_names_the_strategy(self):
        report = _verify(FIXTURES / "bad")
        messages = [
            f.message for f in report.findings if f.rule_id == "VER302"
        ]
        assert any("'pid'" in m for m in messages)

    def test_clean_fixture_is_clean(self):
        report = _verify(FIXTURES / "clean")
        assert report.findings == []
        assert report.exit_code(Severity.INFO) == EXIT_CLEAN

    def test_overload_bad_fixture_trips_every_ver5xx_rule(self):
        report = _verify(FIXTURES / "overload_bad")
        assert _rule_ids(report) >= {"VER501", "VER502", "VER503"}
        assert report.exit_code(Severity.ERROR) == EXIT_FINDINGS
        by_rule = {f.rule_id: f for f in report.findings}
        # Provenance points at the offending destination lines.
        assert by_rule["VER501"].line is not None
        assert by_rule["VER502"].line == by_rule["VER503"].line

    def test_ver501_silent_when_nothing_is_bounded(self):
        # The stock config never opted into bounding: not a finding.
        report = _verify(REPO_ROOT / "examples" / "configs" / "job_conf.xml")
        assert not any(r.startswith("VER5") for r in _rule_ids(report))

    def test_overload_example_passes_ver5xx(self):
        report = _verify(
            REPO_ROOT / "examples" / "configs" / "job_conf_overload.xml"
        )
        assert not any(r.startswith("VER5") for r in _rule_ids(report))

    def test_devices_flag_widens_plan_check(self):
        report = _verify(FIXTURES / "bad", device_count=8)
        assert "VER205" not in _rule_ids(report)


class TestAutoscalePass:
    def test_undersized_ceiling_is_ver504(self):
        report = _verify(FIXTURES / "autoscale_bad")
        by_rule = {f.rule_id: f for f in report.findings}
        assert "VER504" in by_rule
        assert by_rule["VER504"].path.endswith("autoscale_undersized.json")
        # The suggestion does the Little's-law sizing for the operator:
        # 3600 jobs/h x 120 s = 120 slots -> 30 nodes of 4 GPUs.
        assert "max_nodes to at least 30" in by_rule["VER504"].suggestion
        assert report.exit_code(Severity.ERROR) == EXIT_FINDINGS

    def test_laggy_provisioning_is_ver505(self):
        report = _verify(FIXTURES / "autoscale_bad")
        by_rule = {f.rule_id: f for f in report.findings}
        assert "VER505" in by_rule
        assert by_rule["VER505"].path.endswith("autoscale_laggy.json")
        assert by_rule["VER505"].severity == Severity.WARNING
        # The laggy plan is correctly *sized*: VER504 must not blame it.
        assert not by_rule["VER504"].path.endswith("autoscale_laggy.json")

    def test_shipped_autoscale_plan_is_clean(self):
        report = _verify(REPO_ROOT / "examples" / "configs")
        assert "VER504" not in _rule_ids(report)
        assert "VER505" not in _rule_ids(report)

    def test_unloadable_autoscale_plan_is_ver200(self, tmp_path):
        (tmp_path / "job_conf.xml").write_text(
            (FIXTURES / "clean" / "job_conf.xml").read_text()
        )
        (tmp_path / "autoscale.json").write_text(
            json.dumps({"schema": "gyan.autoscale/v1", "name": "broken"})
        )
        report = _verify(tmp_path)
        ver200 = [f for f in report.findings if f.rule_id == "VER200"]
        assert len(ver200) == 1
        assert "autoscale plan does not load" in ver200[0].message

    def test_plan_without_envelope_is_silent(self, tmp_path):
        (tmp_path / "job_conf.xml").write_text(
            (FIXTURES / "clean" / "job_conf.xml").read_text()
        )
        (tmp_path / "autoscale.json").write_text(json.dumps({
            "schema": "gyan.autoscale/v1",
            "name": "no-envelope",
            "pool": {"gpus_per_node": 2, "min_nodes": 1, "max_nodes": 2},
        }))
        report = _verify(tmp_path)
        assert report.findings == []


class TestModelChecker:
    def test_livelock_found_and_confirmed(self):
        report = _verify(FIXTURES / "bad", model_check=True)
        assert "VER401" in _rule_ids(report)
        (ce,) = [c for c in report.counterexamples if c.rule_id == "VER401"]
        # The chain revisits a destination: that is what livelock means.
        assert len(set(ce.chain_destinations)) < len(ce.chain_destinations)

    def test_job_loss_found_in_deadlock_fixture(self):
        report = _verify(FIXTURES / "deadlock", model_check=True)
        assert "VER402" in _rule_ids(report)
        (ce,) = report.counterexamples
        assert ce.plan.workload is not None
        assert ce.plan.workload.expect == "job_loss"

    def test_starvation_found_in_starvation_fixture(self):
        report = _verify(FIXTURES / "starvation", model_check=True)
        assert "VER403" in _rule_ids(report)
        (ce,) = report.counterexamples
        # Every hop is distinct and the final one still has an arm.
        assert len(set(ce.chain_destinations)) == len(ce.chain_destinations)

    def test_counterexample_replays_through_run_chaos(self):
        report = _verify(FIXTURES / "deadlock", model_check=True)
        (ce,) = report.counterexamples
        rehydrated = InjectionPlan.from_dict(ce.plan.to_dict())
        result = run_chaos(rehydrated)
        assert not result.all_ok

    def test_clean_fixture_passes_model_check(self):
        report = _verify(FIXTURES / "clean", model_check=True)
        assert report.findings == []
        assert report.replays > 1

    def test_scope_bounds_validated(self):
        with pytest.raises(ValueError):
            Scope(devices=3)
        with pytest.raises(ValueError):
            Scope(jobs=0)
        with pytest.raises(ValueError):
            Scope(faults=5)


class TestShippedConfigs:
    def test_examples_verify_clean(self):
        report = verify_paths(
            [str(REPO_ROOT / "examples")], VerifyOptions(model_check=True)
        )
        assert report.errors == []
        assert report.exit_code(Severity.ERROR) == EXIT_CLEAN
        # Nothing above INFO: the resilient pattern survives every
        # schedule in scope.
        assert all(f.severity == Severity.INFO for f in report.findings)


class TestRendering:
    def test_json_is_parseable_and_structured(self):
        report = _verify(FIXTURES / "bad")
        data = json.loads(report.render_json())
        assert data["deployments_checked"] == 1
        assert data["findings"]
        assert {f["rule_id"] for f in data["findings"]} >= {"VER201"}

    def test_output_is_byte_deterministic(self):
        first = _verify(FIXTURES / "deadlock", model_check=True)
        second = _verify(FIXTURES / "deadlock", model_check=True)
        assert first.render_json() == second.render_json()
        assert first.render_text() == second.render_text()


class TestVerifyCLI:
    def test_no_paths_is_usage_error(self, capsys):
        assert main(["verify"]) == EXIT_USAGE
        assert "no paths" in capsys.readouterr().err

    def test_bad_scope_is_usage_error(self, capsys):
        path = str(FIXTURES / "clean")
        assert main(["verify", path, "--scope", "nope"]) == EXIT_USAGE
        assert main(["verify", path, "--scope", "9,9,9"]) == EXIT_USAGE

    def test_clean_fixture_exits_clean(self, capsys):
        assert main(
            ["verify", str(FIXTURES / "clean"), "--no-model-check"]
        ) == EXIT_CLEAN
        assert "0 finding(s)" in capsys.readouterr().out

    def test_bad_fixture_exits_findings(self, capsys):
        assert main(
            ["verify", str(FIXTURES / "bad"), "--no-model-check"]
        ) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "VER201" in out and "VER301" in out

    def test_fail_on_warning_catches_starvation(self, capsys):
        assert main(
            ["verify", str(FIXTURES / "starvation"), "--fail-on", "warning"]
        ) == EXIT_FINDINGS
        assert "VER403" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main(
            ["verify", str(FIXTURES / "bad"), "--no-model-check",
             "--format", "json"]
        ) == EXIT_FINDINGS
        data = json.loads(capsys.readouterr().out)
        assert data["deployments_checked"] == 1

    def test_emitted_plan_replays_via_faults_cli(self, tmp_path, capsys):
        assert main(
            ["verify", str(FIXTURES / "deadlock"),
             "--emit-plans", str(tmp_path)]
        ) == EXIT_FINDINGS
        capsys.readouterr()
        plans = sorted(tmp_path.glob("*.json"))
        assert len(plans) == 1
        # The emitted counterexample must reproduce the job loss through
        # the public chaos replayer: exit 1 means a job was lost.
        assert main(["faults", "--plan", str(plans[0])]) == 1
        out = capsys.readouterr().out
        assert "embedded workload" in out
        assert "expect: job_loss" in out
