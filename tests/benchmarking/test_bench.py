"""The ``repro bench`` harness: schema stability, CLI, perf guard."""

import json
import time

import pytest

from repro.benchmarking import (
    BENCH_SCHEMA,
    BenchScenario,
    RunOutcome,
    run_suite,
    sim_core_suite,
    suite_scenarios,
)
from repro.benchmarking.harness import run_scenario, validate_report_dict
from repro.cli import main


def tiny_scenario(name="tiny", simulated=10.0):
    return BenchScenario(
        name=name,
        description="does nothing, quickly",
        setup=lambda: None,
        run=lambda ctx: simulated,
        workload={"size": 1},
    )


class TestHarness:
    def test_repeats_are_timed_individually(self):
        result = run_scenario(tiny_scenario(), repeats=3)
        assert result.repeats == 3
        assert len(result.wall_seconds) == 3
        assert all(w >= 0 for w in result.wall_seconds)

    def test_percentiles_are_order_statistics(self):
        result = run_scenario(tiny_scenario(), repeats=5)
        ordered = sorted(result.wall_seconds)
        assert result.percentile(0.5) == ordered[2]
        assert result.percentile(0.95) == ordered[4]
        assert result.percentile(0.0) == ordered[0]

    def test_throughput_uses_simulated_seconds(self):
        result = run_scenario(tiny_scenario(simulated=100.0), repeats=2)
        assert result.sim_seconds_per_wall_second > 0
        flat = run_scenario(tiny_scenario(simulated=0.0), repeats=2)
        assert flat.sim_seconds_per_wall_second == 0.0

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(tiny_scenario(), repeats=0)


class TestReportSchema:
    def test_report_validates_against_schema(self):
        report = run_suite([tiny_scenario()], suite="sim_core", repeats=2)
        assert validate_report_dict(report.as_dict()) == []

    def test_json_round_trips_and_is_sorted(self):
        report = run_suite([tiny_scenario()], suite="sim_core", repeats=1)
        data = json.loads(report.render_json())
        assert data["schema"] == BENCH_SCHEMA
        assert list(data) == sorted(data)
        assert validate_report_dict(data) == []

    def test_validator_flags_problems(self):
        report = run_suite([tiny_scenario()], suite="sim_core", repeats=1)
        data = report.as_dict()
        data["schema"] = "something-else"
        data["scenarios"][0]["wall_seconds"].pop("p95")
        problems = validate_report_dict(data)
        assert any("schema" in p for p in problems)
        assert any("p95" in p for p in problems)

    def test_scenario_key_set_is_fixed(self):
        """The deterministic-schema guarantee: key sets never vary."""
        report = run_suite(
            [tiny_scenario("a"), tiny_scenario("b")], suite="sim_core", repeats=1
        )
        entries = report.as_dict()["scenarios"]
        expected = {
            "name", "description", "repeats", "simulated_seconds",
            "sim_seconds_per_wall_second", "wall_seconds",
            "work_units", "work_units_per_second", "workload",
        }
        assert all(set(entry) == expected for entry in entries)
        assert all(
            set(entry["wall_seconds"]) == {"mean", "p50", "p95", "min", "max"}
            for entry in entries
        )


class TestSimCoreSuite:
    def test_quick_and_full_have_identical_scenario_names(self):
        quick = [s.name for s in sim_core_suite(quick=True)]
        full = [s.name for s in sim_core_suite(quick=False)]
        assert quick == full
        assert "monitor-long-job" in quick and "burst-dispatch" in quick

    def test_quick_suite_runs_and_validates(self):
        scenarios = [
            s for s in sim_core_suite(quick=True)
            if s.name in ("burst-dispatch", "timeline-queries")
        ]
        report = run_suite(scenarios, suite="sim_core", repeats=1, quick=True)
        assert validate_report_dict(report.as_dict()) == []


class TestRunOutcome:
    def test_outcome_carries_work_units(self):
        scenario = BenchScenario(
            name="outcome",
            description="returns a structured outcome",
            setup=lambda: None,
            run=lambda ctx: RunOutcome(simulated_seconds=5.0, work_units=50.0),
            workload={},
        )
        result = run_scenario(scenario, repeats=2)
        assert result.simulated_seconds == 5.0
        assert result.work_units == 50.0
        assert result.work_units_per_second > 0

    def test_plain_float_return_still_works(self):
        result = run_scenario(tiny_scenario(simulated=7.0), repeats=1)
        assert result.simulated_seconds == 7.0
        assert result.work_units == 0.0
        assert result.work_units_per_second == 0.0


class TestFleetCoreSuite:
    def test_suite_scenarios_resolves_both_suites(self):
        assert [s.name for s in suite_scenarios("sim_core", quick=True)] == [
            s.name for s in sim_core_suite(quick=True)
        ]
        fleet = suite_scenarios("fleet_core", quick=True)
        assert "fleet-map-throughput" in [s.name for s in fleet]
        with pytest.raises(ValueError):
            suite_scenarios("nope")

    def test_quick_and_full_have_identical_scenario_names(self):
        quick = [s.name for s in suite_scenarios("fleet_core", quick=True)]
        full = [s.name for s in suite_scenarios("fleet_core", quick=False)]
        assert quick == full

    def test_quick_fleet_throughput_runs_and_validates(self):
        scenarios = [
            s for s in suite_scenarios("fleet_core", quick=True)
            if s.name == "fleet-map-throughput"
        ]
        report = run_suite(scenarios, suite="fleet_core", repeats=1, quick=True)
        data = report.as_dict()
        assert validate_report_dict(data) == []
        entry = data["scenarios"][0]
        assert entry["work_units"] > 0
        assert entry["simulated_seconds"] > 0

    def test_fleet_cli_writes_valid_artifact(self, tmp_path, capsys):
        out = tmp_path / "BENCH_fleet_core.json"
        code = main([
            "bench", "--suite", "fleet_core", "--quick", "--repeats", "1",
            "--scenario", "diurnal-generate", "--output", str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert validate_report_dict(data) == []
        assert data["suite"] == "fleet_core"
        assert "diurnal-generate" in capsys.readouterr().out


class TestCli:
    def test_bench_writes_valid_artifact(self, tmp_path, capsys):
        out = tmp_path / "BENCH_sim_core.json"
        code = main([
            "bench", "--quick", "--repeats", "1",
            "--scenario", "burst-dispatch", "--output", str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert validate_report_dict(data) == []
        assert data["quick"] is True
        assert "burst-dispatch" in capsys.readouterr().out

    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("monitor-long-job", "monitor-csv-export",
                     "burst-dispatch", "chaos-run", "timeline-queries"):
            assert name in out

    def test_bench_unknown_scenario_is_usage_error(self, capsys):
        assert main(["bench", "--scenario", "nope", "--output", ""]) == 2
        assert "unknown scenario" in capsys.readouterr().err


@pytest.mark.perf_guard
def test_long_job_monitor_stays_fast():
    """Perf guard: the full 24-simulated-hour, 2-device monitor scenario
    must stay well under a generous wall ceiling.  The streaming sampler
    runs it in ~20 ms; the pre-streaming implementation took ~1 s, so a
    2 s budget only trips on an order-of-magnitude regression, not on a
    noisy CI box."""
    scenario = next(
        s for s in sim_core_suite(quick=False) if s.name == "monitor-long-job"
    )
    context = scenario.setup()
    started = time.perf_counter()
    scenario.run(context)
    elapsed = time.perf_counter() - started
    assert elapsed < 2.0, f"24h monitor scenario took {elapsed:.2f}s (ceiling 2s)"
