"""Autoscaling + placement: parity, pool semantics, drain, provisioning.

The fleet tier's tentpole contract extends to elasticity: every
placement policy and every autoscaler path (grow behind the
provisioning lag, shrink by draining, quarantine interplay) must be
*bit-identical* between the columnar simulator and the per-job-object
reference — digest and node-second accounting both.
"""

import pytest

from repro.cluster.autoscale import (
    AUTOSCALE_SCHEMA,
    PLACEMENT_BENEFIT,
    PLACEMENT_PACK,
    PLACEMENT_POLICIES,
    PLACEMENT_SPREAD,
    POOL_BASE,
    POOL_ELASTIC,
    AutoscaleController,
    AutoscalePlan,
    AutoscalerConfig,
    NodeSecondsMeter,
    WorkloadEnvelope,
    pool_of,
    reserve_slots,
)
from repro.cluster.fleet import (
    FleetConfig,
    FleetSimulator,
    NodeFailure,
    run_fleet,
)
from repro.cluster.fleet_reference import ObjectFleetReference
from repro.cluster.jobstore import NO_POOL, FleetJobState
from repro.workloads.diurnal import (
    BurstStorm,
    DiurnalProfile,
    FleetToolClass,
    diurnal_batches,
)

AUTO = AutoscalerConfig(
    min_nodes=2,
    max_nodes=8,
    eval_interval_s=300.0,
    provision_lag_s=900.0,
    scale_up_step=3,
    scale_down_step=2,
    hysteresis_windows=2,
    cooldown_s=600.0,
)


def elastic_config(**overrides) -> FleetConfig:
    settings = dict(
        nodes=8, gpus_per_node=2, queue_limit=4,
        deadline_seconds=1800.0, autoscale=AUTO,
    )
    settings.update(overrides)
    return FleetConfig(**settings)


def day_profile(seed: int, jobs: int = 4000) -> DiurnalProfile:
    return DiurnalProfile(
        seed=seed,
        storms=(BurstStorm(start=43_200.0, duration=7_200.0,
                           multiplier=5.0),),
    ).scaled_to(jobs)


def run_both(config, profile):
    batches = diurnal_batches(profile)
    result = FleetSimulator(config, profile.tools).run(batches)
    reference = ObjectFleetReference(config, profile.tools)
    store = reference.run(batches)
    return result, reference, store


def assert_bit_identical(result, reference, store):
    assert result.store_digest == store.digest()
    assert result.jobs_submitted == reference.counts["submitted"]
    assert result.completed == reference.counts["completed"]
    assert result.shed == reference.shed
    assert result.failed == reference.counts["failed"]
    assert result.resubmitted == reference.counts["resubmitted"]
    assert result.provisioned_nodes == reference.counts["provisioned"]
    assert result.decommissioned_nodes == reference.counts["decommissioned"]
    # Node-second parity is exact float equality: both implementations
    # charge the meter at identical instants in identical order.
    assert result.node_seconds == reference.meter.total


class TestAutoscaleParity:
    @pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
    @pytest.mark.parametrize("seed", range(3))
    def test_elastic_day_bit_identical(self, policy, seed):
        config = elastic_config(placement=policy)
        result, reference, store = run_both(config, day_profile(seed))
        assert_bit_identical(result, reference, store)
        assert result.scale_ups > 0  # the storm actually triggers growth

    @pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
    def test_elastic_day_with_failures_bit_identical(self, policy):
        config = elastic_config(
            placement=policy,
            failures=(
                NodeFailure(time=44_000.0, node=0, recovery_seconds=1800.0),
                NodeFailure(time=44_600.0, node=3, recovery_seconds=600.0),
            ),
        )
        result, reference, store = run_both(config, day_profile(1))
        assert_bit_identical(result, reference, store)
        assert result.quarantines >= 1

    def test_failure_targets_never_commissioned_node(self):
        """A failure event aimed at a node that never left the inactive
        elastic pool is a no-op in both implementations."""
        config = elastic_config(
            failures=(
                NodeFailure(time=10.0, node=7, recovery_seconds=60.0),
            ),
        )
        profile = DiurnalProfile(
            users=50, jobs_per_user_day=2.0, days=0.1,
            tick_seconds=300.0, seed=0,
        )
        result, reference, store = run_both(config, profile)
        assert_bit_identical(result, reference, store)
        assert result.quarantines == 0


class TestPoolSemantics:
    def test_pool_of(self):
        assert pool_of(0, 4) == POOL_BASE
        assert pool_of(3, 4) == POOL_BASE
        assert pool_of(4, 4) == POOL_ELASTIC
        assert pool_of(999, 4) == POOL_ELASTIC

    def test_columns_record_pools(self):
        config = elastic_config()
        profile = day_profile(2)
        simulator = FleetSimulator(config, profile.tools)
        result = simulator.run(diurnal_batches(profile))
        pools = set()
        for row in simulator.store.rows():
            if row.state is FleetJobState.COMPLETED and row.gpu:
                pools.add(row.pool)
                assert row.epoch >= 1  # placed on a commissioned node
        assert pools == {POOL_BASE, POOL_ELASTIC}
        assert result.peak_nodes > AUTO.min_nodes

    def test_cpu_jobs_have_no_pool(self):
        config = elastic_config()
        tools = (FleetToolClass("cpu_tool", False, 0.0, 300.0, 1.0),)
        profile = DiurnalProfile(
            users=100, jobs_per_user_day=2.0, days=0.1,
            tick_seconds=60.0, seed=0, tools=tools,
        )
        simulator = FleetSimulator(config, tools)
        simulator.run(diurnal_batches(profile))
        assert all(row.pool == NO_POOL for row in simulator.store.rows())

    def test_static_fleet_reports_no_elasticity(self):
        config = FleetConfig(nodes=4, gpus_per_node=2)
        profile = DiurnalProfile(
            users=200, jobs_per_user_day=2.0, days=0.1,
            tick_seconds=60.0, seed=0,
        )
        result = run_fleet(config, profile)
        assert result.scale_ups == 0
        assert result.scale_downs == 0
        assert result.pool_base_nodes == 4
        assert result.peak_nodes == 4
        assert result.pool_timeline == ((0.0, 4, 0),)
        # A static fleet charges every node for the whole horizon.
        assert result.node_seconds == pytest.approx(4 * result.end_time)

    def test_provision_lag_delays_growth(self):
        """Ordered nodes arrive warm only provision_lag_s later: the
        pool timeline shows pending orders strictly before the active
        count rises above the base pool."""
        config = elastic_config()
        result = run_fleet(config, day_profile(3))
        first_pending = next(
            (t for t, _active, pending in result.pool_timeline if pending),
            None,
        )
        first_grown = next(
            (t for t, active, _pending in result.pool_timeline
             if active > AUTO.start_nodes),
            None,
        )
        assert first_pending is not None and first_grown is not None
        assert first_grown >= first_pending + AUTO.provision_lag_s

    def test_scale_down_drains_back_to_base(self):
        """After the day's tail the elastic pool drains back down."""
        result = run_fleet(elastic_config(), day_profile(4))
        assert result.scale_downs > 0
        assert result.decommissioned_nodes > 0
        final_active = result.pool_timeline[-1][1]
        assert final_active < result.peak_nodes

    def test_node_seconds_below_static_equivalent(self):
        result = run_fleet(elastic_config(), day_profile(5))
        static_cost = AUTO.max_nodes * result.end_time
        assert result.node_seconds < static_cost


class TestDrainDuringStorm:
    """Regression for the mid-window node-departure bug: draining a
    pool while a burst storm keeps queues full must resubmit queued
    work through the hop path, never strand or double-run it."""

    def test_drain_resubmits_queued_jobs(self):
        # Aggressive scale-down against a bursty profile.  Queues are
        # per-node and freshly provisioned nodes arrive idle, so the
        # storm's wake leaves straggler queues on old nodes while new
        # capacity idles — utilisation drops, the scale-in drains
        # victims queue-and-all, and their leftovers resubmit through
        # the hop path (no failures configured, so every resubmit here
        # comes from a drain).
        auto = AutoscalerConfig(
            min_nodes=1, max_nodes=6, eval_interval_s=200.0,
            provision_lag_s=600.0, scale_up_step=5, scale_down_step=5,
            hysteresis_windows=1, cooldown_s=200.0,
            scale_down_utilization=0.67,
        )
        config = FleetConfig(
            nodes=6, gpus_per_node=1, queue_limit=4,
            deadline_seconds=30_000.0, autoscale=auto,
        )
        tools = (
            FleetToolClass("long_gpu", True, 1800.0, 7200.0, 1.0),
        )
        profile = DiurnalProfile(
            users=120, jobs_per_user_day=4.0, days=0.5,
            tick_seconds=300.0, seed=5, tools=tools,
            storms=(BurstStorm(start=7200.0, duration=3600.0,
                               multiplier=8.0),),
        )
        result, reference, store = run_both(config, profile)
        assert_bit_identical(result, reference, store)
        assert result.scale_downs > 0
        # Draining with non-empty queues goes through the resubmit path.
        assert result.resubmitted > 0
        # Ledger stays balanced: nothing stranded on drained nodes.
        shed_total = sum(result.shed.values())
        assert result.jobs_submitted == (
            result.completed + shed_total + result.failed
        )

    def test_draining_node_failure_decommissions_immediately(self):
        """A node that fails while draining decommissions on the spot
        (no recovery event) — in both implementations."""
        auto = AutoscalerConfig(
            min_nodes=1, max_nodes=4, eval_interval_s=100.0,
            provision_lag_s=200.0, scale_up_step=3, scale_down_step=3,
            hysteresis_windows=1, cooldown_s=100.0,
        )
        config = FleetConfig(
            nodes=4, gpus_per_node=1, queue_limit=2,
            deadline_seconds=14_400.0, autoscale=auto,
            failures=tuple(
                NodeFailure(time=t, node=node, recovery_seconds=900.0)
                for node, t in ((1, 5000.0), (2, 5100.0), (3, 5200.0))
            ),
        )
        tools = (FleetToolClass("long_gpu", True, 3600.0, 7200.0, 1.0),)
        profile = DiurnalProfile(
            users=60, jobs_per_user_day=3.0, days=0.25,
            tick_seconds=600.0, seed=4, tools=tools,
        )
        result, reference, store = run_both(config, profile)
        assert_bit_identical(result, reference, store)


class TestAutoscaleController:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_nodes=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_nodes=10, max_nodes=5)
        with pytest.raises(ValueError):
            AutoscalerConfig(eval_interval_s=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(provision_lag_s=-1.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_up_step=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(hysteresis_windows=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_nodes=2, max_nodes=8, initial_nodes=1)

    def test_hysteresis_defers_action(self):
        auto = AutoscalerConfig(
            min_nodes=2, max_nodes=10, hysteresis_windows=3,
            cooldown_s=0.0, scale_up_step=4,
        )
        controller = AutoscaleController(auto)
        pressure = dict(
            queued_jobs=100, shed_delta=0, busy_slots=16,
            usable_slots=16, usable_nodes=2, provisioned=2, removable=0,
        )
        assert controller.evaluate(300.0, **pressure) == 0
        assert controller.evaluate(600.0, **pressure) == 0
        assert controller.evaluate(900.0, **pressure) == 4

    def test_cooldown_rate_limits(self):
        auto = AutoscalerConfig(
            min_nodes=2, max_nodes=10, hysteresis_windows=1,
            cooldown_s=1000.0, scale_up_step=2,
        )
        controller = AutoscaleController(auto)
        pressure = dict(
            queued_jobs=100, shed_delta=0, busy_slots=16,
            usable_slots=16, usable_nodes=2, provisioned=2, removable=0,
        )
        assert controller.evaluate(300.0, **pressure) == 2
        assert controller.evaluate(600.0, **pressure) == 0  # cooling down
        assert controller.evaluate(1400.0, **pressure) == 2

    def test_scale_down_bounded_by_removable(self):
        auto = AutoscalerConfig(
            min_nodes=2, max_nodes=10, hysteresis_windows=1,
            cooldown_s=0.0, scale_down_step=5,
        )
        controller = AutoscaleController(auto)
        calm = dict(
            queued_jobs=0, shed_delta=0, busy_slots=0,
            usable_slots=64, usable_nodes=8, provisioned=8, removable=3,
        )
        assert controller.evaluate(300.0, **calm) == -3

    def test_meter_integrates_piecewise(self):
        meter = NodeSecondsMeter(4)
        meter.set_active(10.0, 6)   # 4 nodes x 10 s
        meter.set_active(20.0, 2)   # 6 nodes x 10 s
        meter.advance(30.0)         # 2 nodes x 10 s
        assert meter.total == pytest.approx(40.0 + 60.0 + 20.0)

    def test_reserve_slots_floor(self):
        assert reserve_slots(0.10, 10, 8) == 8
        assert reserve_slots(0.0, 10, 8) == 0
        assert reserve_slots(0.25, 3, 2) == 1  # floor of 1.5


class TestPlacementSemantics:
    def test_pack_prefers_fullest_node_spread_prefers_lowest_index(self):
        """Craft a state where node 0 has *more* free slots than node 2:
        spread places the next job on node 0 (lowest usable index),
        pack on node 2 (fewest free slots)."""
        from repro.workloads.diurnal import ArrivalBatch

        tools = (
            FleetToolClass("short_gpu", True, 1000.0, 4000.0, 0.5),
            FleetToolClass("long_gpu", True, 3000.0, 12_000.0, 0.5),
        )
        # t=0: node0 takes 4 short jobs, node1 takes 4 long, node2
        # takes 2 long.  At t=1500 node0 is fully free (4 slots) and
        # node2 has 2 free — the probe job disambiguates the policies.
        batches = [
            ArrivalBatch(time=0.0, tool=0, count=4),
            ArrivalBatch(time=0.0, tool=1, count=6),
            ArrivalBatch(time=1500.0, tool=0, count=1),
        ]

        def probe_destination(policy):
            config = FleetConfig(
                nodes=3, gpus_per_node=4, placement=policy
            )
            simulator = FleetSimulator(config, tools)
            simulator.run(batches)
            return simulator.store.row(10).destination

        assert probe_destination(PLACEMENT_SPREAD) == 0
        assert probe_destination(PLACEMENT_PACK) == 2

    def test_benefit_aware_degrades_low_benefit_early(self):
        """Low-benefit degradable classes never queue under
        benefit-aware: they run on spare capacity or fall to the CPU
        arm, leaving the queues to high-benefit tools."""
        config = FleetConfig(
            nodes=2, gpus_per_node=2, queue_limit=4,
            placement=PLACEMENT_BENEFIT, benefit_threshold=12.0,
            gpu_reserve_fraction=0.25,
        )
        profile = DiurnalProfile(
            users=2000, jobs_per_user_day=3.0, days=0.25,
            tick_seconds=60.0, seed=8,
        )
        simulator = FleetSimulator(config, profile.tools)
        result = simulator.run(diurnal_batches(profile))
        assert result.degraded > 0
        # A job shed from a queue keeps its queue placement (pool set,
        # gpu still 0).  Under benefit-aware only the high-benefit
        # class may queue, so no low-benefit (tool 0) job can carry
        # queue evidence.
        queue_shed_tools = {
            row.tool for row in simulator.store.rows()
            if row.state is FleetJobState.SHED
            and row.pool != NO_POOL and not row.gpu
        }
        assert 0 not in queue_shed_tools


class TestAutoscalePlan:
    """The declarative gyan.autoscale/v1 plan the verifier checks."""

    def plan_dict(self, **workload):
        data = {
            "schema": AUTOSCALE_SCHEMA,
            "name": "unit",
            "pool": {
                "gpus_per_node": 4,
                "min_nodes": 2,
                "max_nodes": 10,
                "eval_interval_s": 300.0,
                "provision_lag_s": 600.0,
                "hysteresis_windows": 2,
            },
        }
        if workload:
            data["workload"] = workload
        return data

    def test_from_dict_reuses_runtime_config(self):
        plan = AutoscalePlan.from_dict(self.plan_dict())
        assert isinstance(plan.config, AutoscalerConfig)
        assert plan.config.max_nodes == 10
        assert plan.max_slots == 40
        assert plan.reaction_s == 2 * 300.0 + 600.0
        assert plan.envelope is None

    def test_peak_slot_demand_is_littles_law_ceiling(self):
        envelope = WorkloadEnvelope(
            peak_gpu_jobs_per_hour=3601, mean_gpu_seconds=120.0
        )
        # 3601/h x 120 s / 3600 = 120.03... -> 121 slots.
        assert envelope.peak_slot_demand == 121

    def test_wrong_schema_rejected(self):
        data = self.plan_dict()
        data["schema"] = "gyan.fleet/v1"
        with pytest.raises(ValueError, match="not a gyan.autoscale/v1"):
            AutoscalePlan.from_dict(data)

    def test_unknown_pool_key_rejected(self):
        data = self.plan_dict()
        data["pool"]["warm_pool_size"] = 5
        with pytest.raises(ValueError, match="warm_pool_size"):
            AutoscalePlan.from_dict(data)

    def test_pool_validation_is_the_runtime_validation(self):
        data = self.plan_dict()
        data["pool"]["max_nodes"] = 1  # < min_nodes: runtime rule
        with pytest.raises(ValueError, match="max_nodes >= min_nodes"):
            AutoscalePlan.from_dict(data)

    def test_envelope_validation(self):
        with pytest.raises(ValueError):
            WorkloadEnvelope(peak_gpu_jobs_per_hour=0, mean_gpu_seconds=1)
        with pytest.raises(ValueError):
            WorkloadEnvelope(
                peak_gpu_jobs_per_hour=1, mean_gpu_seconds=1, deadline_s=0
            )
        data = self.plan_dict(
            peak_gpu_jobs_per_hour=1800, mean_gpu_seconds=60.0
        )
        plan = AutoscalePlan.from_dict(data)
        assert plan.envelope.peak_slot_demand == 30


class TestElasticityMetrics:
    """The gyan_fleet_pool_* / cost metric surface of elastic runs."""

    def test_elastic_metrics_mirror_the_ledger(self):
        config = elastic_config()
        profile = day_profile(0)
        simulator = FleetSimulator(config, profile.tools)
        result = simulator.run(diurnal_batches(profile))
        metrics = simulator.metrics
        assert metrics.value(
            "gyan_fleet_scale_events_total", direction="up"
        ) == result.scale_ups
        assert metrics.value(
            "gyan_fleet_scale_events_total", direction="down"
        ) == result.scale_downs
        assert metrics.value(
            "gyan_fleet_pool_node_events_total", event="provisioned"
        ) == result.provisioned_nodes
        assert metrics.value(
            "gyan_fleet_node_seconds_total"
        ) == pytest.approx(result.node_seconds)
        # Final pool gauges: base stays pinned, elastic has drained
        # down from the peak.
        assert metrics.value(
            "gyan_fleet_pool_nodes", pool="base"
        ) == AUTO.min_nodes
        assert metrics.value(
            "gyan_fleet_pool_nodes", pool="elastic"
        ) <= result.peak_nodes - AUTO.min_nodes

    def test_static_fleet_registers_no_pool_families(self):
        profile = DiurnalProfile(
            users=100, jobs_per_user_day=2.0, days=0.1,
            tick_seconds=60.0, seed=0,
        )
        simulator = FleetSimulator(
            FleetConfig(nodes=4, gpus_per_node=2), profile.tools
        )
        simulator.run(diurnal_batches(profile))
        assert not any("pool" in name or "scale" in name
                       for name in simulator.metrics.families())
