"""Property sweep: elastic-fleet parity over the whole knob space.

One :func:`hypothesis.given` drives (day-curve shape, provisioning lag,
hysteresis, placement policy, seed) and for every drawn case asserts
the tentpole invariants:

* **digest equality** — the columnar simulator and the per-job-object
  reference produce SHA-256-identical job stores;
* **ledger identity** — submitted = completed + shed + failed, with
  every per-reason shed count matching between implementations;
* **cost bounds** — node-seconds sit inside
  ``[min_nodes x end_time_lower, max_nodes x end_time]`` and never
  exceed what the equivalent *static* fleet (every node on for the
  whole horizon) would have billed;
* **meter parity** — node-second accounting is float-exact across
  implementations (identical charge instants, identical add order).
"""

from hypothesis import given, settings, strategies as st

from repro.cluster.autoscale import PLACEMENT_POLICIES, AutoscalerConfig
from repro.cluster.fleet import FleetConfig, FleetSimulator
from repro.cluster.fleet_reference import ObjectFleetReference
from repro.workloads.diurnal import (
    DEFAULT_DAY_CURVE,
    BurstStorm,
    DiurnalProfile,
    diurnal_batches,
)

#: Day-curve shapes: the default academic profile, a flat line, a
#: night-heavy inversion and a spiky double-peak.
FLAT_CURVE = (1.0,) * 24
NIGHT_CURVE = tuple(reversed(DEFAULT_DAY_CURVE))
DOUBLE_PEAK = tuple(
    2.0 if hour in (9, 10, 19, 20) else 0.4 for hour in range(24)
)
DAY_CURVES = (DEFAULT_DAY_CURVE, FLAT_CURVE, NIGHT_CURVE, DOUBLE_PEAK)

elastic_cases = st.fixed_dictionaries({
    "curve": st.sampled_from(DAY_CURVES),
    "lag": st.sampled_from((0.0, 300.0, 900.0)),
    "hysteresis": st.integers(1, 3),
    "policy": st.sampled_from(PLACEMENT_POLICIES),
    "seed": st.integers(0, 31),
    "storm": st.booleans(),
})


def build_case(case):
    auto = AutoscalerConfig(
        min_nodes=2,
        max_nodes=6,
        eval_interval_s=300.0,
        provision_lag_s=case["lag"],
        scale_up_step=2,
        scale_down_step=2,
        hysteresis_windows=case["hysteresis"],
        cooldown_s=600.0,
    )
    config = FleetConfig(
        nodes=6,
        gpus_per_node=2,
        queue_limit=4,
        deadline_seconds=1800.0,
        placement=case["policy"],
        autoscale=auto,
    )
    storms = (
        (BurstStorm(start=20_000.0, duration=4_000.0, multiplier=6.0),)
        if case["storm"] else ()
    )
    profile = DiurnalProfile(
        users=500,
        jobs_per_user_day=3.0,
        days=0.5,
        tick_seconds=300.0,
        day_curve=case["curve"],
        storms=storms,
        seed=case["seed"],
    )
    return config, profile


class TestElasticFleetProperties:
    @given(case=elastic_cases)
    @settings(max_examples=30, deadline=None)
    def test_parity_ledger_and_cost(self, case):
        config, profile = build_case(case)
        batches = diurnal_batches(profile)

        result = FleetSimulator(config, profile.tools).run(batches)
        reference = ObjectFleetReference(config, profile.tools)
        store = reference.run(batches)

        # Digest equality: bit-identical job state.
        assert result.store_digest == store.digest()

        # Ledger identity, per reason and in total.
        assert result.shed == reference.shed
        shed_total = sum(result.shed.values())
        assert result.jobs_submitted == (
            result.completed + shed_total + result.failed
        )
        assert result.jobs_submitted == reference.counts["submitted"]
        assert result.completed == reference.counts["completed"]
        assert result.failed == reference.counts["failed"]
        assert result.resubmitted == reference.counts["resubmitted"]
        assert result.provisioned_nodes == reference.counts["provisioned"]
        assert result.decommissioned_nodes == (
            reference.counts["decommissioned"]
        )

        # Meter parity: float-exact across implementations.
        assert result.node_seconds == reference.meter.total

        # Cost bounds: the elastic pool can never bill more than the
        # static fleet that keeps max_nodes on for the whole run, and
        # never less than the always-on base pool.
        auto = config.autoscale
        assert result.node_seconds <= auto.max_nodes * result.end_time
        assert result.node_seconds >= auto.min_nodes * result.end_time - 1e-6
        assert auto.min_nodes <= result.peak_nodes <= auto.max_nodes

    @given(case=elastic_cases)
    @settings(max_examples=10, deadline=None)
    def test_rerun_digest_stable(self, case):
        """The same drawn case run twice is byte-identical — the
        hypothesis-driven version of CI's double-run diff."""
        config, profile = build_case(case)
        batches = diurnal_batches(profile)
        first = FleetSimulator(config, profile.tools).run(batches)
        second = FleetSimulator(config, profile.tools).run(batches)
        assert first.to_json() == second.to_json()
