"""Fleet simulator: columnar-vs-reference parity, determinism, semantics."""

import pytest

from repro.cluster.fleet import (
    FleetConfig,
    FleetSimulator,
    NodeFailure,
    run_fleet,
)
from repro.cluster.fleet_reference import ObjectFleetReference
from repro.cluster.jobstore import FleetJobState
from repro.workloads.diurnal import (
    BurstStorm,
    DiurnalProfile,
    FleetToolClass,
    diurnal_batches,
)

#: A stressed little fleet: queues fill, deadlines expire, nodes die.
STRESS_CONFIG = FleetConfig(
    nodes=6,
    gpus_per_node=2,
    queue_limit=4,
    deadline_seconds=900.0,
    max_hops=2,
    failures=(
        NodeFailure(time=3600.0, node=0, recovery_seconds=1800.0),
        NodeFailure(time=7200.0, node=3, recovery_seconds=600.0),
        NodeFailure(time=7300.0, node=1, recovery_seconds=120.0),
    ),
)


def stress_profile(seed: int) -> DiurnalProfile:
    return DiurnalProfile(
        users=400,
        jobs_per_user_day=5.0,
        days=0.5,
        tick_seconds=120.0,
        seed=seed,
        storms=(BurstStorm(start=3000.0, duration=1200.0, multiplier=6.0),),
    )


def run_both(config, profile):
    batches = diurnal_batches(profile)
    result = FleetSimulator(config, profile.tools).run(batches)
    reference = ObjectFleetReference(config, profile.tools)
    store = reference.run(batches)
    return result, reference, store


class TestColumnarReferenceParity:
    """The tentpole property: bulk range transitions are bit-identical
    to the naive per-job-object model under seeded workloads."""

    @pytest.mark.parametrize("seed", range(5))
    def test_store_digests_match_under_failures(self, seed):
        result, reference, store = run_both(STRESS_CONFIG, stress_profile(seed))
        assert result.store_digest == store.digest()
        assert result.jobs_submitted == reference.counts["submitted"]
        assert result.completed == reference.counts["completed"]
        assert result.mapped_gpu == reference.counts["mapped_gpu"]
        assert result.mapped_cpu == reference.counts["mapped_cpu"]
        assert result.queued == reference.counts["queued"]
        assert result.resubmitted == reference.counts["resubmitted"]
        assert result.failed == reference.counts["failed"]
        assert result.degraded == reference.counts["degraded"]
        assert result.shed == reference.shed

    def test_parity_with_queue_full_shedding(self):
        """degrade_to_cpu off: overflow becomes QUEUE_FULL sheds."""
        config = FleetConfig(
            nodes=2, gpus_per_node=1, queue_limit=2,
            deadline_seconds=600.0, max_hops=1, degrade_to_cpu=False,
        )
        profile = DiurnalProfile(
            users=800, jobs_per_user_day=4.0, days=0.25,
            tick_seconds=60.0, seed=11,
        )
        result, reference, store = run_both(config, profile)
        assert result.store_digest == store.digest()
        assert result.shed == reference.shed
        assert result.shed.get("queue_full", 0) > 0

    def test_parity_with_hop_exhaustion(self):
        """Back-to-back failures push resubmit chains past max_hops."""
        config = FleetConfig(
            nodes=2, gpus_per_node=2, queue_limit=2,
            deadline_seconds=7200.0, max_hops=1,
            failures=tuple(
                NodeFailure(time=1800.0 + 400.0 * i, node=i % 2,
                            recovery_seconds=350.0)
                for i in range(8)
            ),
        )
        # GPU-only long jobs so running work is always interrupted.
        tools = (
            FleetToolClass("long_gpu", True, 3600.0, 7200.0, 1.0),
        )
        profile = DiurnalProfile(
            users=120, jobs_per_user_day=4.0, days=0.25,
            tick_seconds=300.0, seed=5, tools=tools,
        )
        result, reference, store = run_both(config, profile)
        assert result.store_digest == store.digest()
        assert result.failed == reference.counts["failed"]
        assert result.failed > 0  # hop budget actually exhausted
        assert result.resubmitted > 0


class TestDeterminism:
    def test_two_runs_byte_match(self):
        """The CI double-run contract: identical config + profile gives
        byte-identical deterministic JSON (digest included)."""
        profile = stress_profile(seed=3)
        first = run_fleet(STRESS_CONFIG, profile)
        second = run_fleet(STRESS_CONFIG, profile)
        assert first.to_json() == second.to_json()
        assert first.store_digest == second.store_digest

    def test_different_seeds_differ(self):
        first = run_fleet(STRESS_CONFIG, stress_profile(seed=0))
        second = run_fleet(STRESS_CONFIG, stress_profile(seed=1))
        assert first.store_digest != second.store_digest


class TestFleetSemantics:
    def test_ledger_balances(self):
        result = run_fleet(STRESS_CONFIG, stress_profile(seed=2))
        shed_total = sum(result.shed.values())
        assert result.jobs_submitted == (
            result.completed + shed_total + result.failed
        )
        states = result.states
        live = set(states) - {"COMPLETED", "SHED", "FAILED"}
        assert not live  # every job reached a terminal state

    def test_quarantine_and_recovery(self):
        result = run_fleet(STRESS_CONFIG, stress_profile(seed=0))
        assert result.quarantines == len(STRESS_CONFIG.failures)
        assert result.resubmitted > 0

    def test_degradable_class_degrades_before_shedding(self):
        """racon-style degradable jobs overflow to the CPU arm."""
        config = FleetConfig(
            nodes=1, gpus_per_node=1, queue_limit=1,
            deadline_seconds=600.0,
        )
        tools = (
            FleetToolClass("racon_like", True, 600.0, 1200.0, 1.0,
                           degradable=True),
        )
        profile = DiurnalProfile(
            users=600, jobs_per_user_day=4.0, days=0.25,
            tick_seconds=60.0, seed=1, tools=tools,
        )
        result, reference, store = run_both(config, profile)
        assert result.store_digest == store.digest()
        assert result.degraded > 0
        assert result.shed.get("queue_full", 0) == 0

    def test_cpu_only_tools_never_touch_nodes(self):
        config = FleetConfig(nodes=2, gpus_per_node=1)
        tools = (FleetToolClass("cpu_tool", False, 0.0, 300.0, 1.0),)
        profile = DiurnalProfile(
            users=100, jobs_per_user_day=2.0, days=0.1,
            tick_seconds=60.0, seed=0, tools=tools,
        )
        simulator = FleetSimulator(config, tools)
        result = simulator.run(diurnal_batches(profile))
        assert result.mapped_gpu == 0
        assert result.mapped_cpu == result.jobs_submitted
        assert all(
            row.destination == -1 for row in simulator.store.rows()
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(nodes=0)
        with pytest.raises(ValueError):
            FleetConfig(nodes=2, gpus_per_node=0)
        with pytest.raises(ValueError):
            FleetConfig(
                nodes=2,
                failures=(NodeFailure(time=0.0, node=5,
                                      recovery_seconds=1.0),),
            )

    def test_aggregate_metrics_not_per_job(self):
        """Observability at fleet scale is aggregate: counter families
        stay fixed no matter how many jobs run."""
        profile = DiurnalProfile(
            users=2000, jobs_per_user_day=2.0, days=0.1,
            tick_seconds=60.0, seed=0,
        )
        simulator = FleetSimulator(FleetConfig(nodes=4, gpus_per_node=2),
                                   profile.tools)
        result = simulator.run(diurnal_batches(profile))
        assert result.jobs_submitted > 100
        families = simulator.metrics.families()
        assert len(families) < 15
        snapshot = simulator.metrics.snapshot()
        latency = snapshot["gyan_fleet_job_latency_seconds"]["series"]
        assert latency["gyan_fleet_job_latency_seconds"]["count"] == (
            result.completed
        )

    def test_completed_jobs_have_monotone_instants(self):
        profile = stress_profile(seed=4)
        simulator = FleetSimulator(STRESS_CONFIG, profile.tools)
        simulator.run(diurnal_batches(profile))
        for row in simulator.store.rows():
            if row.state is FleetJobState.COMPLETED:
                assert row.submit <= row.start <= row.finish
