"""Differential A/B tests: placement policies and elastic-vs-static cost.

These are regression pins on *relative* behaviour, not absolutes:

* with capacity unconstrained every policy produces the identical
  ledger (placement order cannot change outcomes, only addresses);
* on the canonical storm fixture benefit-aware strictly beats spread
  on storm-window GPU queue wait *and* sheds no more;
* the autoscaled day costs >=30% fewer node-seconds than the static
  fleet at equal-or-lower shed — the paper-style elasticity claim.

The storm A/B runs are the heavyweight members of the suite, so they
carry the ``perf_guard`` marker alongside the wall-clock-sensitive
bench tests.
"""

import pytest

from repro.cluster.autoscale import (
    PLACEMENT_BENEFIT,
    PLACEMENT_POLICIES,
    PLACEMENT_SPREAD,
    AutoscalerConfig,
)
from repro.cluster.fleet import (
    AB_FLEET_JOBS,
    AB_FLEET_SEED,
    FleetConfig,
    FleetSimulator,
    ab_fleet_config,
    run_fleet,
)
from repro.cluster.jobstore import gpu_wait_percentile
from repro.workloads.diurnal import (
    AB_STORM_DURATION,
    AB_STORM_START,
    DiurnalProfile,
    ab_storm_profile,
    diurnal_batches,
)

STORM_LO = AB_STORM_START
STORM_HI = AB_STORM_START + AB_STORM_DURATION


class TestUnconstrainedCapacity:
    def test_policies_identical_when_capacity_unconstrained(self):
        """With more slots than peak demand no job ever queues, sheds
        or degrades — so spread, pack and benefit-aware must agree on
        every ledger total (they may only differ on *which* node)."""
        profile = DiurnalProfile(seed=3).scaled_to(20_000)
        batches = diurnal_batches(profile)
        ledgers = []
        for policy in PLACEMENT_POLICIES:
            config = FleetConfig(
                nodes=64, gpus_per_node=8, placement=policy
            )
            result = FleetSimulator(config, profile.tools).run(batches)
            ledgers.append({
                "completed": result.completed,
                "shed": result.shed,
                "failed": result.failed,
                "degraded": result.degraded,
                "mapped_gpu": result.mapped_gpu,
                "mapped_cpu": result.mapped_cpu,
                "queued": result.queued,
            })
        assert ledgers[0] == ledgers[1] == ledgers[2]
        assert ledgers[0]["shed"] == {}
        assert ledgers[0]["degraded"] == 0


@pytest.mark.perf_guard
class TestStormAB:
    """The canonical storm fixture, one policy per run, same seed."""

    @pytest.fixture(scope="class")
    def ab_runs(self):
        profile = ab_storm_profile(AB_FLEET_JOBS, seed=AB_FLEET_SEED)
        batches = diurnal_batches(profile)
        runs = {}
        for policy in PLACEMENT_POLICIES:
            simulator = FleetSimulator(
                ab_fleet_config(placement=policy), profile.tools
            )
            result = simulator.run(batches)
            runs[policy] = (
                result,
                gpu_wait_percentile(
                    simulator.store, 0.95, STORM_LO, STORM_HI
                ),
            )
        return runs

    def test_same_workload_every_policy(self, ab_runs):
        submitted = {
            result.jobs_submitted for result, _p95 in ab_runs.values()
        }
        assert len(submitted) == 1

    def test_benefit_aware_beats_spread_on_storm_p95(self, ab_runs):
        """The headline A/B: reserving slots for high-benefit tools and
        degrading low-benefit work early keeps the GPU queue short
        through the storm."""
        _spread, spread_p95 = ab_runs[PLACEMENT_SPREAD]
        _benefit, benefit_p95 = ab_runs[PLACEMENT_BENEFIT]
        assert benefit_p95 < spread_p95
        # The storm actually stresses spread; the fixture is tuned so
        # its p95 is a real queue wait, not noise.
        assert spread_p95 >= 600.0

    def test_benefit_aware_sheds_no_more_than_spread(self, ab_runs):
        spread, _ = ab_runs[PLACEMENT_SPREAD]
        benefit, _ = ab_runs[PLACEMENT_BENEFIT]
        assert sum(benefit.shed.values()) <= sum(spread.shed.values())

    def test_benefit_aware_trades_degrades_for_waits(self, ab_runs):
        """The mechanism behind the p95 win: low-benefit work lands on
        the CPU arm instead of camping in GPU queues."""
        spread, _ = ab_runs[PLACEMENT_SPREAD]
        benefit, _ = ab_runs[PLACEMENT_BENEFIT]
        assert benefit.degraded > spread.degraded


@pytest.mark.perf_guard
class TestElasticCost:
    def test_autoscaled_day_saves_30_percent_node_seconds(self):
        """The acceptance bar: >=30% fewer node-seconds than the static
        fleet on the same diurnal day, at equal-or-lower shed."""
        profile = DiurnalProfile(seed=42).scaled_to(110_000)
        static = run_fleet(
            FleetConfig(nodes=100, gpus_per_node=8), profile
        )
        auto = AutoscalerConfig(
            min_nodes=25, max_nodes=100,
            scale_up_step=10, scale_down_step=5,
        )
        elastic = run_fleet(
            FleetConfig(nodes=100, gpus_per_node=8, autoscale=auto),
            profile,
        )
        assert sum(elastic.shed.values()) <= sum(static.shed.values())
        assert elastic.node_seconds <= 0.70 * static.node_seconds
        # Sanity on the comparison: same workload, both fully drained.
        assert elastic.jobs_submitted == static.jobs_submitted
        assert static.node_seconds == pytest.approx(
            100 * static.end_time
        )
