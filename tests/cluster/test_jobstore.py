"""Columnar :class:`JobStore`: range transitions, digests, encodings."""

import pytest

from repro.cluster.jobstore import (
    NO_INSTANT,
    NO_NODE,
    SHED_REASON_BY_CODE,
    SHED_REASON_CODE,
    FleetJobState,
    JobStore,
)
from repro.resilience.shedding import ShedReason


class TestAppend:
    def test_append_batch_returns_contiguous_range(self):
        store = JobStore()
        lo, hi = store.append_batch(5, tool=2, submit=10.0, deadline=70.0)
        assert (lo, hi) == (0, 5)
        lo2, hi2 = store.append_batch(3, tool=0, submit=20.0, deadline=80.0)
        assert (lo2, hi2) == (5, 8)
        assert len(store) == 8

    def test_appended_rows_are_pending_with_sentinels(self):
        store = JobStore()
        store.append_batch(2, tool=1, submit=5.0, deadline=65.0)
        row = store.row(1)
        assert row.state is FleetJobState.PENDING
        assert row.tool == 1
        assert row.submit == 5.0
        assert row.deadline == 65.0
        assert row.destination == NO_NODE
        assert row.hops == 0
        assert row.shed is None
        assert row.start == NO_INSTANT
        assert row.finish == NO_INSTANT
        assert row.gpu is False

    def test_empty_batch_rejected(self):
        store = JobStore()
        with pytest.raises(ValueError):
            store.append_batch(0, tool=0, submit=0.0, deadline=1.0)


class TestTransitions:
    def test_gpu_lifecycle(self):
        store = JobStore()
        store.append_batch(4, tool=0, submit=0.0, deadline=60.0)
        store.start_range(0, 4, node=7, now=1.0, gpu=True)
        assert store.row(2).state is FleetJobState.RUNNING
        assert store.row(2).destination == 7
        assert store.row(2).gpu is True
        store.complete_range(0, 4, now=11.0)
        assert store.row(0).state is FleetJobState.COMPLETED
        assert store.row(0).finish == 11.0

    def test_queue_then_partial_start(self):
        store = JobStore()
        store.append_batch(6, tool=1, submit=0.0, deadline=60.0)
        store.queue_range(0, 6, node=3)
        assert all(r.state is FleetJobState.QUEUED for r in store.rows())
        store.start_range(0, 2, node=3, now=5.0, gpu=True)
        assert store.row(1).state is FleetJobState.RUNNING
        assert store.row(2).state is FleetJobState.QUEUED

    def test_shed_records_reason(self):
        store = JobStore()
        store.append_batch(3, tool=0, submit=0.0, deadline=60.0)
        store.shed_range(0, 3, ShedReason.QUEUE_FULL, now=2.0)
        row = store.row(1)
        assert row.state is FleetJobState.SHED
        assert row.shed is ShedReason.QUEUE_FULL
        assert row.finish == 2.0

    def test_resubmit_increments_hops_and_resets_placement(self):
        store = JobStore()
        store.append_batch(2, tool=0, submit=0.0, deadline=60.0)
        store.start_range(0, 2, node=1, now=1.0, gpu=True)
        store.resubmit_range(0, 2)
        row = store.row(0)
        assert row.state is FleetJobState.PENDING
        assert row.hops == 1
        assert row.destination == NO_NODE
        assert row.start == NO_INSTANT
        assert row.gpu is False
        store.resubmit_range(0, 1)
        assert store.row(0).hops == 2
        assert store.row(1).hops == 1

    def test_fail_range_is_terminal(self):
        store = JobStore()
        store.append_batch(1, tool=0, submit=0.0, deadline=60.0)
        store.fail_range(0, 1, now=9.0)
        assert store.row(0).state is FleetJobState.FAILED
        assert store.row(0).finish == 9.0


class TestDigestAndCounts:
    def test_count_by_state_only_reports_nonzero(self):
        store = JobStore()
        store.append_batch(3, tool=0, submit=0.0, deadline=60.0)
        store.start_range(0, 1, node=0, now=0.0, gpu=True)
        assert store.count_by_state() == {"PENDING": 2, "RUNNING": 1}

    def test_digest_is_bitwise(self):
        a, b = JobStore(), JobStore()
        for store in (a, b):
            store.append_batch(4, tool=1, submit=0.0, deadline=60.0)
            store.start_range(0, 4, node=2, now=1.0, gpu=True)
        assert a.digest() == b.digest()
        b.complete_range(3, 4, now=5.0)
        assert a.digest() != b.digest()

    def test_range_ops_equal_per_row_ops(self):
        """The columnar-vs-reference contract in miniature: one bulk
        range op and N single-row ops must produce identical bytes."""
        bulk, perjob = JobStore(), JobStore()
        bulk.append_batch(8, tool=2, submit=3.0, deadline=63.0)
        perjob.append_batch(8, tool=2, submit=3.0, deadline=63.0)
        bulk.start_range(0, 8, node=5, now=4.0, gpu=True)
        for i in range(8):
            perjob.start_range(i, i + 1, node=5, now=4.0, gpu=True)
        bulk.complete_range(0, 4, now=10.0)
        for i in range(4):
            perjob.complete_range(i, i + 1, now=10.0)
        bulk.shed_range(4, 8, ShedReason.DEADLINE_EXPIRED, now=70.0)
        for i in range(4, 8):
            perjob.shed_range(i, i + 1, ShedReason.DEADLINE_EXPIRED, now=70.0)
        assert bulk.digest() == perjob.digest()


class TestShedEncoding:
    def test_codes_round_trip_every_reason(self):
        for reason in ShedReason:
            assert SHED_REASON_BY_CODE[SHED_REASON_CODE[reason]] is reason

    def test_codes_are_stable_definition_order(self):
        assert SHED_REASON_CODE[ShedReason.QUEUE_FULL] == 0
        assert len(SHED_REASON_CODE) == len(ShedReason)
