"""Multi-node GPU-aware dispatch."""

import pytest

from repro.cluster.multinode import (
    ClusterDispatcher,
    FirstAvailableGpuPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    build_cluster,
    node_load,
)
from repro.galaxy.job import JobState


@pytest.fixture
def cluster():
    return build_cluster(gpu_nodes=2, cpu_nodes=1)


class TestBuildCluster:
    def test_topology(self, cluster):
        names = sorted(n.hostname for n in cluster.nodes)
        assert names == ["cpu-node-0", "gpu-node-0", "gpu-node-1"]
        assert sum(1 for n in cluster.nodes if n.has_gpus) == 2

    def test_shared_clock(self, cluster):
        clocks = {id(d.clock) for d in cluster.deployments.values()}
        assert len(clocks) == 1

    def test_loads_shape(self, cluster):
        loads = cluster.loads()
        assert [l.hostname for l in loads] == ["cpu-node-0", "gpu-node-0", "gpu-node-1"]
        assert loads[1].gpu_total == 2 and loads[1].gpu_idle == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            build_cluster(gpu_nodes=1, policy="random")

    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            ClusterDispatcher([])


class TestFirstAvailableGpuPolicy:
    def test_gpu_tool_goes_to_first_gpu_node(self, cluster):
        job = cluster.submit_and_run("racon", {"workload": "unit"})
        assert job.state is JobState.OK
        assert cluster.history[-1].hostname == "gpu-node-0"
        assert cluster.history[-1].wants_gpu

    def test_cpu_tool_goes_to_cpu_node(self, cluster):
        cluster.submit_and_run("seqstats", {"threads": 1})
        assert cluster.history[-1].hostname == "cpu-node-0"
        assert not cluster.history[-1].wants_gpu

    def test_overflow_spills_to_second_gpu_node(self, cluster):
        """Fill node 0's GPUs with overlapped jobs; the next GPU job
        lands on node 1 — scheduling 'on single or multiple GPU nodes
        based on the availability in the cluster'."""
        cluster.launch_overlapped("racon")   # gpu-node-0, GPU 0
        cluster.launch_overlapped("bonito")  # gpu-node-0, GPU 1
        deployment, _, handle = cluster.launch_overlapped("racon")
        assert deployment.node.hostname == "gpu-node-1"
        assert handle.host_process.device_indices == [0]

    def test_all_busy_picks_least_processes(self, cluster):
        for _ in range(2):
            cluster.launch_overlapped("racon")
            cluster.launch_overlapped("bonito")
        # all four GPUs busy; next job goes to the node with fewest procs
        deployment, _, _ = cluster.launch_overlapped("racon")
        assert deployment.node.hostname in ("gpu-node-0", "gpu-node-1")

    def test_gpu_tool_on_cpu_only_cluster_degrades(self):
        cluster = build_cluster(gpu_nodes=0, cpu_nodes=2)
        job = cluster.submit_and_run("racon", {"workload": "unit"})
        assert job.state is JobState.OK
        assert job.command_line.startswith("racon ")


class TestOtherPolicies:
    def test_round_robin_rotates(self):
        cluster = build_cluster(gpu_nodes=2, cpu_nodes=0, policy="round-robin")
        hosts = []
        for _ in range(4):
            cluster.submit_and_run("racon", {"workload": "unit"})
            hosts.append(cluster.history[-1].hostname)
        assert hosts == ["gpu-node-0", "gpu-node-1", "gpu-node-0", "gpu-node-1"]

    def test_least_loaded_balances(self):
        cluster = build_cluster(gpu_nodes=2, cpu_nodes=0, policy="least-loaded")
        cluster.launch_overlapped("racon")  # loads gpu-node-0
        deployment, _, _ = cluster.launch_overlapped("racon")
        assert deployment.node.hostname == "gpu-node-1"

    def test_policy_instances_accepted(self):
        for policy in (FirstAvailableGpuPolicy(), RoundRobinPolicy(), LeastLoadedPolicy()):
            cluster = build_cluster(gpu_nodes=1, policy=policy.name)
            assert cluster.policy.name == policy.name


class TestNodeLoad:
    def test_gpu_node_load(self, cluster):
        node = next(n for n in cluster.nodes if n.hostname == "gpu-node-0")
        load = node_load(node)
        assert load.gpu_total == 2 and load.gpu_idle == 2 and load.gpu_processes == 0

    def test_cpu_node_load(self, cluster):
        node = next(n for n in cluster.nodes if n.hostname == "cpu-node-0")
        load = node_load(node)
        assert load.gpu_total == 0 and load.cpu_free == 48


class TestNodeLoadIndex:
    def test_dispatcher_attaches_shared_index(self, cluster):
        assert cluster.load_index is not None
        assert cluster.policy._index is cluster.load_index

    def test_least_loaded_select_does_not_rescan_fleet(self):
        """The O(log n) regression guard: repeated selects on an idle
        cluster must not recompute node_load per call.  The historical
        scan evaluated every node's load vector on every select; the
        indexed path only re-evaluates a node when its state version
        actually changed."""
        cluster = build_cluster(gpu_nodes=3, cpu_nodes=1, policy="least-loaded")
        index = cluster.load_index
        baseline = index.load_evaluations  # initial heap build
        for _ in range(50):
            cluster.policy.select(cluster.nodes, wants_gpu=True)
            cluster.policy.select(cluster.nodes, wants_gpu=False)
        # Zero state changes happened, so zero re-evaluations: the old
        # full-scan behaviour would have cost 100 x nodes evaluations.
        assert index.load_evaluations == baseline

    def test_index_reevaluates_only_changed_nodes(self):
        cluster = build_cluster(gpu_nodes=2, cpu_nodes=0, policy="least-loaded")
        index = cluster.load_index
        cluster.policy.select(cluster.nodes, wants_gpu=True)
        baseline = index.load_evaluations
        handle = cluster.launch_overlapped("racon")  # mutates one node
        after_launch = index.load_evaluations
        cluster.policy.select(cluster.nodes, wants_gpu=True)
        # At most a couple of evaluations (the changed node, per heap),
        # never a whole-fleet rescan.
        assert index.load_evaluations - baseline <= 4
        cluster.finish_overlapped(*handle)

    def test_indexed_least_loaded_matches_scan(self):
        """Indexed selection must agree with the historical full scan."""
        cluster = build_cluster(gpu_nodes=3, cpu_nodes=0, policy="least-loaded")
        handles = [cluster.launch_overlapped("racon") for _ in range(2)]
        indexed = cluster.policy.select(cluster.nodes, wants_gpu=True)
        detached = LeastLoadedPolicy()  # no index: full scan
        scanned = detached.select(cluster.nodes, wants_gpu=True)
        assert indexed.hostname == scanned.hostname
        for handle in handles:
            cluster.finish_overlapped(*handle)

    def test_round_robin_uses_prebuilt_eligibility(self):
        cluster = build_cluster(gpu_nodes=2, cpu_nodes=1, policy="round-robin")
        index = cluster.load_index
        baseline = index.load_evaluations
        seen = {
            cluster.policy.select(cluster.nodes, wants_gpu=True).hostname
            for _ in range(4)
        }
        assert seen == {"gpu-node-0", "gpu-node-1"}
        assert index.load_evaluations == baseline


class TestNodeDeparture:
    """Regression: a node leaving mid-window (scale-in drain or
    quarantine) used to leave stale heap entries that ``best()`` could
    hand back — selection must lazily discard them instead."""

    def test_departed_node_never_selected(self):
        cluster = build_cluster(gpu_nodes=3, cpu_nodes=0,
                                policy="least-loaded")
        index = cluster.load_index
        # Load the other two nodes so gpu-node-0 is the heap head…
        busy = [cluster.launch_overlapped("racon") for _ in range(2)]
        assert cluster.policy.select(
            cluster.nodes, wants_gpu=True
        ).hostname == "gpu-node-2"
        # …then retire the *least*-loaded node mid-window.
        index.remove("gpu-node-2")
        survivors = [n for n in cluster.nodes
                     if n.hostname != "gpu-node-2"]
        for _ in range(5):
            chosen = cluster.policy.select(survivors, wants_gpu=True)
            assert chosen.hostname != "gpu-node-2"
        for handle in busy:
            cluster.finish_overlapped(*handle)

    def test_drain_during_burst_storm(self):
        """The pool-drain scenario: a burst keeps every node loaded,
        one node drains mid-burst, selection keeps serving from the
        survivors without ever dereferencing the departed node."""
        cluster = build_cluster(gpu_nodes=3, cpu_nodes=1,
                                policy="least-loaded")
        index = cluster.load_index
        burst = [cluster.launch_overlapped("racon") for _ in range(3)]
        index.remove("gpu-node-1")
        survivors = [n for n in cluster.nodes
                     if n.hostname != "gpu-node-1"]
        seen = {
            cluster.policy.select(survivors, wants_gpu=True).hostname
            for _ in range(6)
        }
        assert seen and "gpu-node-1" not in seen
        assert all(name != "gpu-node-1" for name in seen)
        for handle in burst:
            cluster.finish_overlapped(*handle)

    def test_gpu_heap_empty_falls_back_to_all_nodes(self):
        cluster = build_cluster(gpu_nodes=1, cpu_nodes=1,
                                policy="least-loaded")
        index = cluster.load_index
        index.remove("gpu-node-0")
        chosen = index.best(wants_gpu=True)
        assert chosen.hostname == "cpu-node-0"

    def test_empty_index_raises_lookup_error(self):
        cluster = build_cluster(gpu_nodes=1, cpu_nodes=1,
                                policy="least-loaded")
        index = cluster.load_index
        index.remove("gpu-node-0")
        index.remove("cpu-node-0")
        with pytest.raises(LookupError):
            index.best(wants_gpu=False)

    def test_readmitted_node_selected_again(self):
        """A node added mid-run (commissioned by the autoscaler) joins
        selection immediately."""
        cluster = build_cluster(gpu_nodes=2, cpu_nodes=0,
                                policy="least-loaded")
        index = cluster.load_index
        departed = next(
            n for n in cluster.nodes if n.hostname == "gpu-node-1"
        )
        index.remove("gpu-node-1")
        busy = cluster.launch_overlapped("racon")  # loads gpu-node-0
        index.add(departed)
        assert index.best(wants_gpu=True).hostname == "gpu-node-1"
        assert departed in index.gpu_nodes
        cluster.finish_overlapped(*busy)
