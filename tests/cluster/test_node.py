"""Compute node: resources, CPU slot accounting, testbed presets."""

import pytest

from repro.cluster.node import ComputeNode, NodeResources
from repro.gpusim.clock import VirtualClock
from repro.gpusim.host import make_k80_host


class TestNodeResources:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeResources(cpu_slots=0, memory_gib=1, gpu_count=0)
        with pytest.raises(ValueError):
            NodeResources(cpu_slots=1, memory_gib=0, gpu_count=0)
        with pytest.raises(ValueError):
            NodeResources(cpu_slots=1, memory_gib=1, gpu_count=-1)


class TestComputeNode:
    def test_paper_testbed_shape(self):
        """§V-B: Xeon E5-2670 with 48 CPUs and two K80 dies."""
        node = ComputeNode.paper_testbed()
        assert node.resources.cpu_slots == 48
        assert node.resources.gpu_count == 2
        assert node.gpu_host is not None
        assert node.gpu_host.device_count == 2
        assert node.clock is node.gpu_host.clock

    def test_cpu_only_node(self):
        node = ComputeNode.cpu_only()
        assert not node.has_gpus
        assert node.gpu_host is None

    def test_gpu_count_must_match_host(self):
        clock = VirtualClock()
        host = make_k80_host(clock=clock)
        with pytest.raises(ValueError):
            ComputeNode(
                "n",
                NodeResources(cpu_slots=4, memory_gib=8, gpu_count=4),
                clock=clock,
                gpu_host=host,
            )

    def test_gpus_require_host(self):
        with pytest.raises(ValueError):
            ComputeNode("n", NodeResources(cpu_slots=4, memory_gib=8, gpu_count=2))

    def test_cpu_reservation_lifecycle(self):
        node = ComputeNode.cpu_only(cpu_slots=8)
        token = node.reserve_cpus(5)
        assert node.cpu_slots_free == 3
        assert node.release_cpus(token) == 5
        assert node.cpu_slots_free == 8

    def test_overcommit_rejected(self):
        node = ComputeNode.cpu_only(cpu_slots=4)
        node.reserve_cpus(4)
        with pytest.raises(ValueError):
            node.reserve_cpus(1)

    def test_invalid_reservations(self):
        node = ComputeNode.cpu_only(cpu_slots=4)
        with pytest.raises(ValueError):
            node.reserve_cpus(0)
        with pytest.raises(ValueError):
            node.release_cpus(999)

    def test_independent_reservations(self):
        node = ComputeNode.cpu_only(cpu_slots=8)
        t1 = node.reserve_cpus(2)
        t2 = node.reserve_cpus(3)
        node.release_cpus(t1)
        assert node.cpu_slots_free == 5
        node.release_cpus(t2)
        assert node.cpu_slots_free == 8
