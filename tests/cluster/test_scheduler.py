"""FIFO scheduler: admission order, slot limits, failure capture."""

import pytest

from repro.cluster.node import ComputeNode
from repro.cluster.scheduler import ClusterScheduler, JobState, SlotRequest
from repro.core.retry import BackoffPolicy
from repro.resilience.shedding import RejectedBusy, ShedReason


@pytest.fixture
def node():
    return ComputeNode.cpu_only(cpu_slots=4)


@pytest.fixture
def scheduler(node):
    return ClusterScheduler(node)


class TestSubmitAndPump:
    def test_jobs_run_in_fifo_order(self, scheduler):
        order = []
        for name in ("a", "b", "c"):
            scheduler.submit(name, lambda name=name: order.append(name))
        scheduler.pump()
        assert order == ["a", "b", "c"]

    def test_results_and_states(self, scheduler):
        job = scheduler.submit("answer", lambda: 42)
        scheduler.pump()
        assert job.state is JobState.DONE
        assert job.result == 42
        assert job.start_time is not None and job.end_time is not None

    def test_failure_captured_not_raised(self, scheduler, node):
        def boom():
            raise RuntimeError("tool crashed")

        job = scheduler.submit("bad", boom)
        scheduler.pump()
        assert job.state is JobState.FAILED
        assert isinstance(job.error, RuntimeError)
        assert node.cpu_slots_free == 4  # slots released on failure

    def test_head_of_line_blocking(self, scheduler, node):
        node.reserve_cpus(3)  # only 1 slot free
        big = scheduler.submit("big", lambda: None, SlotRequest(cpu_slots=2))
        small = scheduler.submit("small", lambda: None, SlotRequest(cpu_slots=1))
        scheduler.pump()
        # No backfilling: the small job waits behind the blocked head.
        assert big.state is JobState.QUEUED
        assert small.state is JobState.QUEUED

    def test_pump_after_release(self, scheduler, node):
        token = node.reserve_cpus(4)
        job = scheduler.submit("later", lambda: "ok")
        assert scheduler.pump() == []
        node.release_cpus(token)
        completed = scheduler.pump()
        assert [j.name for j in completed] == ["later"]
        assert job.result == "ok"

    def test_max_jobs_limit(self, scheduler):
        for i in range(5):
            scheduler.submit(f"j{i}", lambda: None)
        assert len(scheduler.pump(max_jobs=2)) == 2
        assert len(scheduler.queued()) == 3

    def test_virtual_time_stamps(self, scheduler, node):
        job = scheduler.submit("timed", lambda: node.clock.advance(7.0))
        scheduler.pump()
        assert job.end_time - job.start_time == pytest.approx(7.0)

    def test_stats(self, scheduler):
        scheduler.submit("ok", lambda: None)
        scheduler.submit("bad", lambda: 1 / 0)
        scheduler.pump()
        stats = scheduler.stats()
        assert stats["done"] == 1 and stats["failed"] == 1

    def test_invalid_slot_request(self):
        with pytest.raises(ValueError):
            SlotRequest(cpu_slots=0)

    def test_job_lookup(self, scheduler):
        job = scheduler.submit("x", lambda: None)
        assert scheduler.job(job.job_id) is job


class TestBoundedQueue:
    def test_submit_past_depth_limit_raises_rejected_busy(self, node):
        scheduler = ClusterScheduler(node, max_queue_depth=2)
        scheduler.submit("a", lambda: None)
        scheduler.submit("b", lambda: None)
        with pytest.raises(RejectedBusy) as exc_info:
            scheduler.submit("c", lambda: None)
        assert exc_info.value.reason is ShedReason.QUEUE_FULL
        assert exc_info.value.limit == 2

    def test_pump_frees_the_bound(self, node):
        scheduler = ClusterScheduler(node, max_queue_depth=1)
        scheduler.submit("a", lambda: None)
        scheduler.pump()
        scheduler.submit("b", lambda: None)  # no raise: queue drained
        assert scheduler.peak_queue_depth == 1

    def test_invalid_depth_rejected(self, node):
        with pytest.raises(ValueError):
            ClusterScheduler(node, max_queue_depth=0)


class TestDeadlines:
    def test_expired_queued_jobs_are_shed_not_run(self, scheduler, node):
        ran = []
        fresh = scheduler.submit("fresh", lambda: ran.append("fresh"))
        stale = scheduler.submit(
            "stale", lambda: ran.append("stale"), deadline=5.0
        )
        node.clock.advance(6.0)
        scheduler.pump()
        assert ran == ["fresh"]
        assert fresh.state is JobState.DONE
        assert stale.state is JobState.SHED
        assert stale.shed_reason is ShedReason.DEADLINE_EXPIRED
        assert scheduler.shed_jobs == [stale]

    def test_deadline_not_yet_expired_runs(self, scheduler, node):
        job = scheduler.submit("timely", lambda: "ok", deadline=5.0)
        node.clock.advance(5.0)  # exactly at the deadline is still fine
        scheduler.pump()
        assert job.state is JobState.DONE


class TestRuntimeBudget:
    def test_overrunning_job_is_killed(self, scheduler, node):
        job = scheduler.submit(
            "hog", lambda: node.clock.advance(10.0), runtime_budget_s=3.0
        )
        scheduler.pump()
        assert job.state is JobState.KILLED
        assert isinstance(job.error, TimeoutError)

    def test_within_budget_is_done(self, scheduler, node):
        job = scheduler.submit(
            "ok", lambda: node.clock.advance(2.0), runtime_budget_s=3.0
        )
        scheduler.pump()
        assert job.state is JobState.DONE

    def test_kill_requeues_under_backoff_policy(self, node):
        scheduler = ClusterScheduler(
            node, retry_policy=BackoffPolicy(max_attempts=2, base_delay_s=1.0)
        )
        attempts = []

        def body():
            attempts.append(node.clock.now)
            # Overrun on the first attempt only.
            node.clock.advance(10.0 if len(attempts) == 1 else 1.0)

        job = scheduler.submit("flaky", body, runtime_budget_s=3.0)
        scheduler.pump()
        assert job.state is JobState.QUEUED
        assert job.attempt == 2
        assert job.not_before == pytest.approx(10.0 + 1.0)
        scheduler.pump()            # backoff hold not yet elapsed
        assert job.state is JobState.QUEUED
        node.clock.advance(1.0)
        scheduler.pump()
        assert job.state is JobState.DONE
        assert len(attempts) == 2

    def test_attempt_budget_exhausts_to_killed(self, node):
        scheduler = ClusterScheduler(
            node, retry_policy=BackoffPolicy(max_attempts=2, base_delay_s=1.0)
        )
        job = scheduler.submit(
            "hopeless", lambda: node.clock.advance(10.0), runtime_budget_s=3.0
        )
        scheduler.pump()
        node.clock.advance(11.0)
        scheduler.pump()
        assert job.state is JobState.KILLED
        assert job.attempt == 2


class TestSlotAudit:
    """Regression: FAILED/KILLED paths must neither leak nor double-free."""

    def test_audit_clean_after_mixed_outcomes(self, node):
        scheduler = ClusterScheduler(
            node, retry_policy=BackoffPolicy(max_attempts=2, base_delay_s=0.5)
        )

        def crash():
            raise RuntimeError("tool crashed mid-run")

        scheduler.submit("ok", lambda: None, SlotRequest(cpu_slots=2))
        scheduler.submit("crash", crash, SlotRequest(cpu_slots=3))
        scheduler.submit(
            "hog",
            lambda: node.clock.advance(9.0),
            SlotRequest(cpu_slots=1),
            runtime_budget_s=2.0,
        )
        scheduler.submit("late", lambda: None, deadline=0.5)
        for _ in range(6):
            scheduler.pump()
            assert scheduler.audit_slots() == node.cpu_slots_free
            node.clock.advance(5.0)
        stats = scheduler.stats()
        assert stats["done"] == 1 and stats["failed"] == 1
        assert stats["shed"] == 1 and stats["killed"] == 1
        assert scheduler.audit_slots() == node.resources.cpu_slots

    def test_audit_detects_a_leaked_reservation(self, scheduler, node):
        job = scheduler.submit("ok", lambda: None)
        scheduler.pump()
        # Simulate the bug the audit exists for: a terminal job still
        # holding a reservation token.
        job._cpu_token = 9999
        with pytest.raises(RuntimeError, match="non-RUNNING"):
            scheduler.audit_slots()

    def test_audit_detects_semaphore_drift(self, scheduler, node):
        scheduler.submit("ok", lambda: None)
        scheduler.pump()
        node.reserve_cpus(2)  # outside reservation the job table can't see
        with pytest.raises(RuntimeError, match="drifted"):
            scheduler.audit_slots()
