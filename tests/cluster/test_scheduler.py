"""FIFO scheduler: admission order, slot limits, failure capture."""

import pytest

from repro.cluster.node import ComputeNode
from repro.cluster.scheduler import ClusterScheduler, JobState, SlotRequest


@pytest.fixture
def node():
    return ComputeNode.cpu_only(cpu_slots=4)


@pytest.fixture
def scheduler(node):
    return ClusterScheduler(node)


class TestSubmitAndPump:
    def test_jobs_run_in_fifo_order(self, scheduler):
        order = []
        for name in ("a", "b", "c"):
            scheduler.submit(name, lambda name=name: order.append(name))
        scheduler.pump()
        assert order == ["a", "b", "c"]

    def test_results_and_states(self, scheduler):
        job = scheduler.submit("answer", lambda: 42)
        scheduler.pump()
        assert job.state is JobState.DONE
        assert job.result == 42
        assert job.start_time is not None and job.end_time is not None

    def test_failure_captured_not_raised(self, scheduler, node):
        def boom():
            raise RuntimeError("tool crashed")

        job = scheduler.submit("bad", boom)
        scheduler.pump()
        assert job.state is JobState.FAILED
        assert isinstance(job.error, RuntimeError)
        assert node.cpu_slots_free == 4  # slots released on failure

    def test_head_of_line_blocking(self, scheduler, node):
        node.reserve_cpus(3)  # only 1 slot free
        big = scheduler.submit("big", lambda: None, SlotRequest(cpu_slots=2))
        small = scheduler.submit("small", lambda: None, SlotRequest(cpu_slots=1))
        scheduler.pump()
        # No backfilling: the small job waits behind the blocked head.
        assert big.state is JobState.QUEUED
        assert small.state is JobState.QUEUED

    def test_pump_after_release(self, scheduler, node):
        token = node.reserve_cpus(4)
        job = scheduler.submit("later", lambda: "ok")
        assert scheduler.pump() == []
        node.release_cpus(token)
        completed = scheduler.pump()
        assert [j.name for j in completed] == ["later"]
        assert job.result == "ok"

    def test_max_jobs_limit(self, scheduler):
        for i in range(5):
            scheduler.submit(f"j{i}", lambda: None)
        assert len(scheduler.pump(max_jobs=2)) == 2
        assert len(scheduler.queued()) == 3

    def test_virtual_time_stamps(self, scheduler, node):
        job = scheduler.submit("timed", lambda: node.clock.advance(7.0))
        scheduler.pump()
        assert job.end_time - job.start_time == pytest.approx(7.0)

    def test_stats(self, scheduler):
        scheduler.submit("ok", lambda: None)
        scheduler.submit("bad", lambda: 1 / 0)
        scheduler.pump()
        stats = scheduler.stats()
        assert stats["done"] == 1 and stats["failed"] == 1

    def test_invalid_slot_request(self):
        with pytest.raises(ValueError):
            SlotRequest(cpu_slots=0)

    def test_job_lookup(self, scheduler):
        job = scheduler.submit("x", lambda: None)
        assert scheduler.job(job.job_id) is job
