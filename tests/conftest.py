"""Shared fixtures: hosts, deployments, miniature datasets.

The whole suite runs under the simsan runtime sanitizer
(:mod:`repro.analysis.sanitizer`): every GPU-memory mutation, process
exit and clock advance in every test is invariant-checked, so an
accounting bug anywhere fails loudly at the point of corruption.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import sanitizer as simsan
from repro.core import build_deployment
from repro.gpusim.host import make_k80_host
from repro.tools.bonito.signal import PoreModel, SquiggleSimulator
from repro.tools.executors import register_paper_tools
from repro.tools.mapping import MinimizerMapper
from repro.workloads.generator import corrupted_backbone, simulate_read_set

os.environ.setdefault(simsan.SIMSAN_ENV_VAR, "1")


@pytest.fixture(scope="session", autouse=True)
def _simsan_session():
    """Install simsan for the whole test session (env-gated)."""
    installed = simsan.install_from_env()
    yield
    if installed is not None:
        simsan.uninstall()


@pytest.fixture(autouse=True)
def _simsan_fresh_violations():
    """Start every test with an empty violation log."""
    active = simsan.current()
    if active is not None:
        active.drain()
    yield


@pytest.fixture
def host():
    """A fresh 2-die K80 host (the paper's testbed GPUs)."""
    return make_k80_host()


@pytest.fixture
def deployment():
    """A fully wired GYAN deployment with the paper's tools installed."""
    dep = build_deployment()
    register_paper_tools(dep.app)
    return dep


@pytest.fixture(scope="session")
def small_read_set():
    """A miniature genome + reads (shared; treat as read-only)."""
    return simulate_read_set(
        genome_length=2000, coverage=12, mean_read_length=300, seed=21
    )


@pytest.fixture(scope="session")
def small_polish_inputs(small_read_set):
    """(backbone, reads, mappings) for polishing tests (read-only)."""
    draft = corrupted_backbone(small_read_set, seed=6)
    mapper = MinimizerMapper(draft, k=13, w=5)
    mappings = mapper.map_reads(small_read_set.records)
    return draft, small_read_set.records, mappings


@pytest.fixture(scope="session")
def pore_model():
    """The default 3-mer pore model (read-only)."""
    return PoreModel(k=3, seed=2021)


@pytest.fixture(scope="session")
def squiggle_reads(pore_model):
    """A handful of simulated nanopore reads with truth (read-only)."""
    from repro.workloads.generator import simulate_genome

    simulator = SquiggleSimulator(
        pore_model, samples_per_base=8, dwell_jitter=2, noise_sd_pa=1.0
    )
    genome = simulate_genome(1500, seed=9)
    return simulator.simulate_reads(genome, n_reads=8, mean_length=250, seed=4)
