"""Docker runtime simulator: command assembly, GPU flag, overheads."""

import pytest

from repro.containers.docker import (
    DOCKER_LAUNCH_OVERHEAD_S,
    GPU_HOOK_OVERHEAD_S,
    PER_VOLUME_OVERHEAD_S,
    DockerRuntime,
)
from repro.containers.errors import GpuRuntimeMissingError, ImageNotFoundError
from repro.containers.image import RACON_GPU_IMAGE, ImageRegistry
from repro.containers.volumes import VolumeMount
from repro.gpusim.clock import VirtualClock


@pytest.fixture
def runtime():
    return DockerRuntime(ImageRegistry(), VirtualClock(), nvidia_docker_installed=True)


class TestCommandAssembly:
    def test_basic_command(self, runtime):
        command = runtime.build_run_command(
            "img:latest", ["racon", "-t", "4"], env={"A": "1"}
        )
        assert command[:3] == ["docker", "run", "--rm"]
        assert "-e" in command and "A=1" in command
        assert command[-3:] == ["racon", "-t", "4"]
        assert "img:latest" in command

    def test_gpus_all_flag_appended(self, runtime):
        """GYAN's change: command_part.append("--gpus all") (§IV-B)."""
        command = runtime.build_run_command("img", ["tool"], gpus="all")
        assert "--gpus all" in command
        # Flag precedes the image reference, like the real launch script.
        assert command.index("--gpus all") < command.index("img")

    def test_no_gpu_flag_by_default(self, runtime):
        assert "--gpus all" not in runtime.build_run_command("img", ["tool"])

    def test_volume_specs_with_modes(self, runtime):
        volumes = [VolumeMount("/h", "/c", "rw"), VolumeMount("/i", "/d", "ro")]
        command = runtime.build_run_command("img", ["t"], volumes=volumes)
        assert "/h:/c:rw" in command and "/i:/d:ro" in command

    def test_env_sorted_deterministic(self, runtime):
        c1 = runtime.build_run_command("img", ["t"], env={"B": "2", "A": "1"})
        c2 = runtime.build_run_command("img", ["t"], env={"A": "1", "B": "2"})
        assert c1 == c2


class TestRun:
    def test_gpu_without_nvidia_docker_fails(self):
        runtime = DockerRuntime(
            ImageRegistry(), VirtualClock(), nvidia_docker_installed=False
        )
        with pytest.raises(GpuRuntimeMissingError):
            runtime.run(RACON_GPU_IMAGE.reference, ["racon_gpu"], gpus="all")

    def test_unknown_image_fails(self, runtime):
        with pytest.raises(ImageNotFoundError):
            runtime.run("ghost/image:1", ["tool"])

    def test_cold_pull_then_cached(self, runtime):
        first = runtime.run(RACON_GPU_IMAGE.reference, ["racon_gpu"])
        second = runtime.run(RACON_GPU_IMAGE.reference, ["racon_gpu"])
        assert first.pull_duration > 0
        assert second.pull_duration == 0.0

    def test_launch_overhead_near_paper_measurement(self, runtime):
        """§VI-B: ~0.6 s container launching and cold start overhead."""
        result = runtime.run(
            RACON_GPU_IMAGE.reference,
            ["racon_gpu"],
            volumes=[VolumeMount("/a", "/b"), VolumeMount("/c", "/d")],
            gpus="all",
        )
        expected = (
            DOCKER_LAUNCH_OVERHEAD_S + 2 * PER_VOLUME_OVERHEAD_S + GPU_HOOK_OVERHEAD_S
        )
        assert result.launch_overhead == pytest.approx(expected)
        assert 0.5 <= result.launch_overhead <= 0.7

    def test_clock_charged(self, runtime):
        clock = runtime.clock
        runtime.run(RACON_GPU_IMAGE.reference, ["tool"])
        assert clock.now > 0

    def test_payload_runs_with_container_env(self, runtime):
        seen = {}

        def payload(env):
            seen.update(env)
            return "done"

        result = runtime.run(
            RACON_GPU_IMAGE.reference,
            ["tool"],
            payload=payload,
            env={"CUDA_VISIBLE_DEVICES": "1"},
        )
        assert result.payload_result == "done"
        assert seen["CUDA_VISIBLE_DEVICES"] == "1"

    def test_run_log_records(self, runtime):
        runtime.run(RACON_GPU_IMAGE.reference, ["tool"], gpus="all")
        assert len(runtime.run_log) == 1
        assert runtime.run_log[0].gpu_enabled
