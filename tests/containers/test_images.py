"""Image registry: pulls, caching, latency model."""

import pytest

from repro.containers.errors import ImageNotFoundError
from repro.containers.image import (
    BONITO_IMAGE,
    ContainerImage,
    ImageRegistry,
    RACON_GPU_IMAGE,
)


class TestImages:
    def test_paper_racon_image_reference(self):
        """§VI-B: docker pull gulsumgudukbay/racon_dockerfile."""
        assert RACON_GPU_IMAGE.reference == "gulsumgudukbay/racon_dockerfile:latest"
        assert RACON_GPU_IMAGE.gpu_capable

    def test_bonito_image_pinned_to_paper_version(self):
        assert BONITO_IMAGE.tag == "0.3.2"

    def test_reference_format(self):
        image = ContainerImage(repository="org/tool", tag="2.1")
        assert image.reference == "org/tool:2.1"


class TestRegistry:
    def test_cold_pull_costs_time_proportional_to_size(self):
        registry = ImageRegistry(bandwidth_gbps=0.15)
        _, record = registry.pull(RACON_GPU_IMAGE.reference)
        assert not record.cached
        expected = RACON_GPU_IMAGE.size_bytes / 0.15e9
        assert record.duration == pytest.approx(expected)

    def test_cache_hit_is_free(self):
        registry = ImageRegistry()
        registry.pull(RACON_GPU_IMAGE.reference)
        _, record = registry.pull(RACON_GPU_IMAGE.reference)
        assert record.cached and record.duration == 0.0

    def test_unknown_reference_raises(self):
        with pytest.raises(ImageNotFoundError):
            ImageRegistry().pull("nobody/nothing:latest")

    def test_publish_then_pull(self):
        registry = ImageRegistry()
        registry.publish(ContainerImage(repository="lab/custom", size_bytes=10**9))
        image, _ = registry.pull("lab/custom:latest")
        assert image.repository == "lab/custom"

    def test_evict_forces_repull(self):
        registry = ImageRegistry()
        registry.pull(RACON_GPU_IMAGE.reference)
        assert registry.evict(RACON_GPU_IMAGE.reference)
        assert not registry.is_cached(RACON_GPU_IMAGE.reference)
        _, record = registry.pull(RACON_GPU_IMAGE.reference)
        assert not record.cached

    def test_evict_missing_returns_false(self):
        assert not ImageRegistry().evict("not/cached:latest")

    def test_pull_log(self):
        registry = ImageRegistry()
        registry.pull(RACON_GPU_IMAGE.reference)
        registry.pull(RACON_GPU_IMAGE.reference)
        assert [r.cached for r in registry.pull_log] == [False, True]

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            ImageRegistry(bandwidth_gbps=0)
