"""Singularity runtime: --nv flag and the 3.1 bind-mode incompatibility."""

import pytest

from repro.containers.errors import InvalidBindOptionError
from repro.containers.image import RACON_GPU_IMAGE, ImageRegistry
from repro.containers.singularity import SingularityRuntime, SingularityVersion
from repro.containers.volumes import VolumeMount
from repro.gpusim.clock import VirtualClock


def runtime_for(version: SingularityVersion) -> SingularityRuntime:
    return SingularityRuntime(ImageRegistry(), VirtualClock(), version=version)


VOLUMES = [VolumeMount("/h", "/c", "rw"), VolumeMount("/i", "/d", "ro")]


class TestVersionBehaviour:
    def test_version_ordering(self):
        assert SingularityVersion(3, 1) > SingularityVersion(3, 0)
        assert str(SingularityVersion(3, 1)) == "3.1"

    def test_rejects_bind_modes_from_3_1(self):
        assert SingularityVersion(3, 1).rejects_bind_modes_with_nv
        assert SingularityVersion(4, 0).rejects_bind_modes_with_nv
        assert not SingularityVersion(3, 0).rejects_bind_modes_with_nv

    def test_pre_gyan_failure_reproduced(self):
        """§IV-B: rw/ro flags + --nv fail on Singularity 3.1."""
        runtime = runtime_for(SingularityVersion(3, 1))
        with pytest.raises(InvalidBindOptionError):
            runtime.run(
                RACON_GPU_IMAGE.reference,
                ["racon_gpu"],
                volumes=VOLUMES,
                nv=True,
                include_bind_modes=True,
            )

    def test_gyan_fix_strips_modes_and_succeeds(self):
        runtime = runtime_for(SingularityVersion(3, 1))
        result = runtime.run(
            RACON_GPU_IMAGE.reference,
            ["racon_gpu"],
            volumes=VOLUMES,
            nv=True,
            include_bind_modes=False,
        )
        assert result.gpu_enabled
        assert "/h:/c" in result.command and "/h:/c:rw" not in result.command

    def test_old_singularity_accepts_modes_with_nv(self):
        runtime = runtime_for(SingularityVersion(3, 0))
        result = runtime.run(
            RACON_GPU_IMAGE.reference, ["t"], volumes=VOLUMES, nv=True
        )
        assert "/h:/c:rw" in result.command

    def test_modes_fine_without_nv(self):
        runtime = runtime_for(SingularityVersion(3, 1))
        result = runtime.run(RACON_GPU_IMAGE.reference, ["t"], volumes=VOLUMES)
        assert "/h:/c:rw" in result.command
        assert "--nv" not in result.command


class TestCommandAssembly:
    def test_nv_flag_position(self):
        runtime = runtime_for(SingularityVersion(3, 1))
        command = runtime.build_exec_command(
            "img:1", ["tool"], nv=True, include_bind_modes=False
        )
        assert command[:2] == ["singularity", "exec"]
        assert "--nv" in command
        assert command.index("--nv") < command.index("docker://img:1")

    def test_docker_uri_scheme(self):
        runtime = runtime_for(SingularityVersion(3, 1))
        command = runtime.build_exec_command("org/img:2", ["t"])
        assert "docker://org/img:2" in command

    def test_launch_overhead_cheaper_than_docker(self):
        from repro.containers.docker import DOCKER_LAUNCH_OVERHEAD_S

        runtime = runtime_for(SingularityVersion(3, 1))
        result = runtime.run(RACON_GPU_IMAGE.reference, ["t"], nv=True)
        assert result.launch_overhead < DOCKER_LAUNCH_OVERHEAD_S

    def test_env_passed_to_payload(self):
        runtime = runtime_for(SingularityVersion(3, 1))
        seen = {}
        runtime.run(
            RACON_GPU_IMAGE.reference,
            ["t"],
            payload=lambda env: seen.update(env),
            env={"GALAXY_GPU_ENABLED": "true"},
        )
        assert seen["GALAXY_GPU_ENABLED"] == "true"

    def test_volume_mode_validation(self):
        with pytest.raises(ValueError):
            VolumeMount("/a", "/b", mode="rx")
