"""GPU memory admission control (extension of the Memory approach)."""

import pytest

from repro.core.admission import GpuMemoryAdmissionController
from repro.core.mapper import GpuComputationMapper
from repro.galaxy.job import GalaxyJob
from repro.galaxy.tool_xml import parse_tool_xml

MIB = 1024**2

GPU_TOOL = parse_tool_xml(
    '<tool id="g"><requirements>'
    '<requirement type="compute">gpu</requirement>'
    "</requirements><command>racon_gpu</command></tool>"
)


def job_with(footprint_mib=None):
    params = {} if footprint_mib is None else {"gpu_memory_mib": footprint_mib}
    return GalaxyJob(tool=GPU_TOOL, params=params)


class TestController:
    def test_default_footprint(self):
        controller = GpuMemoryAdmissionController()
        assert controller.required_mib(job_with()) == 256

    def test_declared_footprint(self):
        controller = GpuMemoryAdmissionController()
        assert controller.required_mib(job_with(8000)) == 8000

    def test_invalid_footprint(self):
        with pytest.raises(ValueError):
            GpuMemoryAdmissionController().required_mib(job_with(-5))

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            GpuMemoryAdmissionController(default_footprint_mib=0)
        with pytest.raises(ValueError):
            GpuMemoryAdmissionController(headroom_mib=-1)


class TestMapperIntegration:
    def make_mapper(self, host):
        return GpuComputationMapper(
            host, admission=GpuMemoryAdmissionController(headroom_mib=128)
        )

    def test_fitting_job_admitted(self, host):
        mapper = self.make_mapper(host)
        env = mapper.prepare_environment(job_with(4000))
        assert env["GALAXY_GPU_ENABLED"] == "true"
        assert env["CUDA_VISIBLE_DEVICES"] == "0,1"

    def test_oversized_job_falls_back_to_cpu(self, host):
        """A footprint no device can hold degrades to CPU instead of
        dying with a CUDA OOM mid-run."""
        mapper = self.make_mapper(host)
        env = mapper.prepare_environment(job_with(20_000))  # > 11441 MiB
        assert env["GALAXY_GPU_ENABLED"] == "false"
        assert "CUDA_VISIBLE_DEVICES" not in env

    def test_selection_trimmed_to_fitting_devices(self, host):
        """One device nearly full: the multi-device selection shrinks to
        the device that still fits the footprint."""
        proc = host.launch_process("hog", cuda_visible_devices="0")
        host.device(0).alloc(10_000 * MIB, pid=proc.pid)
        # device 0 busy anyway; make both 'busy' so PID scatters to all:
        proc2 = host.launch_process("small", cuda_visible_devices="1")
        mapper = self.make_mapper(host)
        env = mapper.prepare_environment(job_with(5_000))
        assert env["GALAXY_GPU_ENABLED"] == "true"
        assert env["CUDA_VISIBLE_DEVICES"] == "1"
        assert mapper.admission.log[-1].admitted
        assert "trimmed" in mapper.admission.log[-1].reason

    def test_admission_log_records_rejections(self, host):
        mapper = self.make_mapper(host)
        mapper.prepare_environment(job_with(50_000))
        entry = mapper.admission.log[-1]
        assert not entry.admitted
        assert entry.required_mib == 50_000
        assert "free" in entry.reason

    def test_headroom_respected(self, host):
        """A job that fits only without headroom is rejected."""
        controller = GpuMemoryAdmissionController(headroom_mib=2048)
        mapper = GpuComputationMapper(host, admission=controller)
        env = mapper.prepare_environment(job_with(10_000))  # 10000+2048 > 11441
        assert env["GALAXY_GPU_ENABLED"] == "false"


class TestUtilizationStrategy:
    def test_least_utilized_device_selected(self, host):
        from repro.core.allocation import UtilizationAllocationStrategy

        host.launch_process("a", cuda_visible_devices="0")
        host.launch_process("b", cuda_visible_devices="1")
        host.device(0).sm_utilization = 95.0
        host.device(1).sm_utilization = 10.0
        mapper = GpuComputationMapper(host, strategy=UtilizationAllocationStrategy())
        env = mapper.prepare_environment(job_with())
        assert env["CUDA_VISIBLE_DEVICES"] == "1"
        assert "utilisation" in mapper.last_decision().reason

    def test_requested_idle_still_honoured(self, host):
        from repro.core.allocation import UtilizationAllocationStrategy

        strategy = UtilizationAllocationStrategy()
        tool = parse_tool_xml(
            '<tool id="g"><requirements>'
            '<requirement type="compute" version="1">gpu</requirement>'
            "</requirements><command>racon_gpu</command></tool>"
        )
        mapper = GpuComputationMapper(host, strategy=strategy)
        env = mapper.prepare_environment(GalaxyJob(tool=tool))
        assert env["CUDA_VISIBLE_DEVICES"] == "1"

    def test_factory_knows_utilization(self):
        from repro.core.allocation import (
            UtilizationAllocationStrategy,
            strategy_by_name,
        )

        assert isinstance(
            strategy_by_name("utilization"), UtilizationAllocationStrategy
        )
