"""Allocation strategies (paper §IV-C) — including property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core.allocation import (
    MemoryAllocationStrategy,
    PidAllocationStrategy,
    strategy_by_name,
)
from repro.core.gpu_usage import GpuUsageSnapshot


def snapshot(busy: dict[str, int], fb: dict[str, int] | None = None) -> GpuUsageSnapshot:
    """Build a snapshot: busy maps minor id -> process count."""
    snap = GpuUsageSnapshot()
    for gid, count in busy.items():
        snap.all_gpus.append(gid)
        snap.proc_gpu_dict[gid] = [str(1000 + i) for i in range(count)]
        if count == 0:
            snap.available_gpus.append(gid)
        snap.fb_used_mib[gid] = (fb or {}).get(gid, 60 * count)
    return snap


class TestPidStrategy:
    strategy = PidAllocationStrategy()

    def test_requested_idle_device_granted(self):
        decision = self.strategy.select(["1"], snapshot({"0": 0, "1": 0}))
        assert decision.gpu_ids == ("1",)
        assert decision.cuda_visible_devices == "1"

    def test_requested_busy_falls_to_available(self):
        """Paper Case 2: Bonito wants GPU 1 (busy) -> lands on GPU 0."""
        decision = self.strategy.select(["1"], snapshot({"0": 0, "1": 1}))
        assert decision.gpu_ids == ("0",)

    def test_all_busy_scatters_to_all(self):
        """Paper Case 3: both GPUs busy -> processes scattered to both."""
        decision = self.strategy.select(["0"], snapshot({"0": 1, "1": 1}))
        assert decision.gpu_ids == ("0", "1")
        assert decision.cuda_visible_devices == "0,1"

    def test_no_preference_takes_all_available(self):
        decision = self.strategy.select([], snapshot({"0": 0, "1": 0}))
        assert decision.gpu_ids == ("0", "1")

    def test_invalid_requested_id_ignored(self):
        decision = self.strategy.select(["7"], snapshot({"0": 0, "1": 0}))
        assert set(decision.gpu_ids) == {"0", "1"}

    def test_multi_id_request_granted_when_all_idle(self):
        decision = self.strategy.select(["0", "1"], snapshot({"0": 0, "1": 0}))
        assert decision.gpu_ids == ("0", "1")

    def test_multi_id_request_partial_busy_falls_back(self):
        decision = self.strategy.select(["0", "1"], snapshot({"0": 1, "1": 0}))
        assert decision.gpu_ids == ("1",)

    def test_empty_host(self):
        decision = self.strategy.select(["0"], snapshot({}))
        assert decision.is_empty


class TestMemoryStrategy:
    strategy = MemoryAllocationStrategy()

    def test_requested_idle_device_granted(self):
        decision = self.strategy.select(["1"], snapshot({"0": 0, "1": 0}))
        assert decision.gpu_ids == ("1",)

    def test_min_memory_wins_under_contention(self):
        """Paper Case 4: second Bonito lands on the 60 MiB GPU 0, not on
        the fuller GPU 1."""
        snap = snapshot({"0": 1, "1": 1}, fb={"0": 60, "1": 2734})
        decision = self.strategy.select(["1"], snap)
        assert decision.gpu_ids == ("0",)
        assert "60 MiB" in decision.reason

    def test_single_device_selected_never_scatter(self):
        snap = snapshot({"0": 2, "1": 3}, fb={"0": 500, "1": 400})
        decision = self.strategy.select([], snap)
        assert len(decision.gpu_ids) == 1
        assert decision.gpu_ids == ("1",)

    def test_tie_breaks_low_id(self):
        snap = snapshot({"0": 1, "1": 1}, fb={"0": 100, "1": 100})
        assert self.strategy.select([], snap).gpu_ids == ("0",)

    def test_empty_host(self):
        assert self.strategy.select([], snapshot({})).is_empty


class TestFactory:
    def test_by_name(self):
        assert isinstance(strategy_by_name("pid"), PidAllocationStrategy)
        assert isinstance(strategy_by_name("memory"), MemoryAllocationStrategy)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            strategy_by_name("roundrobin")


# ----------------------------------------------------------------------- #
# properties
# ----------------------------------------------------------------------- #
host_state = st.dictionaries(
    keys=st.sampled_from(["0", "1", "2", "3"]),
    values=st.integers(min_value=0, max_value=3),
    min_size=1,
    max_size=4,
)
requests = st.lists(st.sampled_from(["0", "1", "2", "3", "9"]), max_size=3)


@given(busy=host_state, requested=requests)
def test_pid_selection_always_within_host_and_nonempty(busy, requested):
    decision = PidAllocationStrategy().select(requested, snapshot(busy))
    assert decision.gpu_ids  # a host with GPUs always yields a selection
    assert set(decision.gpu_ids) <= set(busy)


@given(busy=host_state, requested=requests)
def test_pid_prefers_idle_devices_when_any_exist(busy, requested):
    snap = snapshot(busy)
    decision = PidAllocationStrategy().select(requested, snap)
    if snap.available_gpus:
        assert set(decision.gpu_ids) <= set(snap.available_gpus)


@given(busy=host_state, requested=requests)
def test_memory_selects_argmin_when_not_requested_idle(busy, requested):
    snap = snapshot(busy)
    decision = MemoryAllocationStrategy().select(requested, snap)
    assert set(decision.gpu_ids) <= set(busy)
    valid_requested = [g for g in requested if g in snap.all_gpus]
    requested_all_idle = valid_requested and all(
        g in snap.available_gpus for g in valid_requested
    )
    if not requested_all_idle:
        (chosen,) = decision.gpu_ids
        minimum = min(snap.fb_used_mib[g] for g in snap.all_gpus)
        assert snap.fb_used_mib[chosen] == minimum


@given(busy=host_state, requested=requests)
def test_both_strategies_honor_fully_idle_requests(busy, requested):
    snap = snapshot(busy)
    valid = [g for g in requested if g in snap.all_gpus]
    if valid and all(g in snap.available_gpus for g in valid):
        for strategy in (PidAllocationStrategy(), MemoryAllocationStrategy()):
            decision = strategy.select(requested, snap)
            assert list(decision.gpu_ids) == valid
