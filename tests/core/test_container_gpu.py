"""Container GPU flag providers (Challenge III)."""

from repro.core.container_gpu import docker_gpu_flag_provider, singularity_nv_provider


class TestDockerFlagProvider:
    def test_enabled(self):
        assert docker_gpu_flag_provider({"GALAXY_GPU_ENABLED": "true"}) == "all"

    def test_disabled(self):
        assert docker_gpu_flag_provider({"GALAXY_GPU_ENABLED": "false"}) is None

    def test_absent_means_disabled(self):
        assert docker_gpu_flag_provider({}) is None

    def test_never_emits_device_ids(self):
        """§IV-C1: --gpus <ids> 'did not work as intended'; only 'all'."""
        env = {"GALAXY_GPU_ENABLED": "true", "CUDA_VISIBLE_DEVICES": "1"}
        assert docker_gpu_flag_provider(env) == "all"


class TestSingularityNvProvider:
    def test_enabled(self):
        assert singularity_nv_provider({"GALAXY_GPU_ENABLED": "true"}) is True

    def test_disabled(self):
        assert singularity_nv_provider({"GALAXY_GPU_ENABLED": "false"}) is False

    def test_absent_means_disabled(self):
        assert singularity_nv_provider({}) is False
