"""Dynamic destination rules (paper §IV-A, Challenge II)."""


from repro.cluster.node import ComputeNode
from repro.core import build_deployment
from repro.core.destination_rules import (
    LOCAL_CPU_DESTINATION,
    LOCAL_GPU_DESTINATION,
    gpu_destination_rule,
)
from repro.galaxy.params import GPU_ENABLED_ENV_VAR
from repro.tools.executors import register_paper_tools


class TestGpuDestinationRule:
    def test_gpu_tool_maps_to_local_gpu(self, deployment):
        job = deployment.app.submit("racon", {"workload": "unit"})
        assert gpu_destination_rule(job, deployment.app) == LOCAL_GPU_DESTINATION
        assert deployment.app.environment[GPU_ENABLED_ENV_VAR] == "true"

    def test_cpu_tool_maps_to_local_cpu(self, deployment):
        job = deployment.app.submit("seqstats", {})
        assert gpu_destination_rule(job, deployment.app) == LOCAL_CPU_DESTINATION
        assert deployment.app.environment[GPU_ENABLED_ENV_VAR] == "false"

    def test_gpu_tool_on_cpu_node_degrades_user_agnostically(self):
        deployment = build_deployment(node=ComputeNode.cpu_only())
        register_paper_tools(deployment.app)
        job = deployment.app.submit("racon", {"workload": "unit"})
        assert gpu_destination_rule(job, deployment.app) == LOCAL_CPU_DESTINATION
        assert deployment.app.environment[GPU_ENABLED_ENV_VAR] == "false"

    def test_rules_registered_in_deployment(self, deployment):
        names = deployment.job_config.rules.names()
        assert "gpu_destination" in names
        assert "docker_destination" in names

    def test_full_dispatch_reaches_gpu_destination(self, deployment):
        job = deployment.run_tool("racon", {"workload": "unit"})
        assert job.metrics.destination_id == "local_gpu"

    def test_full_dispatch_cpu_tool(self, deployment):
        job = deployment.run_tool("seqstats", {})
        assert job.metrics.destination_id == "local_cpu"

    def test_gpu_tool_on_cpu_node_runs_cpu_arm(self):
        """End to end: same wrapper, CPU cluster -> racon (not racon_gpu)."""
        deployment = build_deployment(node=ComputeNode.cpu_only())
        register_paper_tools(deployment.app)
        job = deployment.run_tool("racon", {"threads": 4, "workload": "unit"})
        assert job.command_line.startswith("racon -t 4")
        assert job.state.value == "ok"
