"""Energy accounting over monitor telemetry."""

import pytest

from repro.core.energy import EnergyMeter, power_watts


class TestPowerModel:
    def test_idle_and_limit(self, host):
        device = host.device(0)
        assert power_watts(device, 0.0) == pytest.approx(26.0)
        assert power_watts(device, 100.0) == pytest.approx(149.0)
        assert power_watts(device, 50.0) == pytest.approx((26 + 149) / 2)


class TestEnergyMeter:
    def test_idle_job_draws_idle_power(self, deployment):
        job = deployment.run_tool("seqstats", {"threads": 1})
        meter = EnergyMeter(deployment.monitor)
        report = meter.job_energy(job.job_id)
        # Both idle K80 dies at ~26 W for the 0.5 s run.
        assert report.total_joules == pytest.approx(2 * 26.0 * 0.5, rel=0.05)
        assert report.mean_watts == pytest.approx(52.0, rel=0.05)

    def test_gpu_job_draws_more_than_idle(self, deployment):
        job = deployment.run_tool("racon", {"threads": 4, "workload": "unit"})
        meter = EnergyMeter(deployment.monitor)
        report = meter.job_energy(job.job_id)
        idle_energy = 2 * 26.0 * report.duration_seconds
        assert report.total_joules > idle_energy
        assert report.per_device_joules[0] > report.per_device_joules[1]

    def test_paper_scale_energy_comparison(self, deployment):
        """The extension headline: the ~2x Racon speedup also roughly
        halves the board-level energy of a run."""
        gpu_job = deployment.run_tool("racon", {"threads": 4, "workload": "dataset"})
        meter = EnergyMeter(deployment.monitor)
        report = meter.job_energy(gpu_job.job_id)
        assert report.duration_seconds == pytest.approx(200.0, rel=0.05)
        # Mean draw sits between idle (52 W for two dies) and peak.
        assert 52.0 <= report.mean_watts <= 298.0
        assert report.total_joules > 0

    def test_compare_jobs(self, deployment):
        job_a = deployment.run_tool("racon", {"workload": "unit"})
        job_b = deployment.run_tool("racon", {"workload": "unit"})
        meter = EnergyMeter(deployment.monitor)
        ratio = meter.compare(job_a.job_id, job_b.job_id)
        assert ratio == pytest.approx(1.0, rel=0.2)

    def test_unmonitored_job_raises(self, deployment):
        meter = EnergyMeter(deployment.monitor)
        with pytest.raises(KeyError):
            meter.job_energy(424242)
