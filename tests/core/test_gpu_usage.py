"""get_gpu_usage (paper Pseudocode 1) against live host state."""


from repro.core.gpu_usage import get_gpu_usage, get_gpu_usage_snapshot


class TestGetGpuUsage:
    def test_idle_host_all_available(self, host):
        available, all_gpus = get_gpu_usage(host)
        assert all_gpus == ["0", "1"]
        assert available == ["0", "1"]

    def test_busy_device_excluded(self, host):
        host.launch_process("tool", cuda_visible_devices="0")
        available, all_gpus = get_gpu_usage(host)
        assert all_gpus == ["0", "1"]
        assert available == ["1"]

    def test_fully_busy_host(self, host):
        host.launch_process("a", cuda_visible_devices="0")
        host.launch_process("b", cuda_visible_devices="1")
        available, all_gpus = get_gpu_usage(host)
        assert available == []
        assert all_gpus == ["0", "1"]

    def test_availability_restored_on_exit(self, host):
        proc = host.launch_process("tool", cuda_visible_devices="1")
        host.terminate_process(proc.pid)
        available, _ = get_gpu_usage(host)
        assert available == ["0", "1"]


class TestSnapshot:
    def test_proc_gpu_dict_matches_placement(self, host):
        a = host.launch_process("a", cuda_visible_devices="0")
        b = host.launch_process("b", cuda_visible_devices="0")
        snapshot = get_gpu_usage_snapshot(host)
        assert snapshot.proc_gpu_dict == {"0": [str(a.pid), str(b.pid)], "1": []}

    def test_fb_used_tracks_contexts(self, host):
        host.launch_process("a", cuda_visible_devices="1")
        snapshot = get_gpu_usage_snapshot(host)
        assert snapshot.fb_used_mib == {"0": 0, "1": 60}

    def test_min_memory_gpu(self, host):
        host.launch_process("a", cuda_visible_devices="0")
        snapshot = get_gpu_usage_snapshot(host)
        assert snapshot.min_memory_gpu() == "1"

    def test_min_memory_gpu_ties_low_id(self, host):
        assert get_gpu_usage_snapshot(host).min_memory_gpu() == "0"

    def test_busiest_first(self, host):
        host.launch_process("a", cuda_visible_devices="1")
        host.launch_process("b", cuda_visible_devices="1")
        host.launch_process("c", cuda_visible_devices="0")
        assert get_gpu_usage_snapshot(host).busiest_first() == ["1", "0"]

    def test_multi_device_process_counted_on_each(self, host):
        proc = host.launch_process("wide", cuda_visible_devices="0,1")
        snapshot = get_gpu_usage_snapshot(host)
        assert snapshot.proc_gpu_dict["0"] == [str(proc.pid)]
        assert snapshot.proc_gpu_dict["1"] == [str(proc.pid)]
        assert snapshot.available_gpus == []
