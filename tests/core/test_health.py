"""DeviceHealthTracker: quarantine thresholds, cool-down, snapshot filtering."""

from __future__ import annotations

import pytest

from repro.core.gpu_usage import GpuUsageSnapshot
from repro.core.health import DeviceHealthTracker


def _kinds(tracker, device_id=None):
    return [
        e.kind
        for e in tracker.events
        if device_id is None or e.device_id == device_id
    ]


class TestThresholdQuarantine:
    def test_below_threshold_stays_healthy(self):
        tracker = DeviceHealthTracker(error_threshold=3)
        assert tracker.record_error("0", now=1.0) is False
        assert tracker.record_error("0", now=2.0) is False
        assert not tracker.is_quarantined("0", now=3.0)

    def test_threshold_quarantines(self):
        tracker = DeviceHealthTracker(error_threshold=3)
        tracker.record_error("0", now=1.0)
        tracker.record_error("0", now=2.0)
        assert tracker.record_error("0", now=3.0) is True
        assert tracker.is_quarantined("0", now=3.0)
        assert "quarantine" in _kinds(tracker, "0")

    def test_errors_count_per_device(self):
        tracker = DeviceHealthTracker(error_threshold=2)
        tracker.record_error("0", now=1.0)
        tracker.record_error("1", now=1.5)
        assert not tracker.is_quarantined("0", now=2.0)
        assert not tracker.is_quarantined("1", now=2.0)

    def test_window_expiry_forgets_old_errors(self):
        tracker = DeviceHealthTracker(error_threshold=3, window_s=60.0)
        tracker.record_error("0", now=0.0)
        tracker.record_error("0", now=1.0)
        # The first two errors age out before the next pair arrives.
        assert tracker.record_error("0", now=100.0) is False
        assert tracker.record_error("0", now=101.0) is False
        assert not tracker.is_quarantined("0", now=101.0)

    def test_int_device_ids_are_normalised(self):
        tracker = DeviceHealthTracker(error_threshold=1)
        tracker.record_error(0, now=1.0)
        assert tracker.is_quarantined("0", now=1.0)
        assert tracker.is_quarantined(0, now=1.0)


class TestDeviceLost:
    def test_quarantines_immediately(self):
        tracker = DeviceHealthTracker(error_threshold=3)
        tracker.record_device_lost("1", now=5.0, note="XID 79")
        assert tracker.is_quarantined("1", now=5.0)
        assert _kinds(tracker, "1") == ["device_lost", "quarantine"]


class TestCooldown:
    def test_readmit_after_cooldown(self):
        tracker = DeviceHealthTracker(cooldown_s=120.0)
        tracker.record_device_lost("0", now=10.0)
        assert tracker.is_quarantined("0", now=129.9)
        assert not tracker.is_quarantined("0", now=130.0)
        assert "readmit" in _kinds(tracker, "0")

    def test_errors_while_quarantined_renew_cooldown(self):
        tracker = DeviceHealthTracker(error_threshold=3, cooldown_s=120.0)
        tracker.record_device_lost("0", now=0.0)
        # A single error at t=100 renews the sentence to t=220.
        assert tracker.record_error("0", now=100.0) is False  # already in
        assert tracker.is_quarantined("0", now=150.0)
        assert tracker.is_quarantined("0", now=219.9)
        assert not tracker.is_quarantined("0", now=220.0)

    def test_readmit_is_lazy_and_recorded_once(self):
        tracker = DeviceHealthTracker(cooldown_s=10.0)
        tracker.record_device_lost("0", now=0.0)
        assert not tracker.is_quarantined("0", now=50.0)
        assert not tracker.is_quarantined("0", now=51.0)
        assert _kinds(tracker, "0").count("readmit") == 1


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"error_threshold": 0},
        {"window_s": 0.0},
        {"cooldown_s": -1.0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DeviceHealthTracker(**kwargs)


class TestSnapshotFiltering:
    def _snapshot(self):
        return GpuUsageSnapshot(
            available_gpus=["0"],
            all_gpus=["0", "1"],
            proc_gpu_dict={"1": ["4242"]},
            fb_used_mib={"0": 0, "1": 2048},
            fb_free_mib={"0": 11441, "1": 9393},
            gpu_utilization={"0": 0, "1": 63},
        )

    def test_quarantined_device_disappears_everywhere(self):
        tracker = DeviceHealthTracker()
        tracker.record_device_lost("1", now=0.0)
        filtered = tracker.filter_snapshot(self._snapshot(), now=1.0)
        assert filtered.all_gpus == ["0"]
        assert filtered.available_gpus == ["0"]
        assert "1" not in filtered.proc_gpu_dict
        assert "1" not in filtered.fb_used_mib
        assert "1" not in filtered.fb_free_mib
        assert "1" not in filtered.gpu_utilization

    def test_no_quarantine_returns_snapshot_unchanged(self):
        tracker = DeviceHealthTracker()
        snapshot = self._snapshot()
        assert tracker.filter_snapshot(snapshot, now=1.0) is snapshot

    def test_quarantined_ids_sorted(self):
        tracker = DeviceHealthTracker()
        tracker.record_device_lost("3", now=0.0)
        tracker.record_device_lost("1", now=0.0)
        assert tracker.quarantined_ids(now=1.0) == ["1", "3"]
