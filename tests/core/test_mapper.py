"""GpuComputationMapper — the paper's Pseudocode 2 logic."""


from repro.core.allocation import MemoryAllocationStrategy
from repro.core.mapper import GpuComputationMapper
from repro.galaxy.job import GalaxyJob
from repro.galaxy.tool_xml import parse_tool_xml


def gpu_tool(version="0"):
    attr = f' version="{version}"' if version else ""
    return parse_tool_xml(
        f'<tool id="g"><requirements>'
        f'<requirement type="compute"{attr}>gpu</requirement>'
        f"</requirements><command>racon_gpu</command></tool>"
    )


CPU_TOOL = parse_tool_xml('<tool id="c"><command>racon</command></tool>')


class TestPrepareEnvironment:
    def test_gpu_tool_on_gpu_host(self, host):
        mapper = GpuComputationMapper(host)
        env = mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))
        assert env["GALAXY_GPU_ENABLED"] == "true"
        assert env["CUDA_VISIBLE_DEVICES"] == "0"

    def test_cpu_tool_stays_cpu(self, host):
        mapper = GpuComputationMapper(host)
        env = mapper.prepare_environment(GalaxyJob(tool=CPU_TOOL))
        assert env == {"GALAXY_GPU_ENABLED": "false"}

    def test_gpu_tool_without_host_degrades(self):
        mapper = GpuComputationMapper(host=None)
        env = mapper.prepare_environment(GalaxyJob(tool=gpu_tool()))
        assert env["GALAXY_GPU_ENABLED"] == "false"
        assert "CUDA_VISIBLE_DEVICES" not in env

    def test_busy_requested_device_redirected(self, host):
        host.launch_process("other", cuda_visible_devices="0")
        mapper = GpuComputationMapper(host)
        env = mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))
        assert env["CUDA_VISIBLE_DEVICES"] == "1"

    def test_memory_strategy_pluggable(self, host):
        host.launch_process("a", cuda_visible_devices="0")
        host.launch_process("b", cuda_visible_devices="1")
        host.device(1).alloc(2 * 1024**3, pid=1)
        mapper = GpuComputationMapper(host, strategy=MemoryAllocationStrategy())
        env = mapper.prepare_environment(GalaxyJob(tool=gpu_tool("1")))
        assert env["CUDA_VISIBLE_DEVICES"] == "0"

    def test_no_gpu_ids_preference_exposes_available(self, host):
        mapper = GpuComputationMapper(host)
        env = mapper.prepare_environment(GalaxyJob(tool=gpu_tool(version="")))
        assert env["CUDA_VISIBLE_DEVICES"] == "0,1"


class TestAuditTrail:
    def test_history_records_decisions(self, host):
        mapper = GpuComputationMapper(host)
        mapper.prepare_environment(GalaxyJob(tool=gpu_tool("1")))
        mapper.prepare_environment(GalaxyJob(tool=CPU_TOOL))
        assert len(mapper.history) == 2
        assert mapper.history[0].gpu_enabled
        assert mapper.history[0].requested_ids == ["1"]
        assert not mapper.history[1].gpu_enabled
        assert mapper.history[1].decision is None

    def test_last_decision_skips_cpu_jobs(self, host):
        mapper = GpuComputationMapper(host)
        mapper.prepare_environment(GalaxyJob(tool=gpu_tool("1")))
        mapper.prepare_environment(GalaxyJob(tool=CPU_TOOL))
        assert mapper.last_decision().gpu_ids == ("1",)

    def test_last_decision_none_initially(self, host):
        assert GpuComputationMapper(host).last_decision() is None

    def test_gpu_count_via_nvml(self, host):
        assert GpuComputationMapper(host).gpu_count() == 2
        assert GpuComputationMapper(None).gpu_count() == 0
