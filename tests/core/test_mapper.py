"""GpuComputationMapper — the paper's Pseudocode 2 logic."""


import pytest

from repro.core.allocation import MemoryAllocationStrategy
from repro.core.mapper import GpuComputationMapper
from repro.galaxy.job import GalaxyJob
from repro.galaxy.tool_xml import parse_tool_xml


def gpu_tool(version="0"):
    attr = f' version="{version}"' if version else ""
    return parse_tool_xml(
        f'<tool id="g"><requirements>'
        f'<requirement type="compute"{attr}>gpu</requirement>'
        f"</requirements><command>racon_gpu</command></tool>"
    )


CPU_TOOL = parse_tool_xml('<tool id="c"><command>racon</command></tool>')


class TestPrepareEnvironment:
    def test_gpu_tool_on_gpu_host(self, host):
        mapper = GpuComputationMapper(host)
        env = mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))
        assert env["GALAXY_GPU_ENABLED"] == "true"
        assert env["CUDA_VISIBLE_DEVICES"] == "0"

    def test_cpu_tool_stays_cpu(self, host):
        mapper = GpuComputationMapper(host)
        env = mapper.prepare_environment(GalaxyJob(tool=CPU_TOOL))
        assert env == {"GALAXY_GPU_ENABLED": "false"}

    def test_gpu_tool_without_host_degrades(self):
        mapper = GpuComputationMapper(host=None)
        env = mapper.prepare_environment(GalaxyJob(tool=gpu_tool()))
        assert env["GALAXY_GPU_ENABLED"] == "false"
        assert "CUDA_VISIBLE_DEVICES" not in env

    def test_busy_requested_device_redirected(self, host):
        host.launch_process("other", cuda_visible_devices="0")
        mapper = GpuComputationMapper(host)
        env = mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))
        assert env["CUDA_VISIBLE_DEVICES"] == "1"

    def test_memory_strategy_pluggable(self, host):
        host.launch_process("a", cuda_visible_devices="0")
        host.launch_process("b", cuda_visible_devices="1")
        host.device(1).alloc(2 * 1024**3, pid=1)
        mapper = GpuComputationMapper(host, strategy=MemoryAllocationStrategy())
        env = mapper.prepare_environment(GalaxyJob(tool=gpu_tool("1")))
        assert env["CUDA_VISIBLE_DEVICES"] == "0"

    def test_no_gpu_ids_preference_exposes_available(self, host):
        mapper = GpuComputationMapper(host)
        env = mapper.prepare_environment(GalaxyJob(tool=gpu_tool(version="")))
        assert env["CUDA_VISIBLE_DEVICES"] == "0,1"


class TestAuditTrail:
    def test_history_records_decisions(self, host):
        mapper = GpuComputationMapper(host)
        mapper.prepare_environment(GalaxyJob(tool=gpu_tool("1")))
        mapper.prepare_environment(GalaxyJob(tool=CPU_TOOL))
        assert len(mapper.history) == 2
        assert mapper.history[0].gpu_enabled
        assert mapper.history[0].requested_ids == ["1"]
        assert not mapper.history[1].gpu_enabled
        assert mapper.history[1].decision is None

    def test_last_decision_skips_cpu_jobs(self, host):
        mapper = GpuComputationMapper(host)
        mapper.prepare_environment(GalaxyJob(tool=gpu_tool("1")))
        mapper.prepare_environment(GalaxyJob(tool=CPU_TOOL))
        assert mapper.last_decision().gpu_ids == ("1",)

    def test_last_decision_none_initially(self, host):
        assert GpuComputationMapper(host).last_decision() is None

    def test_gpu_count_via_nvml(self, host):
        assert GpuComputationMapper(host).gpu_count() == 2
        assert GpuComputationMapper(None).gpu_count() == 0


class TestSnapshotCache:
    def test_same_instant_burst_costs_one_probe(self, host):
        mapper = GpuComputationMapper(host)
        envs = [
            mapper.prepare_environment(GalaxyJob(tool=gpu_tool(version="")))
            for _ in range(20)
        ]
        assert mapper.snapshot_probes == 1
        assert mapper.snapshot_cache_hits == 19
        assert all(env["CUDA_VISIBLE_DEVICES"] == "0,1" for env in envs)

    def test_burst_decisions_match_uncached_mapper(self, host):
        from repro.gpusim.host import make_k80_host

        cached = GpuComputationMapper(host)
        uncached = GpuComputationMapper(make_k80_host(), cache_snapshots=False)
        for requested in ("0", "1", "", "0", "1"):
            tool = gpu_tool(version=requested)
            assert cached.prepare_environment(
                GalaxyJob(tool=tool)
            ) == uncached.prepare_environment(GalaxyJob(tool=tool))
        assert uncached.snapshot_probes == 5
        assert uncached.snapshot_cache_hits == 0
        assert cached.snapshot_probes == 1

    def test_cache_bypass_knob(self, host):
        mapper = GpuComputationMapper(host, cache_snapshots=False)
        for _ in range(3):
            mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))
        assert mapper.snapshot_probes == 3
        assert mapper.snapshot_cache_hits == 0

    def test_clock_advance_invalidates(self, host):
        mapper = GpuComputationMapper(host)
        mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))
        host.clock.advance(1.0)
        mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))
        assert mapper.snapshot_probes == 2

    def test_memory_alloc_and_free_invalidate(self, host):
        mapper = GpuComputationMapper(host)
        mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))
        allocation = host.device(0).alloc(512 * 1024 * 1024, pid=4242)
        mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))
        assert mapper.snapshot_probes == 2
        host.device(0).free(allocation)
        mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))
        assert mapper.snapshot_probes == 3

    def test_process_launch_invalidates_and_redirects(self, host):
        """The cached snapshot must not hide a process that appeared
        between two same-instant submissions."""
        mapper = GpuComputationMapper(host)
        env_before = mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))
        assert env_before["CUDA_VISIBLE_DEVICES"] == "0"
        host.launch_process("other", cuda_visible_devices="0")
        env_after = mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))
        assert mapper.snapshot_probes == 2
        assert env_after["CUDA_VISIBLE_DEVICES"] == "1"

    def test_injected_device_loss_invalidates(self, host):
        mapper = GpuComputationMapper(host)
        env = mapper.prepare_environment(GalaxyJob(tool=gpu_tool(version="")))
        assert env["CUDA_VISIBLE_DEVICES"] == "0,1"
        host.device(1).mark_failed(now=host.clock.now, xid=79)
        env = mapper.prepare_environment(GalaxyJob(tool=gpu_tool(version="")))
        assert mapper.snapshot_probes == 2
        assert "1" not in env["CUDA_VISIBLE_DEVICES"].split(",")

    def test_pending_nvml_flake_invalidates(self, host):
        """An injected-but-unconsumed flake must bust the cache: the next
        probe has to actually hit the flaky NVML surface."""
        from repro.gpusim.errors import NVMLError

        mapper = GpuComputationMapper(host)
        mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))
        host.faults.inject_nvml_error(NVMLError.NVML_ERROR_TIMEOUT)
        with pytest.raises(NVMLError):
            mapper.prepare_environment(GalaxyJob(tool=gpu_tool("0")))

    def test_degraded_accounting_identical_with_and_without_cache(self):
        """Under NVML flakes the resilient mapper's degradation behaviour
        (which jobs fall to CPU, how many queries were absorbed) must be
        byte-identical whether or not the cache is on."""
        from repro.core.retry import BackoffPolicy
        from repro.gpusim.errors import NVMLError
        from repro.gpusim.host import make_k80_host

        outcomes = []
        for cache in (True, False):
            host = make_k80_host()
            mapper = GpuComputationMapper(
                host,
                retry=BackoffPolicy(max_attempts=1),
                cache_snapshots=cache,
            )
            host.faults.inject_nvml_error(NVMLError.NVML_ERROR_TIMEOUT)
            envs = [
                mapper.prepare_environment(GalaxyJob(tool=gpu_tool(version="")))
                for _ in range(4)
            ]
            outcomes.append(
                (
                    [env["GALAXY_GPU_ENABLED"] for env in envs],
                    mapper.degraded_queries,
                    [record.gpu_enabled for record in mapper.history],
                )
            )
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][1] == 1  # exactly the injected flake was absorbed
