"""Batched mapping: probe amortisation and per-job-path parity."""

import pytest

from repro.core.mapper import GpuComputationMapper
from repro.galaxy.job import GalaxyJob
from repro.galaxy.tool_xml import parse_tool_xml
from repro.gpusim.host import make_k80_host

GPU_TOOL_XML = (
    '<tool id="batch_gpu"><requirements>'
    '<requirement type="compute">gpu</requirement>'
    "</requirements><command>racon_gpu</command></tool>"
)
CPU_TOOL_XML = '<tool id="batch_cpu"><command>minimap2</command></tool>'


def gpu_jobs(count):
    tool = parse_tool_xml(GPU_TOOL_XML)
    return [GalaxyJob(tool=tool) for _ in range(count)]


class TestProbeAmortisation:
    def test_batch_probes_at_least_10x_fewer_than_per_job(self):
        """The ISSUE's acceptance counter: one batch of N same-instant
        jobs costs a single probe where the uncached per-job loop costs
        N — asserted on the mapper's own probe counters."""
        jobs = 100

        perjob = GpuComputationMapper(
            make_k80_host(boards=1), cache_snapshots=False
        )
        for job in gpu_jobs(jobs):
            perjob.prepare_environment(job)

        batched = GpuComputationMapper(
            make_k80_host(boards=1), cache_snapshots=False
        )
        batched.prepare_environment_batch(gpu_jobs(jobs))

        assert perjob.snapshot_probes == jobs
        assert batched.snapshot_probes == 1
        assert perjob.snapshot_probes >= 10 * batched.snapshot_probes

    def test_batch_counters_track_batches_and_jobs(self):
        mapper = GpuComputationMapper(make_k80_host(boards=1))
        mapper.prepare_environment_batch(gpu_jobs(5))
        mapper.prepare_environment_batch(gpu_jobs(3))
        assert mapper.batches_mapped == 2
        assert mapper.batched_jobs_mapped == 8

    def test_empty_batch_is_free(self):
        mapper = GpuComputationMapper(make_k80_host(boards=1))
        assert mapper.prepare_environment_batch([]) == []
        assert mapper.batches_mapped == 0
        assert mapper.snapshot_probes == 0


class TestBatchParity:
    def test_batch_envs_match_per_job_envs(self):
        """Same jobs, same instant: batched decisions must be exactly
        the per-job decisions (env dicts and history records)."""
        jobs = 32
        perjob = GpuComputationMapper(make_k80_host(boards=1))
        batched = GpuComputationMapper(make_k80_host(boards=1))
        expected = [perjob.prepare_environment(j) for j in gpu_jobs(jobs)]
        actual = batched.prepare_environment_batch(gpu_jobs(jobs))
        assert actual == expected
        assert [
            (r.tool_id, r.gpu_enabled, r.requested_ids)
            for r in batched.history
        ] == [
            (r.tool_id, r.gpu_enabled, r.requested_ids)
            for r in perjob.history
        ]

    def test_mixed_batch_handles_cpu_tools(self):
        mapper = GpuComputationMapper(make_k80_host(boards=1))
        cpu_tool = parse_tool_xml(CPU_TOOL_XML)
        batch = gpu_jobs(2) + [GalaxyJob(tool=cpu_tool)] + gpu_jobs(1)
        envs = mapper.prepare_environment_batch(batch)
        assert len(envs) == 4
        assert envs[2]["GALAXY_GPU_ENABLED"] == "false"
        assert envs[0]["GALAXY_GPU_ENABLED"] == "true"
        # CPU-only jobs must not trigger a probe on their own
        assert mapper.snapshot_probes == 1

    def test_gpuless_host_degrades_whole_batch(self):
        mapper = GpuComputationMapper(None)
        envs = mapper.prepare_environment_batch(gpu_jobs(4))
        assert all(env["GALAXY_GPU_ENABLED"] == "false" for env in envs)

    def test_decision_counters_match_per_job_path(self):
        jobs = 16
        perjob = GpuComputationMapper(make_k80_host(boards=1))
        batched = GpuComputationMapper(make_k80_host(boards=1))
        for job in gpu_jobs(jobs):
            perjob.prepare_environment(job)
        batched.prepare_environment_batch(gpu_jobs(jobs))
        name = "gyan_mapper_decisions_total"
        strategy = perjob.strategy.name
        assert perjob.metrics_registry.value(
            name, strategy=strategy, outcome="gpu"
        ) == batched.metrics_registry.value(
            name, strategy=strategy, outcome="gpu"
        )
