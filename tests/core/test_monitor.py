"""GPU hardware usage monitor (paper §V-C)."""

import pytest

from repro.core.monitor import GPUUsageMonitor
from repro.galaxy.job import GalaxyJob
from repro.galaxy.tool_xml import parse_tool_xml
from repro.gpusim.kernels import KernelLaunch, KernelTimingModel


def make_job():
    return GalaxyJob(tool=parse_tool_xml('<tool id="t"><command>x</command></tool>'))


class TestSampling:
    def test_one_sample_per_second_per_device(self, host):
        monitor = GPUUsageMonitor(host, interval=1.0)
        job = make_job()
        monitor.start(job)
        host.clock.advance(5.0)
        monitor.stop(job)
        session = monitor.session_for(job.job_id)
        # start sample + 5 ticks + stop sample, for each of 2 devices
        times = sorted({s.time for s in session.samples})
        assert times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert len(session.samples) == 6 * 2

    def test_timestamps_strictly_increasing_per_device(self, host):
        monitor = GPUUsageMonitor(host)
        job = make_job()
        monitor.start(job)
        host.clock.advance(7.3)
        monitor.stop(job)
        for device_index in (0, 1):
            stamps = [
                s.time
                for s in monitor.session_for(job.job_id).samples
                if s.device_index == device_index
            ]
            assert stamps == sorted(stamps)
            assert len(set(stamps)) == len(stamps)

    def test_observes_kernel_utilization_mid_run(self, host):
        """Samples taken while a (simulated) kernel is executing see the
        device's utilisation, the monitor's whole purpose."""
        monitor = GPUUsageMonitor(host)
        job = make_job()
        monitor.start(job)
        timing = KernelTimingModel(host, host.device(0))
        timing.launch(
            KernelLaunch("big", 60, 256, flops=1e9, bytes_read=6e11, bytes_written=0)
        )
        monitor.stop(job)
        samples = [
            s
            for s in monitor.session_for(job.job_id).samples
            if s.device_index == 0 and s.gpu_utilization > 0
        ]
        assert samples, "monitor never saw the kernel running"

    def test_stop_idempotent(self, host):
        monitor = GPUUsageMonitor(host)
        job = make_job()
        monitor.start(job)
        host.clock.advance(2.0)
        monitor.stop(job)
        count = len(monitor.session_for(job.job_id).samples)
        monitor.stop(job)
        assert len(monitor.session_for(job.job_id).samples) == count

    def test_sampling_stops_after_job(self, host):
        monitor = GPUUsageMonitor(host)
        job = make_job()
        monitor.start(job)
        host.clock.advance(2.0)
        monitor.stop(job)
        count = len(monitor.session_for(job.job_id).samples)
        host.clock.advance(10.0)
        assert len(monitor.session_for(job.job_id).samples) == count

    def test_concurrent_jobs_sampled_independently(self, host):
        monitor = GPUUsageMonitor(host)
        job_a, job_b = make_job(), make_job()
        monitor.start(job_a)
        host.clock.advance(2.0)
        monitor.start(job_b)
        host.clock.advance(2.0)
        monitor.stop(job_a)
        monitor.stop(job_b)
        a_samples = monitor.session_for(job_a.job_id).samples
        b_samples = monitor.session_for(job_b.job_id).samples
        assert min(s.time for s in a_samples) == 0.0
        assert min(s.time for s in b_samples) == 2.0

    def test_invalid_interval(self, host):
        with pytest.raises(ValueError):
            GPUUsageMonitor(host, interval=0.0)


class TestPostProcessing:
    def test_statistics_min_max_avg(self, host):
        monitor = GPUUsageMonitor(host)
        job = make_job()
        monitor.start(job)
        host.device(0).sm_utilization = 50.0
        host.clock.advance(1.0)
        host.device(0).sm_utilization = 100.0
        host.clock.advance(1.0)
        monitor.stop(job)
        stats = {s.device_index: s for s in monitor.session_for(job.job_id).statistics}
        assert stats[0].gpu_util_min == 0.0
        assert stats[0].gpu_util_max == 100.0
        assert 0 < stats[0].gpu_util_avg < 100.0
        assert stats[1].gpu_util_max == 0.0

    def test_csv_output_shape(self, host):
        monitor = GPUUsageMonitor(host)
        job = make_job()
        monitor.start(job)
        host.clock.advance(3.0)
        monitor.stop(job)
        csv = monitor.to_csv(job.job_id)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("time,device,gpu_utilization")
        assert len(lines) == 1 + len(monitor.session_for(job.job_id).samples)
        assert lines[1].split(",")[1] in ("0", "1")

    def test_statistics_report_mentions_devices(self, host):
        monitor = GPUUsageMonitor(host)
        job = make_job()
        monitor.start(job)
        host.clock.advance(1.0)
        monitor.stop(job)
        report = monitor.statistics_report(job.job_id)
        assert "GPU 0" in report and "GPU 1" in report


class TestStopBoundaries:
    def test_stop_at_exact_tick_boundary_takes_no_duplicate(self, host):
        """Stopping at an integer second must not record that instant
        twice: the per-second tick at t=5 already sampled it."""
        monitor = GPUUsageMonitor(host, interval=1.0)
        job = make_job()
        monitor.start(job)
        host.clock.advance(5.0)
        monitor.stop(job)
        session = monitor.session_for(job.job_id)
        for device_index in (0, 1):
            stamps = [
                s.time for s in session.samples if s.device_index == device_index
            ]
            assert stamps == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
            assert len(set(stamps)) == len(stamps)

    def test_stop_mid_interval_records_final_partial_sample(self, host):
        monitor = GPUUsageMonitor(host, interval=1.0)
        job = make_job()
        monitor.start(job)
        host.clock.advance(2.5)
        monitor.stop(job)
        stamps = [
            s.time
            for s in monitor.session_for(job.job_id).samples
            if s.device_index == 0
        ]
        assert stamps == [0.0, 1.0, 2.0, 2.5]

    def test_pending_tick_never_appends_after_stop(self, host):
        """A stopped session's next due tick must not land even when the
        clock advances exactly onto it."""
        monitor = GPUUsageMonitor(host, interval=1.0)
        job = make_job()
        monitor.start(job)
        host.clock.advance(2.0)
        monitor.stop(job)
        count = len(monitor.session_for(job.job_id).samples)
        host.clock.advance(1.0)  # exactly the tick that was due at t=3
        host.clock.advance(7.0)
        assert len(monitor.session_for(job.job_id).samples) == count

    def test_stop_while_another_session_keeps_ticking(self, host):
        monitor = GPUUsageMonitor(host, interval=1.0)
        job_a, job_b = make_job(), make_job()
        monitor.start(job_a)
        monitor.start(job_b)
        host.clock.advance(2.0)
        monitor.stop(job_a)
        frozen = len(monitor.session_for(job_a.job_id).samples)
        host.clock.advance(3.0)
        assert len(monitor.session_for(job_a.job_id).samples) == frozen
        b_stamps = {
            s.time for s in monitor.session_for(job_b.job_id).samples
        }
        assert 5.0 in b_stamps


class TestSparkline:
    def test_width_plus_one_buckets_cover_everything(self):
        """len == width + 1: integer bucketing must still tile the input
        exactly — every value lands in exactly one bucket."""
        width = 32
        values = [0.0] * width + [100.0]
        line = GPUUsageMonitor._sparkline(values, width=width)
        assert len(line) == width
        assert line[-1] == "@"  # the extra max value was not dropped
        assert set(line[:-1]) == {" "}

    def test_much_longer_than_width_keeps_the_peak(self):
        width = 32
        values = [0.0] * 9_999 + [100.0]
        line = GPUUsageMonitor._sparkline(values, width=width)
        assert len(line) == width
        assert line[-1] == "@"
        peak_anywhere = [0.0] * 5_000 + [100.0] + [0.0] * 4_999
        assert "@" in GPUUsageMonitor._sparkline(peak_anywhere, width=width)

    def test_short_input_rendered_verbatim(self):
        line = GPUUsageMonitor._sparkline([0.0, 50.0, 100.0], width=32)
        assert line == " =@"

    def test_empty_input(self):
        assert GPUUsageMonitor._sparkline([], width=32) == ""

    def test_bucket_maxima_are_exact_at_awkward_strides(self):
        """Place one spike per bucket at stride len/width = 7.03125 and
        check each output column sees its spike (the float-stride code
        path this replaces could skip or double-count boundaries)."""
        width = 32
        count = 225  # not a multiple of width
        values = [0.0] * count
        for i in range(width):
            lo, hi = (i * count) // width, ((i + 1) * count) // width
            values[lo] = 100.0
            assert hi > lo  # every bucket non-empty
        line = GPUUsageMonitor._sparkline(values, width=width)
        assert line == "@" * width


def _naive_csv(session):
    """The reference per-row renderer the run-aware writer must match."""
    out = [
        "time,device,gpu_utilization,memory_utilization,fb_used_mib,"
        "pcie_generation\n"
    ]
    for s in session.samples:
        out.append(
            f"{s.time:.3f},{s.device_index},{s.gpu_utilization:.1f},"
            f"{s.memory_utilization:.1f},{s.fb_used_mib},{s.pcie_generation}\n"
        )
    return "".join(out)


class TestCsvStreaming:
    """The buffered run-aware CSV writer (see docs/performance.md)."""

    def _varied_session(self, host, seconds=40):
        """A session whose device values change mid-run (several runs)."""
        monitor = GPUUsageMonitor(host, interval=1.0)
        job = make_job()
        monitor.start(job)

        def flip(now):
            phase = int(now) // 10
            host.devices[0].sm_utilization = float((phase * 17) % 101)
            host.devices[1].sm_utilization = float((phase * 31) % 101)

        for t in range(10, seconds, 10):
            host.clock.call_at(float(t), flip)
        host.clock.advance(float(seconds))
        monitor.stop(job)
        return monitor, job

    def test_byte_identical_to_naive_rendering(self, host):
        monitor, job = self._varied_session(host)
        session = monitor.session_for(job.job_id)
        assert monitor.to_csv(job.job_id) == _naive_csv(session)

    def test_write_csv_streams_the_same_bytes(self, host):
        import io

        monitor, job = self._varied_session(host)
        sink = io.StringIO()
        written = monitor.write_csv(job.job_id, sink)
        document = monitor.to_csv(job.job_id)
        assert sink.getvalue() == document
        assert written == len(document)

    def test_run_lengths_tile_every_series(self, host):
        monitor, job = self._varied_session(host)
        session = monitor.session_for(job.job_id)
        for series in session.series:
            assert sum(series.run_lens) == len(series)
            # The flips above guarantee more than one run, so the
            # run-compression actually exercised the boundary logic.
            assert len(series.run_lens) > 1

    def test_dump_writes_streamed_csv(self, host, tmp_path):
        monitor, job = self._varied_session(host)
        paths = monitor.dump(job.job_id, tmp_path)
        csv_path = next(p for p in paths if p.endswith(".csv"))
        with open(csv_path, encoding="utf-8") as fh:
            assert fh.read() == monitor.to_csv(job.job_id)

    def test_empty_session_renders_header_only(self, host):
        monitor = GPUUsageMonitor(host)
        job = make_job()
        monitor.start(job)
        monitor.stop(job)
        csv = monitor.to_csv(job.job_id)
        lines = csv.splitlines()
        assert lines[0].startswith("time,device,")
        # start+stop at the same instant still records one tick.
        assert len(lines) == 1 + len(monitor.session_for(job.job_id).samples)

    def test_chunking_boundary_exact(self, host):
        """A session crossing the chunk size still renders losslessly."""
        from repro.core import monitor as monitor_mod

        original = monitor_mod._CSV_CHUNK_ROWS
        monitor_mod._CSV_CHUNK_ROWS = 8
        try:
            monitor, job = self._varied_session(host, seconds=37)
            session = monitor.session_for(job.job_id)
            assert monitor.to_csv(job.job_id) == _naive_csv(session)
        finally:
            monitor_mod._CSV_CHUNK_ROWS = original
