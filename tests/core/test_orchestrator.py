"""Deployment façade wiring."""

import pytest

from repro.core import build_deployment
from repro.core.allocation import MemoryAllocationStrategy, PidAllocationStrategy
from repro.galaxy.errors import JobConfError


class TestBuildDeployment:
    def test_default_is_paper_testbed(self, deployment):
        assert deployment.node.resources.cpu_slots == 48
        assert deployment.gpu_host.device_count == 2
        assert deployment.clock is deployment.node.clock

    def test_runners_registered(self, deployment):
        assert set(deployment.app.runners) == {"local", "docker", "singularity"}

    def test_monitor_optional(self):
        assert build_deployment(with_monitor=False).monitor is None

    def test_monitor_attached_to_runners(self, deployment):
        assert deployment.local_runner.usage_monitor is deployment.monitor
        assert deployment.docker_runner.usage_monitor is deployment.monitor

    def test_allocation_strategy_selection(self):
        dep = build_deployment(allocation_strategy="memory")
        assert isinstance(dep.mapper.strategy, MemoryAllocationStrategy)

    def test_set_allocation_strategy_by_name_and_object(self, deployment):
        deployment.set_allocation_strategy("memory")
        assert isinstance(deployment.mapper.strategy, MemoryAllocationStrategy)
        deployment.set_allocation_strategy(PidAllocationStrategy())
        assert isinstance(deployment.mapper.strategy, PidAllocationStrategy)

    def test_route_tool_validates_destination(self, deployment):
        with pytest.raises(JobConfError):
            deployment.route_tool_to("racon", "nowhere")

    def test_shared_clock_across_layers(self, deployment):
        assert deployment.docker_runtime.clock is deployment.clock
        assert deployment.singularity_runtime.clock is deployment.clock
        assert deployment.gpu_host.clock is deployment.clock

    def test_nvidia_docker_toggle(self):
        dep = build_deployment(nvidia_docker_installed=False)
        assert not dep.docker_runtime.nvidia_docker_installed
