"""Backoff policies and retry_call — table-driven schedules, clock use."""

from __future__ import annotations

import pytest

from repro.core.retry import (
    DEFAULT_LAUNCH_RETRY,
    DEFAULT_NVML_RETRY,
    BackoffPolicy,
    is_transient_nvml_error,
    retry_call,
)
from repro.gpusim.clock import VirtualClock
from repro.gpusim.errors import NVMLError


class TestBackoffSchedule:
    """The schedule is the contract: exact delays, table-driven."""

    SCHEDULES = [
        (BackoffPolicy(max_attempts=4, base_delay_s=0.25, multiplier=2.0,
                       max_delay_s=8.0),
         [0.25, 0.5, 1.0]),
        (BackoffPolicy(max_attempts=3, base_delay_s=1.0, multiplier=2.0,
                       max_delay_s=8.0),
         [1.0, 2.0]),
        (BackoffPolicy(max_attempts=6, base_delay_s=1.0, multiplier=3.0,
                       max_delay_s=10.0),
         [1.0, 3.0, 9.0, 10.0, 10.0]),  # capped at max_delay_s
        (BackoffPolicy(max_attempts=1, base_delay_s=0.5),
         []),  # a single attempt never waits
        (BackoffPolicy(max_attempts=4, base_delay_s=0.0, max_delay_s=0.0),
         [0.0, 0.0, 0.0]),  # immediate retries are legal
        (BackoffPolicy(max_attempts=5, base_delay_s=2.0, multiplier=1.0,
                       max_delay_s=2.0),
         [2.0, 2.0, 2.0, 2.0]),  # constant backoff
    ]

    @pytest.mark.parametrize("policy,expected", SCHEDULES,
                             ids=[f"case{i}" for i in range(len(SCHEDULES))])
    def test_schedule(self, policy, expected):
        assert policy.schedule() == pytest.approx(expected)

    def test_defaults_documented_in_docstrings(self):
        assert DEFAULT_NVML_RETRY.schedule() == pytest.approx([0.25, 0.5, 1.0])
        assert DEFAULT_LAUNCH_RETRY.schedule() == pytest.approx([1.0, 2.0])

    def test_delay_for_is_one_based(self):
        with pytest.raises(ValueError):
            BackoffPolicy().delay_for(0)

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay_s": -1.0},
        {"multiplier": 0.5},
        {"base_delay_s": 4.0, "max_delay_s": 2.0},
    ])
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)


class TestRetryCall:
    def test_success_first_try_never_touches_clock(self):
        clock = VirtualClock()
        assert retry_call(clock, BackoffPolicy(), lambda: 42) == 42
        assert clock.now == 0.0

    def test_transient_failures_advance_virtual_clock(self):
        clock = VirtualClock()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise NVMLError(NVMLError.NVML_ERROR_TIMEOUT, "flake")
            return "ok"

        policy = BackoffPolicy(max_attempts=4, base_delay_s=0.25)
        assert retry_call(clock, policy, flaky) == "ok"
        assert calls["n"] == 3
        # Two retries: 0.25 + 0.5 of *virtual* time, no wall time.
        assert clock.now == pytest.approx(0.75)

    def test_budget_exhaustion_reraises_last(self):
        clock = VirtualClock()

        def always_fails():
            raise NVMLError(NVMLError.NVML_ERROR_UNKNOWN, "still down")

        policy = BackoffPolicy(max_attempts=3, base_delay_s=1.0)
        with pytest.raises(NVMLError, match="still down"):
            retry_call(clock, policy, always_fails)
        assert clock.now == pytest.approx(3.0)  # 1.0 + 2.0, no wait after last

    def test_non_retryable_propagates_immediately(self):
        clock = VirtualClock()
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise NVMLError(NVMLError.NVML_ERROR_UNINITIALIZED, "not init")

        with pytest.raises(NVMLError):
            retry_call(clock, BackoffPolicy(), fatal)
        assert calls["n"] == 1
        assert clock.now == 0.0

    def test_on_retry_hook_sees_each_retry(self):
        clock = VirtualClock()
        seen = []

        def flaky():
            if len(seen) < 2:
                raise NVMLError(NVMLError.NVML_ERROR_TIMEOUT, "flake")
            return True

        retry_call(clock, BackoffPolicy(), flaky,
                   on_retry=lambda i, exc: seen.append((i, exc.code)))
        assert seen == [(1, NVMLError.NVML_ERROR_TIMEOUT),
                        (2, NVMLError.NVML_ERROR_TIMEOUT)]


class TestTransientClassification:
    @pytest.mark.parametrize("code,transient", [
        (NVMLError.NVML_ERROR_TIMEOUT, True),
        (NVMLError.NVML_ERROR_GPU_IS_LOST, True),
        (NVMLError.NVML_ERROR_UNKNOWN, True),
        (NVMLError.NVML_ERROR_UNINITIALIZED, False),
        (NVMLError.NVML_ERROR_INVALID_ARGUMENT, False),
    ])
    def test_nvml_codes(self, code, transient):
        assert is_transient_nvml_error(NVMLError(code, "x")) is transient

    def test_smi_runtime_error_is_transient(self):
        assert is_transient_nvml_error(RuntimeError("nvidia-smi failed: boom"))

    def test_other_errors_are_not(self):
        assert not is_transient_nvml_error(RuntimeError("tool exploded"))
        assert not is_transient_nvml_error(ValueError("nope"))


# --------------------------------------------------------------------- #
# seeded jitter + total retry budget: property-based contracts
# --------------------------------------------------------------------- #
from hypothesis import given, settings, strategies as st  # noqa: E402

policies = st.builds(
    BackoffPolicy,
    max_attempts=st.integers(min_value=1, max_value=8),
    base_delay_s=st.floats(min_value=0.01, max_value=4.0,
                           allow_nan=False, allow_infinity=False),
    multiplier=st.floats(min_value=1.0, max_value=3.0,
                         allow_nan=False, allow_infinity=False),
    max_delay_s=st.floats(min_value=4.0, max_value=64.0,
                          allow_nan=False, allow_infinity=False),
    jitter=st.floats(min_value=0.0, max_value=0.99,
                     allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    total_budget_s=st.one_of(
        st.none(),
        st.floats(min_value=0.1, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
    ),
)


class TestBackoffProperties:
    @settings(max_examples=80)
    @given(policy=policies)
    def test_schedules_are_reproducible_per_seed(self, policy):
        # Same policy (same seed) -> byte-identical schedule, every time.
        assert policy.schedule() == policy.schedule()
        twin = BackoffPolicy(**{
            f: getattr(policy, f) for f in (
                "max_attempts", "base_delay_s", "multiplier", "max_delay_s",
                "jitter", "seed", "total_budget_s",
            )
        })
        assert twin.schedule() == policy.schedule()

    @settings(max_examples=80)
    @given(policy=policies)
    def test_delays_are_bounded_and_nonnegative(self, policy):
        ceiling = policy.max_delay_s * (1.0 + policy.jitter)
        for retry_index in range(1, policy.max_attempts):
            delay = policy.delay_for(retry_index)
            assert 0.0 <= delay <= ceiling + 1e-9

    @settings(max_examples=80)
    @given(policy=policies)
    def test_schedule_never_outspends_the_budget(self, policy):
        delays = policy.schedule()
        assert len(delays) <= policy.max_attempts - 1
        if policy.total_budget_s is not None:
            assert sum(delays) <= policy.total_budget_s + 1e-9

    @settings(max_examples=40)
    @given(seed_a=st.integers(min_value=0, max_value=10_000),
           seed_b=st.integers(min_value=0, max_value=10_000))
    def test_distinct_seeds_deherd(self, seed_a, seed_b):
        # Jittered twins with different seeds must not collide on every
        # delay (the thundering-herd fix), while either seed alone stays
        # deterministic.
        make = lambda s: BackoffPolicy(  # noqa: E731
            max_attempts=6, base_delay_s=1.0, jitter=0.5, seed=s
        )
        a, b = make(seed_a), make(seed_b)
        assert a.schedule() == make(seed_a).schedule()
        if seed_a != seed_b:
            assert a.schedule() != b.schedule()

    @settings(max_examples=40)
    @given(policy=policies)
    def test_unjittered_schedule_is_monotone_until_the_cap(self, policy):
        flat = BackoffPolicy(
            max_attempts=policy.max_attempts,
            base_delay_s=policy.base_delay_s,
            multiplier=policy.multiplier,
            max_delay_s=policy.max_delay_s,
        )
        delays = flat.schedule()
        assert all(a <= b + 1e-9 for a, b in zip(delays, delays[1:]))
        assert all(d <= flat.max_delay_s for d in delays)
