"""Galaxy API facade."""

import json

import pytest

from repro.galaxy.api import ApiError, GalaxyApi


@pytest.fixture
def api(deployment):
    return GalaxyApi(deployment.app)


class TestTools:
    def test_list_tools(self, api):
        tools = api.list_tools()
        ids = [t["id"] for t in tools]
        assert ids == sorted(ids)
        assert "racon" in ids and "bonito" in ids

    def test_show_tool_payload(self, api):
        tool = api.show_tool("racon")
        assert tool["requires_gpu"] is True
        assert tool["requested_gpu_ids"] == ["0"]
        assert any(p["name"] == "threads" for p in tool["inputs"])
        assert tool["containers"][0]["type"] == "docker"

    def test_show_unknown_tool_404(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.show_tool("ghost")
        assert excinfo.value.status == 404

    def test_payloads_json_serialisable(self, api):
        json.dumps(api.list_tools())


class TestJobs:
    def test_run_tool_roundtrip(self, api):
        created = api.run_tool(
            {"tool_id": "racon", "inputs": {"threads": 4, "workload": "unit"}}
        )
        assert created["state"] == "ok"
        assert created["destination"] == "local_gpu"
        shown = api.show_job(created["id"])
        assert shown["command_line"].startswith("racon_gpu")
        assert shown["environment"]["GALAXY_GPU_ENABLED"] == "true"
        assert shown["state_history"][-1]["state"] == "ok"
        json.dumps(shown)

    def test_run_tool_validation(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.run_tool({})
        assert excinfo.value.status == 400
        with pytest.raises(ApiError):
            api.run_tool({"tool_id": "racon", "inputs": "notamapping"})
        with pytest.raises(ApiError) as excinfo:
            api.run_tool({"tool_id": "ghost"})
        assert excinfo.value.status == 404

    def test_list_jobs_with_state_filter(self, api, deployment):
        api.run_tool({"tool_id": "racon", "inputs": {"workload": "unit"}})

        def boom(argv, ctx):
            raise RuntimeError("x")

        deployment.app.register_executor("racon_gpu", boom)
        api.run_tool({"tool_id": "racon", "inputs": {"workload": "unit"}})
        assert len(api.list_jobs()) == 2
        assert len(api.list_jobs(state="ok")) == 1
        assert len(api.list_jobs(state="error")) == 1
        with pytest.raises(ApiError):
            api.list_jobs(state="exploded")

    def test_show_unknown_job_404(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.show_job(99999)
        assert excinfo.value.status == 404


class TestHistories:
    def test_history_contents_after_run(self, api):
        api.run_tool({"tool_id": "racon", "inputs": {"workload": "unit"}})
        histories = api.list_histories()
        assert histories[0]["size"] == 1
        contents = api.history_contents(0)
        assert contents[0]["name"] == "racon/consensus"
        assert contents[0]["format"] == "fasta"

    def test_unknown_history_404(self, api):
        with pytest.raises(ApiError):
            api.history_contents(7)
