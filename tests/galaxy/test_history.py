"""Histories and datasets."""

import pytest

from repro.galaxy.history import Dataset, History


class TestDataset:
    def test_size_gib(self):
        assert Dataset(name="x", size_bytes=17 * 1024**3).size_gib == pytest.approx(17.0)

    def test_ids_unique(self):
        assert Dataset(name="a").dataset_id != Dataset(name="b").dataset_id


class TestHistory:
    def test_add_and_get(self):
        history = History("h")
        dataset = history.add(Dataset(name="reads.fa"))
        assert history.get("reads.fa") is dataset
        assert len(history) == 1

    def test_latest_version_wins(self):
        history = History()
        history.add(Dataset(name="out", payload=1))
        newest = history.add(Dataset(name="out", payload=2))
        assert history.get("out") is newest

    def test_missing_name_raises(self):
        with pytest.raises(KeyError):
            History().get("ghost")

    def test_iteration_in_order(self):
        history = History()
        for name in ("a", "b", "c"):
            history.add(Dataset(name=name))
        assert [d.name for d in history] == ["a", "b", "c"]
