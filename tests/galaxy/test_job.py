"""Job lifecycle state machine — property-tested monotonicity."""

import pytest
from hypothesis import given, strategies as st

from repro.galaxy.errors import JobStateError
from repro.galaxy.job import TERMINAL_STATES, GalaxyJob, JobState
from repro.galaxy.tool_xml import parse_tool_xml


def make_job():
    return GalaxyJob(tool=parse_tool_xml('<tool id="t"><command>x</command></tool>'))


class TestLifecycle:
    def test_happy_path(self):
        job = make_job()
        for state in (JobState.QUEUED, JobState.RUNNING, JobState.OK):
            job.transition(state)
        assert job.is_terminal

    def test_error_path(self):
        job = make_job()
        job.transition(JobState.QUEUED)
        job.transition(JobState.RUNNING)
        job.fail("boom", exit_code=2)
        assert job.state is JobState.ERROR
        assert job.exit_code == 2
        assert "boom" in job.stderr

    def test_queued_can_error_directly(self):
        job = make_job()
        job.transition(JobState.QUEUED)
        job.transition(JobState.ERROR)
        assert job.is_terminal

    def test_deletion_from_any_nonterminal(self):
        for path in ([], [JobState.QUEUED], [JobState.QUEUED, JobState.RUNNING]):
            job = make_job()
            for state in path:
                job.transition(state)
            job.transition(JobState.DELETED)
            assert job.is_terminal

    def test_terminal_states_absorbing(self):
        for terminal in TERMINAL_STATES:
            job = make_job()
            job.transition(JobState.QUEUED)
            if terminal is JobState.OK:
                job.transition(JobState.RUNNING)
            job.transition(terminal) if job.state is not terminal else None
            for target in JobState:
                with pytest.raises(JobStateError):
                    job.transition(target)

    def test_cannot_skip_queued(self):
        with pytest.raises(JobStateError):
            make_job().transition(JobState.RUNNING)

    def test_cannot_finish_from_new(self):
        with pytest.raises(JobStateError):
            make_job().transition(JobState.OK)

    def test_history_records_times(self):
        job = make_job()
        job.transition(JobState.QUEUED, now=1.0)
        job.transition(JobState.RUNNING, now=2.0)
        job.transition(JobState.OK, now=5.0)
        assert job.state_history == [
            (JobState.QUEUED, 1.0),
            (JobState.RUNNING, 2.0),
            (JobState.OK, 5.0),
        ]


class TestMetrics:
    def test_runtime_and_queue_seconds(self):
        job = make_job()
        job.metrics.submit_time = 1.0
        job.metrics.start_time = 3.0
        job.metrics.end_time = 10.0
        assert job.metrics.runtime_seconds == pytest.approx(7.0)
        assert job.metrics.queue_seconds == pytest.approx(2.0)

    def test_runtime_none_until_finished(self):
        job = make_job()
        assert job.metrics.runtime_seconds is None
        job.metrics.start_time = 1.0
        assert job.metrics.runtime_seconds is None

    def test_job_ids_unique(self):
        assert make_job().job_id != make_job().job_id


@given(st.lists(st.sampled_from(list(JobState)), max_size=12))
def test_state_never_leaves_terminal(states):
    """Whatever transition sequence is attempted, once terminal always
    terminal, and every accepted transition appends to history."""
    job = make_job()
    for target in states:
        was_terminal = job.is_terminal
        before = job.state
        try:
            job.transition(target)
        except JobStateError:
            assert job.state is before  # rejected transitions change nothing
        else:
            assert not was_terminal
    assert len(job.state_history) <= len(states)
