"""job_conf.xml parsing and dynamic destination resolution."""

import pytest

from repro.galaxy.errors import JobConfError
from repro.galaxy.job import GalaxyJob
from repro.galaxy.job_conf import DynamicRuleRegistry, parse_job_conf_xml
from repro.galaxy.tool_xml import parse_tool_xml

PAPER_CODE_2 = """\
<job_conf>
    <plugins>
        <plugin id="local" type="runner" load="galaxy.jobs.runners.local:LocalJobRunner"/>
    </plugins>
    <destinations default="dynamic">
        <destination id="dynamic" runner="dynamic">
            <param id="type">python</param>
            <param id="function">gpu_destination</param>
        </destination>
        <destination id="local_gpu" runner="local"/>
        <destination id="local_cpu" runner="local"/>
        <destination id="docker_dest" runner="docker">
            <param id="docker_enabled">true</param>
        </destination>
    </destinations>
    <tools>
        <tool id="special" destination="docker_dest"/>
    </tools>
</job_conf>
"""


def make_job(tool_id="t"):
    return GalaxyJob(tool=parse_tool_xml(f'<tool id="{tool_id}"><command>x</command></tool>'))


class TestParsing:
    def test_paper_code_2_parses(self):
        config = parse_job_conf_xml(PAPER_CODE_2)
        assert config.default_destination == "dynamic"
        assert set(config.destinations) == {
            "dynamic",
            "local_gpu",
            "local_cpu",
            "docker_dest",
        }
        dynamic = config.destination("dynamic")
        assert dynamic.is_dynamic
        assert dynamic.rule_function == "gpu_destination"

    def test_docker_enabled_param(self):
        config = parse_job_conf_xml(PAPER_CODE_2)
        assert config.destination("docker_dest").docker_enabled
        assert not config.destination("local_gpu").docker_enabled

    def test_tool_mapping(self):
        config = parse_job_conf_xml(PAPER_CODE_2)
        assert config.tool_destinations["special"] == "docker_dest"

    def test_unknown_default_rejected(self):
        xml = '<job_conf><destinations default="ghost"><destination id="a" runner="local"/></destinations></job_conf>'
        with pytest.raises(JobConfError):
            parse_job_conf_xml(xml)

    def test_tool_mapping_to_unknown_destination_rejected(self):
        xml = PAPER_CODE_2.replace('destination="docker_dest"', 'destination="ghost"')
        with pytest.raises(JobConfError):
            parse_job_conf_xml(xml)

    def test_destination_requires_id_and_runner(self):
        xml = "<job_conf><destinations><destination id='x'/></destinations></job_conf>"
        with pytest.raises(JobConfError):
            parse_job_conf_xml(xml)

    def test_missing_destinations_rejected(self):
        with pytest.raises(JobConfError):
            parse_job_conf_xml("<job_conf/>")

    def test_malformed_xml_rejected(self):
        with pytest.raises(JobConfError):
            parse_job_conf_xml("not xml at all <")


class TestResolution:
    def test_dynamic_rule_invoked(self):
        config = parse_job_conf_xml(PAPER_CODE_2)
        calls = []

        def rule(job, app):
            calls.append(job)
            return "local_gpu"

        config.rules.register("gpu_destination", rule)
        destination = config.resolve(make_job(), app=None)
        assert destination.destination_id == "local_gpu"
        assert len(calls) == 1

    def test_default_used_when_no_tool_mapping(self):
        config = parse_job_conf_xml(PAPER_CODE_2)
        config.rules.register("gpu_destination", lambda j, a: "local_cpu")
        assert config.resolve(make_job("anything"), None).destination_id == "local_cpu"

    def test_tool_mapping_overrides_default(self):
        config = parse_job_conf_xml(PAPER_CODE_2)
        destination = config.resolve(make_job("special"), None)
        assert destination.destination_id == "docker_dest"

    def test_unregistered_rule_raises(self):
        config = parse_job_conf_xml(PAPER_CODE_2)
        with pytest.raises(JobConfError):
            config.resolve(make_job(), None)

    def test_dynamic_chain_follows(self):
        xml = """\
<job_conf>
  <destinations default="d1">
    <destination id="d1" runner="dynamic"><param id="function">r1</param></destination>
    <destination id="d2" runner="dynamic"><param id="function">r2</param></destination>
    <destination id="final" runner="local"/>
  </destinations>
</job_conf>"""
        config = parse_job_conf_xml(xml)
        config.rules.register("r1", lambda j, a: "d2")
        config.rules.register("r2", lambda j, a: "final")
        assert config.resolve(make_job(), None).destination_id == "final"

    def test_dynamic_cycle_detected(self):
        xml = """\
<job_conf>
  <destinations default="d1">
    <destination id="d1" runner="dynamic"><param id="function">r1</param></destination>
  </destinations>
</job_conf>"""
        config = parse_job_conf_xml(xml)
        config.rules.register("r1", lambda j, a: "d1")
        with pytest.raises(JobConfError):
            config.resolve(make_job(), None)


class TestRegistry:
    def test_names_sorted(self):
        registry = DynamicRuleRegistry()
        registry.register("b", lambda j, a: "x")
        registry.register("a", lambda j, a: "x")
        assert registry.names() == ["a", "b"]

    def test_missing_rule_error(self):
        with pytest.raises(JobConfError):
            DynamicRuleRegistry().get("nope")


class TestParseBoolParam:
    """Table-driven contract for the shared truthy helper.

    Every consumer — destination flags, the runners' override handling,
    tool boolean params, the linter — must agree on exactly this table,
    so a config that lints clean cannot behave differently at runtime.
    """

    TRUTHY = ["true", "True", "TRUE", "yes", "Yes", "on", "ON", "1",
              " true ", "\tyes\n", " 1 "]
    FALSY = ["false", "False", "FALSE", "no", "No", "off", "0", "",
             " false ", "  ", "2", "enabled", "y", "t"]

    @pytest.mark.parametrize("raw", TRUTHY)
    def test_truthy_spellings(self, raw):
        from repro.galaxy.job_conf import parse_bool_param

        assert parse_bool_param(raw) is True

    @pytest.mark.parametrize("raw", FALSY)
    def test_falsy_spellings(self, raw):
        from repro.galaxy.job_conf import parse_bool_param

        assert parse_bool_param(raw) is False

    def test_none_uses_default(self):
        from repro.galaxy.job_conf import parse_bool_param

        assert parse_bool_param(None) is False
        assert parse_bool_param(None, default=True) is True

    @pytest.mark.parametrize("raw", ["True", "YES", " on "])
    def test_destination_flags_accept_all_spellings(self, raw):
        xml = f"""\
<job_conf>
  <plugins><plugin id="docker" type="runner" load="x:Y"/></plugins>
  <destinations default="d">
    <destination id="d" runner="docker">
      <param id="docker_enabled">{raw}</param>
    </destination>
  </destinations>
</job_conf>"""
        config = parse_job_conf_xml(xml)
        assert config.destination("d").docker_enabled is True
