"""Property tests: the requeue edge, the transition table as oracle, and
multi-hop resubmission chains under the runtime hop cap."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import build_deployment
from repro.galaxy.app import ToolExecutionResult
from repro.galaxy.errors import JobStateError
from repro.galaxy.job import _TRANSITIONS, GalaxyJob, JobState
from repro.galaxy.tool_xml import parse_tool_xml


def make_job():
    return GalaxyJob(
        tool=parse_tool_xml('<tool id="t"><command>failtool</command></tool>')
    )


class TestTransitionTableIsTheOracle:
    @given(st.lists(st.sampled_from(list(JobState)), max_size=16))
    def test_transition_accepted_iff_table_allows(self, targets):
        job = make_job()
        for target in targets:
            allowed = target in _TRANSITIONS[job.state]
            if allowed:
                job.transition(target)
                assert job.state is target
            else:
                with pytest.raises(JobStateError):
                    job.transition(target)

    def test_every_state_has_a_row(self):
        assert set(_TRANSITIONS) == set(JobState)


class TestRequeueEdge:
    """QUEUED -> QUEUED models a backed-off relaunch after a transient
    failure; it must be repeatable and each round must leave a record."""

    @given(st.integers(min_value=0, max_value=25))
    def test_any_number_of_requeues_is_legal(self, rounds):
        job = make_job()
        job.transition(JobState.QUEUED, now=0.0)
        for i in range(rounds):
            job.transition(JobState.QUEUED, now=float(i + 1))
        assert job.state is JobState.QUEUED
        assert len(job.state_history) == rounds + 1
        # The job can still finish normally after any number of requeues.
        job.transition(JobState.RUNNING)
        job.transition(JobState.OK)

    def test_requeue_requires_queued(self):
        job = make_job()
        job.transition(JobState.QUEUED)
        job.transition(JobState.RUNNING)
        with pytest.raises(JobStateError):
            job.transition(JobState.QUEUED)  # no demotion from RUNNING


# --------------------------------------------------------------------- #
# resubmission chains
# --------------------------------------------------------------------- #

#: hop0 -> hop1 -> ... -> hop5: deep enough that the runtime cap, not
#: the config, ends the chain for every hop count under test.
CHAIN_CONF = "".join(
    ['<job_conf><destinations default="hop0">']
    + [
        f'<destination id="hop{i}" runner="local">'
        f'<param id="resubmit_destination">hop{i + 1}</param>'
        "</destination>"
        for i in range(6)
    ]
    + ['<destination id="hop6" runner="local"/>', "</destinations></job_conf>"]
)


def _chain_deployment(max_hops: int, fail_first_n: int):
    """A deployment whose only tool fails its first ``fail_first_n`` runs."""
    deployment = build_deployment(
        job_conf_xml=CHAIN_CONF, max_resubmit_hops=max_hops
    )
    tool = parse_tool_xml(
        '<tool id="t" name="T" version="1"><command>failtool</command></tool>'
    )
    deployment.app.install_tool(tool)
    calls = {"n": 0}

    def sometimes(argv, ctx):
        calls["n"] += 1
        if calls["n"] <= fail_first_n:
            raise RuntimeError(f"attempt {calls['n']} failed")
        return ToolExecutionResult(stdout=f"attempt {calls['n']} ok")

    deployment.app.register_executor("failtool", sometimes)
    return deployment


class TestResubmitChains:
    @settings(max_examples=20, deadline=None)
    @given(max_hops=st.integers(min_value=0, max_value=4))
    def test_cap_bounds_chain_length(self, max_hops):
        dep = _chain_deployment(max_hops, fail_first_n=99)
        final = dep.app.submit_and_run("t")
        assert final.state is JobState.ERROR
        # Original attempt + exactly max_hops resubmissions, never more.
        assert len(dep.app.jobs) == max_hops + 1
        chain = [j for j in dep.app.jobs.values()]
        if max_hops == 0:
            assert all(j.metrics.resubmit_chain == [] for j in chain)
        else:
            ids = sorted(j.job_id for j in chain)
            # Every hop carries the identical full chain, root first.
            for hop in chain:
                assert hop.metrics.resubmit_chain == ids

    @settings(max_examples=20, deadline=None)
    @given(succeed_on=st.integers(min_value=1, max_value=4))
    def test_chain_stops_at_first_success(self, succeed_on):
        dep = _chain_deployment(max_hops=5, fail_first_n=succeed_on - 1)
        final = dep.app.submit_and_run("t")
        assert final.state is JobState.OK
        assert len(dep.app.jobs) == succeed_on
        assert final.metrics.destination_id == f"hop{succeed_on - 1}"

    def test_hops_linked_via_resubmitted_as(self):
        dep = _chain_deployment(max_hops=3, fail_first_n=99)
        dep.app.submit_and_run("t")
        jobs = sorted(dep.app.jobs.values(), key=lambda j: j.job_id)
        for earlier, later in zip(jobs, jobs[1:], strict=False):
            assert earlier.metrics.resubmitted_as == later.job_id
        assert jobs[-1].metrics.resubmitted_as is None

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            build_deployment(job_conf_xml=CHAIN_CONF, max_resubmit_hops=-1)
