"""Job metrics plugins."""

import pytest

from repro.galaxy.metrics_plugins import (
    CoreMetricsPlugin,
    GpuMetricsPlugin,
    MetricsCollector,
)


class TestCorePlugin:
    def test_core_fields_on_finished_job(self, deployment):
        job = deployment.run_tool("racon", {"threads": 4, "workload": "unit"})
        core = job.metrics.plugin_metrics["core"]
        assert core["galaxy_slots"] == 4
        assert core["exit_code"] == 0
        assert core["destination_id"] == "local_gpu"
        assert core["runtime_seconds"] == pytest.approx(1.72, abs=0.01)
        assert core["queue_seconds"] == pytest.approx(0.0)


class TestGpuPlugin:
    def test_gpu_fields_for_gpu_job(self, deployment):
        job = deployment.run_tool("racon", {"threads": 4, "workload": "unit"})
        gpu = job.metrics.plugin_metrics["gpu"]
        assert gpu["gpu_ids"] == ["0"]
        assert gpu["samples"] >= 2
        assert gpu["gpu0_util_max_pct"] > 0
        assert gpu["gpu1_util_max_pct"] == 0
        assert gpu["energy_joules"] > 0
        assert 52.0 <= gpu["mean_power_watts"] <= 298.0

    def test_cpu_job_reports_idle_devices(self, deployment):
        job = deployment.run_tool("seqstats", {"threads": 1})
        gpu = job.metrics.plugin_metrics["gpu"]
        assert gpu["gpu_ids"] == []
        assert gpu["gpu0_util_max_pct"] == 0

    def test_unmonitored_job_skipped(self):
        plugin = GpuMetricsPlugin(monitor=None)
        from repro.galaxy.job import GalaxyJob
        from repro.galaxy.tool_xml import parse_tool_xml

        job = GalaxyJob(
            tool=parse_tool_xml('<tool id="t"><command>x</command></tool>')
        )
        assert plugin.collect(job) == {}


class TestCollector:
    def test_register_replaces_same_name(self):
        collector = MetricsCollector([CoreMetricsPlugin()])

        class FakeCore:
            plugin_name = "core"

            def collect(self, job):
                return {"fake": True}

        collector.register(FakeCore())
        assert len(collector.plugins) == 1
        assert isinstance(collector.plugins[0], FakeCore)

    def test_empty_plugin_results_omitted(self, deployment):
        class Silent:
            plugin_name = "silent"

            def collect(self, job):
                return {}

        deployment.app.metrics_collector.register(Silent())
        job = deployment.run_tool("racon", {"workload": "unit"})
        assert "silent" not in job.metrics.plugin_metrics

    def test_metrics_also_via_api(self, deployment):
        from repro.galaxy.api import GalaxyApi

        api = GalaxyApi(deployment.app)
        created = api.run_tool({"tool_id": "racon", "inputs": {"workload": "unit"}})
        job = deployment.app.jobs[created["id"]]
        assert "core" in job.metrics.plugin_metrics
