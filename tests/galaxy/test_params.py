"""build_param_dict — the GYAN bridge into the wrapper namespace."""


from repro.galaxy.job import GalaxyJob
from repro.galaxy.params import (
    GPU_ENABLED_ENV_VAR,
    GPU_ENABLED_PARAM_KEY,
    build_param_dict,
)
from repro.galaxy.tool_xml import parse_tool_xml

TOOL = parse_tool_xml(
    """\
<tool id="t" version="3.1">
  <command>run</command>
  <inputs>
    <param name="threads" type="integer" value="4"/>
    <param name="label" type="text" value="hello"/>
  </inputs>
</tool>"""
)


class TestBuildParamDict:
    def test_gpu_enabled_key_injected_from_environment(self):
        """§IV-A: GALAXY_GPU_ENABLED exposed as __galaxy_gpu_enabled__."""
        job = GalaxyJob(tool=TOOL)
        params = build_param_dict(job, environment={GPU_ENABLED_ENV_VAR: "true"})
        assert params[GPU_ENABLED_PARAM_KEY] == "true"

    def test_defaults_to_false_like_stock_galaxy(self):
        job = GalaxyJob(tool=TOOL)
        assert build_param_dict(job)[GPU_ENABLED_PARAM_KEY] == "false"

    def test_declared_params_coerced(self):
        job = GalaxyJob(tool=TOOL, params={"threads": "8"})
        params = build_param_dict(job)
        assert params["threads"] == 8

    def test_defaults_fill_missing_params(self):
        job = GalaxyJob(tool=TOOL)
        params = build_param_dict(job)
        assert params["threads"] == 4 and params["label"] == "hello"

    def test_undeclared_params_pass_through(self):
        job = GalaxyJob(tool=TOOL, params={"workload": "unit"})
        assert build_param_dict(job)["workload"] == "unit"

    def test_standard_double_underscore_entries(self):
        job = GalaxyJob(tool=TOOL)
        params = build_param_dict(job)
        assert params["__tool_id__"] == "t"
        assert params["__tool_version__"] == "3.1"
        assert params["__job_id__"] == job.job_id

    def test_extra_entries_override(self):
        job = GalaxyJob(tool=TOOL)
        params = build_param_dict(job, extra={"output_path": "/tmp/x"})
        assert params["output_path"] == "/tmp/x"
