"""Job resubmission (Galaxy's <resubmit>): GPU failures recover on CPU."""

import pytest

from repro.core import build_deployment
from repro.core.orchestrator import GYAN_JOB_CONF_XML
from repro.galaxy.job import JobState
from repro.tools.executors import register_paper_tools

#: The GYAN job conf with a recovery path: local_gpu failures resubmit
#: to a CPU destination that pins the GPU env off.
RESUBMIT_JOB_CONF = GYAN_JOB_CONF_XML.replace(
    '<destination id="local_gpu" runner="local"/>',
    """<destination id="local_gpu" runner="local">
            <param id="resubmit_destination">local_cpu_recovery</param>
        </destination>
        <destination id="local_cpu_recovery" runner="local">
            <param id="gpu_enabled_override">false</param>
        </destination>""",
)


@pytest.fixture
def recovering_deployment():
    deployment = build_deployment(job_conf_xml=RESUBMIT_JOB_CONF)
    register_paper_tools(deployment.app)
    return deployment


def flaky_gpu_executor(argv, ctx):
    """A racon_gpu that dies with a runtime CUDA error."""
    raise RuntimeError("CUDA error: an illegal memory access was encountered")


class TestResubmission:
    def test_gpu_failure_recovers_on_cpu(self, recovering_deployment):
        dep = recovering_deployment
        dep.app.register_executor("racon_gpu", flaky_gpu_executor)
        final = dep.run_tool("racon", {"threads": 4, "workload": "unit"})
        # The returned job is the successful CPU retry.
        assert final.state is JobState.OK
        assert final.metrics.destination_id == "local_cpu_recovery"
        assert final.command_line.startswith("racon -t 4")
        assert final.environment["GALAXY_GPU_ENABLED"] == "false"
        assert "CUDA_VISIBLE_DEVICES" not in final.environment

    def test_original_failure_kept_and_linked(self, recovering_deployment):
        dep = recovering_deployment
        dep.app.register_executor("racon_gpu", flaky_gpu_executor)
        final = dep.run_tool("racon", {"workload": "unit"})
        failed = [
            j for j in dep.app.jobs.values() if j.state is JobState.ERROR
        ]
        assert len(failed) == 1
        assert failed[0].metrics.breakdown["resubmitted_as"] == final.job_id
        assert "illegal memory access" in failed[0].stderr

    def test_successful_jobs_not_resubmitted(self, recovering_deployment):
        dep = recovering_deployment
        job = dep.run_tool("racon", {"workload": "unit"})
        assert job.state is JobState.OK
        assert job.metrics.destination_id == "local_gpu"
        assert len(dep.app.jobs) == 1

    def test_no_resubmit_without_config(self, deployment):
        deployment.app.register_executor("racon_gpu", flaky_gpu_executor)
        job = deployment.run_tool("racon", {"workload": "unit"})
        assert job.state is JobState.ERROR
        assert len(deployment.app.jobs) == 1

    def test_devices_released_between_attempts(self, recovering_deployment):
        dep = recovering_deployment
        dep.app.register_executor("racon_gpu", flaky_gpu_executor)
        dep.run_tool("racon", {"workload": "unit"})
        assert all(d.is_idle for d in dep.gpu_host.devices)

    def test_retry_params_preserved(self, recovering_deployment):
        dep = recovering_deployment
        dep.app.register_executor("racon_gpu", flaky_gpu_executor)
        final = dep.run_tool("racon", {"threads": 8, "workload": "unit"})
        assert final.params["threads"] == 8
        assert final.command_line.startswith("racon -t 8")


class TestDestinationOverride:
    def test_override_true_forces_gpu_env(self, deployment):
        """The opposite override also works (admins pinning GPU env on a
        destination for tools without the compute tag)."""
        from repro.galaxy.job_conf import Destination

        deployment.job_config.destinations["forced_gpu"] = Destination(
            destination_id="forced_gpu",
            runner="local",
            params={"gpu_enabled_override": "true"},
        )
        job = deployment.app.submit("racon", {"workload": "unit"})
        destination = deployment.job_config.destination("forced_gpu")
        deployment.local_runner.queue_job(job, destination)
        assert job.environment["GALAXY_GPU_ENABLED"] == "true"
