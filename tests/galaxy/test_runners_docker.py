"""Docker job runner: container wiring, GPU flags, overhead accounting."""

import pytest

from repro.galaxy.errors import GalaxyError
from repro.galaxy.job import JobState
from repro.galaxy.runners.docker import DockerJobRunner


@pytest.fixture
def docker_deployment(deployment):
    """Deployment with the racon tool routed through Docker."""
    deployment.route_tool_to("racon", "docker_dynamic")
    # warm the image cache so tests exercise the steady-state overhead
    deployment.registry.pull("gulsumgudukbay/racon_dockerfile:latest")
    return deployment


def run_racon(dep, **params):
    defaults = {"threads": 2, "batches": 4, "workload": "unit"}
    defaults.update(params)
    return dep.run_tool("racon", defaults)


class TestDockerExecution:
    def test_job_completes_through_container(self, docker_deployment):
        job = run_racon(docker_deployment)
        assert job.state is JobState.OK
        assert job.metrics.destination_id == "docker_gpu"
        assert job.metrics.container == "gulsumgudukbay/racon_dockerfile:latest"

    def test_gpus_all_flag_present_for_gpu_job(self, docker_deployment):
        run_racon(docker_deployment)
        command = docker_deployment.docker_runtime.run_log[-1].command_line
        assert "--gpus all" in command

    def test_cuda_visible_devices_exported_not_gpus_ids(self, docker_deployment):
        """§IV-C1: device selection rides CUDA_VISIBLE_DEVICES, the
        container always gets --gpus all."""
        run_racon(docker_deployment)
        result = docker_deployment.docker_runtime.run_log[-1]
        assert result.env["CUDA_VISIBLE_DEVICES"] == "0"
        assert "--gpus all" in result.command_line
        assert "--gpus 0" not in result.command_line

    def test_container_overhead_recorded(self, docker_deployment):
        job = run_racon(docker_deployment)
        assert job.metrics.breakdown["container_launch"] == pytest.approx(0.61, abs=0.02)
        assert job.metrics.breakdown["container_pull"] == 0.0

    def test_cold_pull_charged_on_first_use(self, deployment):
        deployment.route_tool_to("racon", "docker_dynamic")
        job = run_racon(deployment)
        assert job.metrics.breakdown["container_pull"] > 0

    def test_volumes_mounted(self, docker_deployment):
        run_racon(docker_deployment)
        command = docker_deployment.docker_runtime.run_log[-1].command_line
        assert "/data/working:rw" in command
        assert "/data/inputs:ro" in command

    def test_gpu_process_visible_during_run(self, docker_deployment):
        launched = docker_deployment.docker_runner.launch(
            docker_deployment.app.submit("racon", {"workload": "unit"}),
            docker_deployment.job_config.destination("docker_gpu"),
        )
        assert docker_deployment.gpu_host.device(0).process_pids() != []
        docker_deployment.docker_runner.finish(launched)
        assert docker_deployment.gpu_host.device(0).is_idle


class TestValidation:
    def test_non_docker_destination_rejected(self, docker_deployment):
        job = docker_deployment.app.submit("racon", {"workload": "unit"})
        with pytest.raises(GalaxyError):
            docker_deployment.docker_runner.launch(
                job, docker_deployment.job_config.destination("local_gpu")
            )

    def test_tool_without_container_rejected(self, docker_deployment):
        from repro.galaxy.tool_xml import parse_tool_xml

        docker_deployment.app.install_tool(
            parse_tool_xml('<tool id="bare"><command>racon -t 1</command></tool>')
        )
        job = docker_deployment.app.submit("bare", {"workload": "unit"})
        with pytest.raises(GalaxyError):
            docker_deployment.docker_runner.launch(
                job, docker_deployment.job_config.destination("docker_gpu")
            )


class TestStockBehaviour:
    def test_stock_docker_runner_never_adds_gpu_flag(self, docker_deployment):
        """Without GYAN's flag provider, containers launch GPU-less —
        the pre-GYAN Galaxy behaviour."""
        stock = DockerJobRunner(
            docker_deployment.app,
            docker=docker_deployment.docker_runtime,
            gpu_mapper=docker_deployment.mapper,
            gpu_flag_provider=None,
        )
        job = docker_deployment.app.submit("racon", {"workload": "unit"})
        stock.queue_job(job, docker_deployment.job_config.destination("docker_gpu"))
        command = docker_deployment.docker_runtime.run_log[-1].command_line
        assert "--gpus" not in command
