"""DRM (Slurm-style) runner: admission, submit scripts, gres requests."""

import pytest

from repro.cluster.scheduler import ClusterScheduler
from repro.galaxy.errors import GalaxyError
from repro.galaxy.job import JobState
from repro.galaxy.runners.drm import DrmJobRunner


@pytest.fixture
def drm(deployment):
    scheduler = ClusterScheduler(deployment.node)
    runner = DrmJobRunner(
        deployment.app,
        scheduler,
        gpu_mapper=deployment.mapper,
        usage_monitor=deployment.monitor,
    )
    deployment.app.register_runner("drm", runner)
    return runner


def gpu_destination(deployment):
    return deployment.job_config.destination("local_gpu")


class TestExecution:
    def test_job_completes_through_scheduler(self, deployment, drm):
        job = deployment.app.submit("racon", {"threads": 4, "workload": "unit"})
        drm.queue_job(job, gpu_destination(deployment))
        assert job.state is JobState.OK
        assert job.command_line.startswith("racon_gpu")
        assert drm.scheduler.stats()["done"] == 1

    def test_submit_script_carries_gres_and_env(self, deployment, drm):
        job = deployment.app.submit("racon", {"threads": 4, "workload": "unit"})
        drm.queue_job(job, gpu_destination(deployment))
        script = drm.script_for(job.job_id)
        assert script.startswith("#!/bin/bash")
        assert "#SBATCH --partition=gpu" in script
        assert "#SBATCH --cpus-per-task=4" in script
        assert "#SBATCH --gres=gpu:1" in script
        assert "export CUDA_VISIBLE_DEVICES=0" in script
        assert "export GALAXY_GPU_ENABLED=true" in script
        assert "racon_gpu -t 4" in script

    def test_cpu_tool_requests_no_gres(self, deployment, drm):
        job = deployment.app.submit("seqstats", {"threads": 2})
        drm.queue_job(job, deployment.job_config.destination("local_cpu"))
        script = drm.script_for(job.job_id)
        assert "--gres" not in script
        assert "--cpus-per-task=2" in script

    def test_multi_gpu_job_gres_count(self, deployment, drm):
        """A scatter decision (all devices busy) requests gpu:2."""
        deployment.gpu_host.launch_process("hog0", cuda_visible_devices="0")
        deployment.gpu_host.launch_process("hog1", cuda_visible_devices="1")
        job = deployment.app.submit("racon", {"threads": 1, "workload": "unit"})
        drm.queue_job(job, gpu_destination(deployment))
        assert "#SBATCH --gres=gpu:2" in drm.script_for(job.job_id)


class TestQueueing:
    def test_full_node_queues_instead_of_failing(self, deployment, drm):
        token = deployment.node.reserve_cpus(deployment.node.cpu_slots_free)
        job = deployment.app.submit("racon", {"threads": 4, "workload": "unit"})
        drm.queue_job(job, gpu_destination(deployment))
        assert job.state is JobState.NEW  # still queued at the DRM
        deployment.node.release_cpus(token)
        drm.scheduler.pump()
        assert job.state is JobState.OK

    def test_queued_gpu_job_sees_start_time_occupancy(self, deployment, drm):
        """GYAN's mapping runs when the DRM *starts* the job: a device
        that was busy at submit but free at start is used."""
        token = deployment.node.reserve_cpus(deployment.node.cpu_slots_free)
        hog = deployment.gpu_host.launch_process("hog", cuda_visible_devices="0")
        job = deployment.app.submit("racon", {"threads": 4, "workload": "unit"})
        drm.queue_job(job, gpu_destination(deployment))
        # Before start: GPU 0 busy.  Free everything, then let it run.
        deployment.gpu_host.terminate_process(hog.pid)
        deployment.node.release_cpus(token)
        drm.scheduler.pump()
        assert job.environment["CUDA_VISIBLE_DEVICES"] == "0"  # its request

    def test_fifo_order_preserved(self, deployment, drm):
        token = deployment.node.reserve_cpus(deployment.node.cpu_slots_free)
        jobs = [
            deployment.app.submit("racon", {"threads": 2, "workload": "unit"})
            for _ in range(3)
        ]
        for job in jobs:
            drm.submit(job, gpu_destination(deployment))
        deployment.node.release_cpus(token)
        drm.scheduler.pump()
        starts = [job.metrics.start_time for job in jobs]
        assert starts == sorted(starts)
        assert all(job.state is JobState.OK for job in jobs)

    def test_scheduler_node_must_match_app(self, deployment):
        from repro.cluster.node import ComputeNode

        other = ClusterScheduler(ComputeNode.cpu_only())
        runner = DrmJobRunner(deployment.app, other)
        job = deployment.app.submit("racon", {"workload": "unit"})
        with pytest.raises(GalaxyError):
            runner.submit(job, gpu_destination(deployment))

    def test_script_lookup_unknown_job(self, drm):
        with pytest.raises(KeyError):
            drm.script_for(424242)
