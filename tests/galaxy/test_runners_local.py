"""Local runner: lifecycle, env, GPU process handling, failures."""

import pytest

from repro.galaxy.errors import ExecutorNotFoundError, GalaxyError
from repro.galaxy.job import JobState


def run_racon(deployment, **params):
    defaults = {"threads": 4, "batches": 1, "workload": "unit"}
    defaults.update(params)
    return deployment.run_tool("racon", defaults)


class TestLifecycle:
    def test_successful_job_reaches_ok(self, deployment):
        job = run_racon(deployment)
        assert job.state is JobState.OK
        assert job.exit_code == 0
        states = [s for s, _ in job.state_history]
        assert states == [JobState.QUEUED, JobState.RUNNING, JobState.OK]

    def test_metrics_populated(self, deployment):
        job = run_racon(deployment)
        assert job.metrics.destination_id == "local_gpu"
        assert job.metrics.runtime_seconds > 0
        assert job.metrics.queue_seconds == pytest.approx(0.0)

    def test_command_line_rendered_gpu_arm(self, deployment):
        job = run_racon(deployment, threads=2, batches=8)
        assert job.command_line.startswith("racon_gpu -t 2 --cudapoa-batches 8")

    def test_environment_exported(self, deployment):
        job = run_racon(deployment)
        assert job.environment["GALAXY_GPU_ENABLED"] == "true"
        assert job.environment["CUDA_VISIBLE_DEVICES"] == "0"

    def test_executor_exception_becomes_error(self, deployment):
        def bad(argv, ctx):
            raise RuntimeError("segfault")

        deployment.app.register_executor("racon_gpu", bad)
        job = run_racon(deployment)
        assert job.state is JobState.ERROR
        assert "segfault" in job.stderr

    def test_nonzero_exit_becomes_error(self, deployment):
        from repro.galaxy.app import ToolExecutionResult

        deployment.app.register_executor(
            "racon_gpu",
            lambda argv, ctx: ToolExecutionResult(stderr="bad input", exit_code=3),
        )
        job = run_racon(deployment)
        assert job.state is JobState.ERROR
        assert job.exit_code == 3

    def test_unknown_executable_raises(self, deployment):
        from repro.galaxy.tool_xml import parse_tool_xml

        deployment.app.install_tool(
            parse_tool_xml('<tool id="ghost"><command>ghostbin -x</command></tool>')
        )
        with pytest.raises(ExecutorNotFoundError):
            deployment.run_tool("ghost")

    def test_tool_without_command_rejected(self, deployment):
        from repro.galaxy.tool_xml import parse_tool_xml

        deployment.app.install_tool(parse_tool_xml('<tool id="nocmd"/>'))
        with pytest.raises(GalaxyError):
            deployment.run_tool("nocmd")


class TestGpuProcessHandling:
    def test_gpu_process_attached_while_running_released_after(self, deployment):
        host = deployment.gpu_host
        launched = deployment.local_runner.launch(
            deployment.app.submit("racon", {"threads": 4, "workload": "unit"}),
            deployment.job_config.destination("local_gpu"),
        )
        # mid-run: the racon_gpu process occupies its allocated device
        assert host.device(0).process_pids() != []
        deployment.local_runner.finish(launched)
        assert host.device(0).is_idle

    def test_process_name_matches_smi_style(self, deployment):
        launched = deployment.local_runner.launch(
            deployment.app.submit("racon", {"workload": "unit"}),
            deployment.job_config.destination("local_gpu"),
        )
        proc = deployment.gpu_host.process(launched.host_process.pid)
        assert proc.name == "/usr/bin/racon_gpu"
        deployment.local_runner.finish(launched)

    def test_gpu_ids_recorded_in_metrics(self, deployment):
        job = run_racon(deployment)
        assert job.metrics.gpu_ids == ["0"]

    def test_cpu_tool_never_touches_gpu(self, deployment):
        job = deployment.run_tool("seqstats", {"threads": 1})
        assert job.state is JobState.OK
        assert job.metrics.gpu_ids == []
        assert job.environment["GALAXY_GPU_ENABLED"] == "false"
        assert deployment.gpu_host.device(0).is_idle


class TestCpuSlots:
    def test_slots_reserved_and_released(self, deployment):
        node = deployment.node
        free_before = node.cpu_slots_free
        run_racon(deployment, threads=8)
        assert node.cpu_slots_free == free_before

    def test_oversubscription_fails_job(self, deployment):
        node = deployment.node
        token = node.reserve_cpus(node.cpu_slots_free)
        job = deployment.app.submit("racon", {"threads": 4, "workload": "unit"})
        with pytest.raises(ValueError):
            deployment.app.run_job(job)
        assert job.state is JobState.ERROR
        node.release_cpus(token)
