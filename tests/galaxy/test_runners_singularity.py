"""Singularity job runner: --nv wiring and the bind-mode fix."""

import pytest

from repro.galaxy.job import JobState
from repro.galaxy.runners.singularity import SingularityJobRunner


@pytest.fixture
def singularity_deployment(deployment):
    deployment.route_tool_to("racon", "singularity_gpu")
    deployment.registry.pull("gulsumgudukbay/racon_dockerfile:latest")
    return deployment


def run_racon(dep, **params):
    defaults = {"threads": 2, "batches": 4, "workload": "unit"}
    defaults.update(params)
    return dep.run_tool("racon", defaults)


class TestSingularityExecution:
    def test_job_completes_with_nv(self, singularity_deployment):
        job = run_racon(singularity_deployment)
        assert job.state is JobState.OK
        command = singularity_deployment.singularity_runtime.run_log[-1].command_line
        assert "--nv" in command

    def test_bind_modes_stripped_with_nv(self, singularity_deployment):
        """GYAN's fix: rw/ro flags removed when the GPU flag is added."""
        run_racon(singularity_deployment)
        command = singularity_deployment.singularity_runtime.run_log[-1].command_line
        assert ":rw" not in command and ":ro" not in command
        assert "/data/working" in command

    def test_without_fix_singularity31_fails(self, singularity_deployment):
        broken = SingularityJobRunner(
            singularity_deployment.app,
            singularity=singularity_deployment.singularity_runtime,
            gpu_mapper=singularity_deployment.mapper,
            nv_flag_provider=lambda env: env.get("GALAXY_GPU_ENABLED") == "true",
            strip_bind_modes_with_nv=False,
        )
        job = singularity_deployment.app.submit("racon", {"workload": "unit"})
        singularity_deployment.app.environment["GALAXY_GPU_ENABLED"] = "true"
        broken.queue_job(
            job, singularity_deployment.job_config.destination("singularity_gpu")
        )
        assert job.state is JobState.ERROR
        assert "invalid option" in job.stderr

    def test_cpu_job_keeps_bind_modes(self, singularity_deployment):
        """The fix only applies alongside --nv; CPU containers are
        untouched (original flow retained)."""
        from repro.galaxy.tool_xml import parse_tool_xml

        singularity_deployment.app.install_tool(
            parse_tool_xml(
                '<tool id="cpu_in_sif">'
                "<requirements>"
                '<container type="docker">gulsumgudukbay/racon_dockerfile:latest</container>'
                "</requirements>"
                "<command>racon -t 1</command></tool>"
            )
        )
        singularity_deployment.route_tool_to("cpu_in_sif", "singularity_gpu")
        job = singularity_deployment.run_tool("cpu_in_sif", {"workload": "unit"})
        assert job.state is JobState.OK
        command = singularity_deployment.singularity_runtime.run_log[-1].command_line
        assert "--nv" not in command
        assert ":rw" in command

    def test_overhead_cheaper_than_docker(self, singularity_deployment):
        job = run_racon(singularity_deployment)
        assert job.metrics.breakdown["container_launch"] < 0.3
