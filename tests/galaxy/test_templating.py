"""CheetahLite template engine."""

import pytest
from hypothesis import given, strategies as st

from repro.galaxy.errors import TemplateError
from repro.galaxy.templating import CheetahLite


class TestSubstitution:
    def test_plain_and_braced(self):
        template = CheetahLite("run $tool with ${threads}")
        assert template.render({"tool": "racon", "threads": 4}) == "run racon with 4"

    def test_dotted_access_on_mappings_and_objects(self):
        class Obj:
            value = 7

        template = CheetahLite("$a.b $o.value")
        assert template.render({"a": {"b": 3}, "o": Obj()}) == "3 7"

    def test_none_renders_empty(self):
        assert CheetahLite("x$maybe!").render({"maybe": None}) == "x!"

    def test_undefined_variable_raises(self):
        with pytest.raises(TemplateError):
            CheetahLite("$missing").render({})

    def test_dunder_names_allowed(self):
        """GYAN's __galaxy_gpu_enabled__ key must resolve (paper Code 3)."""
        template = CheetahLite("$__galaxy_gpu_enabled__")
        assert template.render({"__galaxy_gpu_enabled__": "true"}) == "true"

    def test_braced_expression(self):
        assert CheetahLite("${threads * 2}").render({"threads": 3}) == "6"


class TestConditionals:
    RACON = CheetahLite(
        "#if $__galaxy_gpu_enabled__ == \"true\"\n"
        "racon_gpu --cudapoa-batches $batches\n"
        "#else\n"
        "racon -t $threads\n"
        "#end if"
    )

    def test_gpu_arm(self):
        out = self.RACON.render_command(
            {"__galaxy_gpu_enabled__": "true", "batches": 16, "threads": 4}
        )
        assert out == "racon_gpu --cudapoa-batches 16"

    def test_cpu_arm(self):
        out = self.RACON.render_command(
            {"__galaxy_gpu_enabled__": "false", "batches": 16, "threads": 4}
        )
        assert out == "racon -t 4"

    def test_elif_chain(self):
        template = CheetahLite(
            "#if $n > 10\nbig\n#elif $n > 5\nmedium\n#else\nsmall\n#end if"
        )
        assert template.render_command({"n": 20}) == "big"
        assert template.render_command({"n": 7}) == "medium"
        assert template.render_command({"n": 1}) == "small"

    def test_nested_ifs(self):
        template = CheetahLite(
            "#if $a\n#if $b\nboth\n#else\nonly-a\n#end if\n#end if"
        )
        assert template.render_command({"a": True, "b": True}) == "both"
        assert template.render_command({"a": True, "b": False}) == "only-a"
        assert template.render_command({"a": False, "b": True}) == ""

    def test_unterminated_if_rejected(self):
        with pytest.raises(TemplateError):
            CheetahLite("#if $a\nx")

    def test_orphan_end_rejected(self):
        with pytest.raises(TemplateError):
            CheetahLite("#end if")


class TestLoopsAndSet:
    def test_for_loop(self):
        template = CheetahLite("#for $f in $files\n--input $f\n#end for")
        out = template.render_command({"files": ["a.fa", "b.fa"]})
        assert out == "--input a.fa --input b.fa"

    def test_set_assignment(self):
        template = CheetahLite('#set $mode = "gpu" if $on else "cpu"\nmode=$mode')
        assert template.render_command({"on": True}) == "mode=gpu"
        assert template.render_command({"on": False}) == "mode=cpu"

    def test_malformed_set_rejected(self):
        with pytest.raises(TemplateError):
            CheetahLite("#set nonsense")

    def test_malformed_for_rejected(self):
        with pytest.raises(TemplateError):
            CheetahLite("#for broken\n#end for")


class TestSafety:
    def test_builtins_not_reachable(self):
        with pytest.raises(TemplateError):
            CheetahLite("${open('/etc/passwd')}").render({})

    def test_import_not_reachable(self):
        with pytest.raises(TemplateError):
            CheetahLite("${__import__('os')}").render({})

    def test_whitelisted_builtins_work(self):
        assert CheetahLite("${len(items)}").render({"items": [1, 2, 3]}) == "3"
        assert CheetahLite("${str(min(2, 1))}").render({}) == "1"


class TestRenderCommand:
    def test_whitespace_collapsed_to_single_line(self):
        template = CheetahLite("a\n\n   b\n c  ")
        assert template.render_command({}) == "a b c"

    @given(st.integers(min_value=0, max_value=99), st.integers(min_value=0, max_value=99))
    def test_values_always_land_verbatim(self, threads, batches):
        template = CheetahLite("tool -t $threads -b $batches")
        out = template.render_command({"threads": threads, "batches": batches})
        assert out == f"tool -t {threads} -b {batches}"
