"""Tool wrapper XML parsing: requirements, macros, GYAN's compute tag."""

import pytest

from repro.galaxy.errors import ToolParseError
from repro.galaxy.tool_xml import parse_macros_xml, parse_tool_xml
from repro.tools.wrappers import racon_macros_xml, racon_tool_xml


MINIMAL = """\
<tool id="t1" name="Tool" version="1.0">
  <command>echo hi</command>
</tool>
"""

GPU_TOOL = """\
<tool id="gpu_tool" name="G" version="2.0">
  <requirements>
    <requirement type="package" version="1.4">racon</requirement>
    <requirement type="compute" version="0,1">gpu</requirement>
    <container type="docker">org/image:tag</container>
    <container type="singularity">org/image.sif</container>
  </requirements>
  <command>run $x</command>
  <inputs>
    <param name="x" type="integer" value="3"/>
    <param name="flag" type="boolean" value="false"/>
    <param name="rate" type="float" value="0.5"/>
  </inputs>
  <outputs>
    <data name="out" format="fasta" label="Out"/>
  </outputs>
</tool>
"""


class TestBasicParsing:
    def test_minimal_tool(self):
        tool = parse_tool_xml(MINIMAL)
        assert tool.tool_id == "t1"
        assert not tool.requires_gpu
        assert tool.requested_gpu_ids == []

    def test_missing_id_rejected(self):
        with pytest.raises(ToolParseError):
            parse_tool_xml('<tool name="x"><command>y</command></tool>')

    def test_not_xml_rejected(self):
        with pytest.raises(ToolParseError):
            parse_tool_xml("this is not xml")

    def test_wrong_root_rejected(self):
        with pytest.raises(ToolParseError):
            parse_tool_xml("<nottool id='x'/>")


class TestComputeRequirement:
    def test_gpu_requirement_recognised(self):
        tool = parse_tool_xml(GPU_TOOL)
        assert tool.requires_gpu
        assert tool.compute_requirement.is_gpu_compute

    def test_version_tag_carries_gpu_ids(self):
        """§IV-C: the version XML tag corresponds to the GPU minor IDs."""
        assert parse_tool_xml(GPU_TOOL).requested_gpu_ids == ["0", "1"]

    def test_cpu_value_means_no_gpu(self):
        xml = GPU_TOOL.replace(
            '<requirement type="compute" version="0,1">gpu</requirement>',
            '<requirement type="compute">cpu</requirement>',
        )
        tool = parse_tool_xml(xml)
        assert not tool.requires_gpu
        assert tool.compute_requirement is not None

    def test_invalid_compute_value_rejected(self):
        xml = GPU_TOOL.replace(">gpu<", ">tpu<")
        with pytest.raises(ToolParseError):
            parse_tool_xml(xml)

    def test_duplicate_compute_requirement_rejected(self):
        xml = GPU_TOOL.replace(
            '<requirement type="compute" version="0,1">gpu</requirement>',
            '<requirement type="compute">gpu</requirement>'
            '<requirement type="compute">cpu</requirement>',
        )
        with pytest.raises(ToolParseError):
            parse_tool_xml(xml)

    def test_no_gpu_preference_when_version_absent(self):
        xml = GPU_TOOL.replace(' version="0,1">gpu<', ">gpu<")
        tool = parse_tool_xml(xml)
        assert tool.requires_gpu and tool.requested_gpu_ids == []


class TestContainersAndParams:
    def test_container_lookup_by_type(self):
        tool = parse_tool_xml(GPU_TOOL)
        assert tool.container_for("docker").identifier == "org/image:tag"
        assert tool.container_for("singularity").identifier == "org/image.sif"
        assert tool.container_for("podman") is None

    def test_parameter_coercion(self):
        tool = parse_tool_xml(GPU_TOOL)
        assert tool.parameter("x").coerce("7") == 7
        assert tool.parameter("x").coerce(None) == 3  # default
        assert tool.parameter("flag").coerce("true") is True
        assert tool.parameter("flag").coerce(None) is False
        assert tool.parameter("rate").coerce("0.9") == pytest.approx(0.9)

    def test_outputs_parsed(self):
        tool = parse_tool_xml(GPU_TOOL)
        assert tool.outputs[0].name == "out"
        assert tool.outputs[0].format == "fasta"


class TestMacros:
    def test_macro_expansion_in_paper_wrapper(self):
        """Paper Codes 1+3: requirements arrive through the macro."""
        tool = parse_tool_xml(
            racon_tool_xml(), macros={"macros.xml": racon_macros_xml("0")}
        )
        assert tool.tool_id == "racon"
        assert tool.requires_gpu
        assert tool.requested_gpu_ids == ["0"]
        assert tool.container_for("docker").identifier.startswith("gulsumgudukbay/")
        assert tool.version == "1.4.20"  # @TOOL_VERSION@ token expanded

    def test_missing_macro_import_rejected(self):
        with pytest.raises(ToolParseError):
            parse_tool_xml(racon_tool_xml(), macros={})

    def test_unknown_macro_name_rejected(self):
        xml = '<tool id="x"><macros><import>m</import></macros><expand macro="nope"/></tool>'
        with pytest.raises(ToolParseError):
            parse_tool_xml(xml, macros={"m": "<macros><xml name='other'/></macros>"})

    def test_parse_macros_xml(self):
        library = parse_macros_xml(racon_macros_xml("1"))
        assert "requirements" in library.xml_macros
        assert library.tokens["@TOOL_VERSION@"] == "1.4.20"

    def test_macros_validation(self):
        with pytest.raises(ToolParseError):
            parse_macros_xml("<notmacros/>")
        with pytest.raises(ToolParseError):
            parse_macros_xml("<macros><xml/></macros>")  # missing name


class TestBooleanCoercionDelegation:
    """ToolParameter.coerce must share job_conf's truthy table (it used
    to keep its own, which rejected "on" and unstripped input)."""

    @pytest.mark.parametrize("raw,expected", [
        ("true", True), ("yes", True), ("on", True), ("1", True),
        (" True ", True), ("false", False), ("off", False), ("no", False),
        ("0", False), ("anything-else", False),
    ])
    def test_matches_parse_bool_param(self, raw, expected):
        tool = parse_tool_xml(GPU_TOOL)
        assert tool.parameter("flag").coerce(raw) is expected

    def test_tables_cannot_drift(self):
        from repro.galaxy.job_conf import parse_bool_param

        tool = parse_tool_xml(GPU_TOOL)
        for raw in ("true", "True", "yes", "on", "1", " on ", "false",
                    "off", "", "2", "enabled"):
            assert tool.parameter("flag").coerce(raw) is parse_bool_param(raw)


GPU_MEMORY_TOOL = """\
<tool id="heavy" name="H" version="1.0">
  <requirements>
    <requirement type="compute" version="0">gpu</requirement>
    <requirement type="resource" version="{version}">gpu_memory_mib</requirement>
  </requirements>
  <command>run</command>
</tool>
"""


class TestGpuMemoryResource:
    def test_declared_demand_parsed(self):
        tool = parse_tool_xml(GPU_MEMORY_TOOL.format(version="8192"))
        assert tool.declared_gpu_memory_mib == 8192

    def test_absent_means_none(self):
        assert parse_tool_xml(MINIMAL).declared_gpu_memory_mib is None
        assert parse_tool_xml(GPU_TOOL).declared_gpu_memory_mib is None

    @pytest.mark.parametrize("bad", ["lots", "8 GiB", "", "0", "-5"])
    def test_invalid_demand_rejected(self, bad):
        with pytest.raises(ToolParseError):
            parse_tool_xml(GPU_MEMORY_TOOL.format(version=bad))
