"""Versioned toolbox: lineages, sections, search."""

import pytest

from repro.galaxy.errors import ToolNotFoundError
from repro.galaxy.tool_xml import parse_tool_xml
from repro.galaxy.toolbox import ToolBox, ToolLineage, ToolVersionError


def make_tool(tool_id: str, version: str, name: str | None = None, gpu: bool = False):
    requirement = (
        '<requirements><requirement type="compute">gpu</requirement></requirements>'
        if gpu
        else ""
    )
    return parse_tool_xml(
        f'<tool id="{tool_id}" name="{name or tool_id}" version="{version}">'
        f"{requirement}<command>{tool_id}</command></tool>"
    )


@pytest.fixture
def toolbox():
    box = ToolBox()
    box.install(make_tool("racon", "1.4.20", "Racon consensus", gpu=True), "Polishing")
    box.install(make_tool("racon", "1.5.0", "Racon consensus", gpu=True), "Polishing")
    box.install(make_tool("bonito", "0.3.2", "Bonito basecaller", gpu=True), "Basecalling")
    box.install(make_tool("seqstats", "1.0", "Sequence statistics"))
    return box


class TestLineages:
    def test_latest_resolves_highest_version(self, toolbox):
        assert toolbox.get("racon").version == "1.5.0"

    def test_version_pinning(self, toolbox):
        assert toolbox.get("racon", "1.4.20").version == "1.4.20"

    def test_unknown_version_lists_installed(self, toolbox):
        with pytest.raises(ToolVersionError, match="1.4.20"):
            toolbox.get("racon", "9.9")

    def test_unknown_tool(self, toolbox):
        with pytest.raises(ToolNotFoundError):
            toolbox.get("ghost")

    def test_numeric_version_ordering(self):
        lineage = ToolLineage(tool_id="t")
        for version in ("1.10.0", "1.2.0", "1.9.9"):
            lineage.install(make_tool("t", version))
        assert lineage.sorted_versions() == ["1.2.0", "1.9.9", "1.10.0"]
        assert lineage.latest.version == "1.10.0"

    def test_reinstall_replaces(self, toolbox):
        replacement = make_tool("bonito", "0.3.2", "Bonito v2")
        toolbox.install(replacement)
        assert toolbox.get("bonito").name == "Bonito v2"

    def test_wrong_lineage_rejected(self):
        lineage = ToolLineage(tool_id="a")
        with pytest.raises(ToolVersionError):
            lineage.install(make_tool("b", "1.0"))

    def test_empty_lineage_latest_rejected(self):
        with pytest.raises(ToolVersionError):
            _ = ToolLineage(tool_id="x").latest


class TestPanel:
    def test_sections_layout(self, toolbox):
        sections = toolbox.sections()
        assert sections["Polishing"] == ["racon"]
        assert sections["Basecalling"] == ["bonito"]
        assert sections["Tools"] == ["seqstats"]

    def test_section_of(self, toolbox):
        assert toolbox.section_of("racon") == "Polishing"
        with pytest.raises(ToolNotFoundError):
            toolbox.section_of("ghost")

    def test_search_by_id_and_name(self, toolbox):
        assert [t.tool_id for t in toolbox.search("racon")] == ["racon"]
        assert [t.tool_id for t in toolbox.search("basecaller")] == ["bonito"]
        assert [t.tool_id for t in toolbox.search("s")] == ["bonito", "racon", "seqstats"]
        assert toolbox.search("") == []

    def test_gpu_capable_listing(self, toolbox):
        assert [t.tool_id for t in toolbox.gpu_capable_tools()] == ["bonito", "racon"]

    def test_len_counts_lineages(self, toolbox):
        assert len(toolbox) == 3


class TestAppIntegration:
    def test_attach_migrates_and_upgrades(self, deployment):
        box = ToolBox()
        deployment.app.use_toolbox(box)
        assert deployment.app.toolbox is box
        assert len(box) == 3  # racon, bonito, seqstats migrated
        # Installing an upgrade flips the app's resolved version.
        deployment.app.install_tool(
            make_tool("racon", "9.0", "Racon consensus", gpu=True), "Polishing"
        )
        assert deployment.app.tool("racon").version == "9.0"
        assert box.lineage("racon").sorted_versions()[-1] == "9.0"

    def test_jobs_run_latest_after_upgrade(self, deployment):
        from repro.galaxy.app import ToolExecutionResult

        deployment.app.use_toolbox(ToolBox())
        upgraded = parse_tool_xml(
            '<tool id="racon" version="9.0"><requirements>'
            '<requirement type="compute">gpu</requirement></requirements>'
            "<command>racon_v9</command></tool>"
        )
        deployment.app.install_tool(upgraded)
        deployment.app.register_executor(
            "racon_v9", lambda argv, ctx: ToolExecutionResult(stdout="v9")
        )
        job = deployment.run_tool("racon", {"workload": "unit"})
        assert job.command_line == "racon_v9"
        assert job.stdout == "v9"
