"""Galaxy workflows: definition, binding resolution, chained execution."""

import pytest

from repro.galaxy.app import ToolExecutionResult
from repro.galaxy.job import JobState
from repro.galaxy.workflow import (
    FromStep,
    WorkflowDefinition,
    WorkflowError,
    WorkflowRunner,
)


@pytest.fixture
def workflow_deployment(deployment):
    """Deployment with two toy chained tools plus the paper tools."""
    from repro.galaxy.tool_xml import parse_tool_xml

    deployment.app.install_tool(
        parse_tool_xml('<tool id="producer"><command>produce $value</command></tool>')
    )
    deployment.app.install_tool(
        parse_tool_xml('<tool id="consumer"><command>consume $amount</command></tool>')
    )

    def produce(argv, ctx):
        ctx.clock.advance(1.0)
        return ToolExecutionResult(result=int(argv[1]) * 10)

    def consume(argv, ctx):
        ctx.clock.advance(1.0)
        return ToolExecutionResult(result=f"consumed {argv[1]}")

    deployment.app.register_executor("produce", produce)
    deployment.app.register_executor("consume", consume)
    return deployment


class TestDefinition:
    def test_builder_and_labels(self):
        wf = WorkflowDefinition(name="wf")
        wf.add_step("a")
        step = wf.add_step("b", label="second")
        assert [s.label for s in wf.steps] == ["step_0", "second"]
        assert step.tool_id == "b"

    def test_duplicate_labels_rejected(self):
        wf = WorkflowDefinition(name="wf")
        wf.add_step("a", label="x")
        with pytest.raises(WorkflowError):
            wf.add_step("b", label="x")

    def test_validation_empty(self, workflow_deployment):
        with pytest.raises(WorkflowError):
            WorkflowDefinition(name="empty").validate(workflow_deployment.app)

    def test_validation_unknown_tool(self, workflow_deployment):
        wf = WorkflowDefinition(name="wf")
        wf.add_step("ghost_tool")
        from repro.galaxy.errors import ToolNotFoundError

        with pytest.raises(ToolNotFoundError):
            wf.validate(workflow_deployment.app)

    def test_validation_forward_binding_rejected(self, workflow_deployment):
        wf = WorkflowDefinition(name="wf")
        wf.add_step("producer", {"value": 1}, bindings={"amount": FromStep(1)})
        wf.add_step("consumer")
        with pytest.raises(WorkflowError):
            wf.validate(workflow_deployment.app)

    def test_validation_unknown_label_rejected(self, workflow_deployment):
        wf = WorkflowDefinition(name="wf")
        wf.add_step("producer", {"value": 1})
        wf.add_step("consumer", bindings={"amount": FromStep("nope")})
        with pytest.raises(WorkflowError):
            wf.validate(workflow_deployment.app)


class TestExecution:
    def test_two_step_chain_with_binding(self, workflow_deployment):
        wf = WorkflowDefinition(name="chain")
        wf.add_step("producer", {"value": 7}, label="make")
        wf.add_step("consumer", bindings={"amount": FromStep("make")})
        invocation = WorkflowRunner(workflow_deployment.app).invoke(wf)
        assert invocation.succeeded
        assert invocation.jobs[0].result == 70
        assert invocation.jobs[1].command_line == "consume 70"
        assert invocation.jobs[1].result == "consumed 70"

    def test_extract_function_in_binding(self, workflow_deployment):
        wf = WorkflowDefinition(name="chain")
        wf.add_step("producer", {"value": 3})
        wf.add_step(
            "consumer",
            bindings={"amount": FromStep(0, extract=lambda v: v + 1)},
        )
        invocation = WorkflowRunner(workflow_deployment.app).invoke(wf)
        assert invocation.jobs[1].command_line == "consume 31"

    def test_callable_binding(self, workflow_deployment):
        wf = WorkflowDefinition(name="chain")
        wf.add_step("producer", {"value": 2})
        wf.add_step(
            "consumer",
            bindings={"amount": lambda inv: inv.jobs[0].result * 2},
        )
        invocation = WorkflowRunner(workflow_deployment.app).invoke(wf)
        assert invocation.jobs[1].command_line == "consume 40"

    def test_failing_step_stops_workflow(self, workflow_deployment):
        def boom(argv, ctx):
            raise RuntimeError("crash")

        workflow_deployment.app.register_executor("produce", boom)
        wf = WorkflowDefinition(name="chain")
        wf.add_step("producer", {"value": 1})
        wf.add_step("consumer", bindings={"amount": FromStep(0)})
        invocation = WorkflowRunner(workflow_deployment.app).invoke(wf)
        assert not invocation.succeeded
        assert invocation.state is JobState.ERROR
        assert len(invocation.jobs) == 1  # second step never submitted

    def test_steps_individually_gpu_mapped(self, workflow_deployment):
        """A workflow mixes GPU and CPU tools; GYAN maps each step."""
        wf = WorkflowDefinition(name="mixed")
        wf.add_step("racon", {"threads": 4, "workload": "unit"})
        wf.add_step("seqstats", {"threads": 1})
        invocation = WorkflowRunner(workflow_deployment.app).invoke(wf)
        assert invocation.succeeded
        assert invocation.jobs[0].metrics.destination_id == "local_gpu"
        assert invocation.jobs[1].metrics.destination_id == "local_cpu"
        assert invocation.total_runtime_seconds > 0

    def test_job_for_lookup(self, workflow_deployment):
        wf = WorkflowDefinition(name="chain")
        wf.add_step("producer", {"value": 1}, label="make")
        invocation = WorkflowRunner(workflow_deployment.app).invoke(wf)
        assert invocation.job_for("make") is invocation.jobs[0]
        assert invocation.job_for(0) is invocation.jobs[0]
        assert invocation.job_for("ghost") is None
        assert invocation.job_for(5) is None
