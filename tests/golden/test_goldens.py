"""Golden-file tests: freeze every serialised surface the repo ships.

Each test renders one externally-consumed artifact — the ``nvidia-smi``
emulator's XML/table output, the JSON of ``lint``/``verify``/``bench``
and the four ``trace`` artifacts — and compares it byte-for-byte against
a checked-in snapshot under ``tests/golden/goldens/``.  Schema drift
(a renamed key, a reordered field, a changed number format) fails CI
with a readable unified diff instead of a silent consumer break.

To bless an intentional change::

    GYAN_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/golden

then review the golden diff like any other code change.
"""

from __future__ import annotations

import difflib
import json
import os
from pathlib import Path

import pytest

HERE = Path(__file__).parent
GOLDEN_DIR = HERE / "goldens"
UPDATE_VAR = "GYAN_UPDATE_GOLDENS"


def assert_matches_golden(name: str, actual: str) -> None:
    """Compare ``actual`` to ``goldens/<name>``, or rewrite it in update mode."""
    path = GOLDEN_DIR / name
    if os.environ.get(UPDATE_VAR) == "1":
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(actual, encoding="utf-8")
        return
    if not path.exists():
        pytest.fail(
            f"missing golden file goldens/{name} — generate it with "
            f"{UPDATE_VAR}=1 python -m pytest tests/golden"
        )
    expected = path.read_text(encoding="utf-8")
    if actual == expected:
        return
    diff = "".join(
        difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile=f"goldens/{name} (checked in)",
            tofile=f"{name} (this run)",
        )
    )
    pytest.fail(
        f"output drifted from goldens/{name}:\n{diff}"
        f"if the change is intentional, bless it with "
        f"{UPDATE_VAR}=1 python -m pytest tests/golden",
        pytrace=False,
    )


# --------------------------------------------------------------------- #
# nvidia-smi emulator
# --------------------------------------------------------------------- #
def _busy_host():
    """A deterministic two-GPU host with processes on both dies."""
    from repro.gpusim.host import GPUHost

    host = GPUHost(device_count=2)
    heavy = host.launch_process(
        name="/usr/bin/racon_gpu", cuda_visible_devices="0"
    )
    host.device(0).memory.alloc(2_048 * 1024 * 1024, heavy.pid)
    host.launch_process(name="/usr/bin/bonito", cuda_visible_devices="1")
    host.clock.advance(42.5)
    return host


class TestSmiGoldens:
    def test_query_xml(self):
        from repro.gpusim.smi import run_query

        stdout, stderr = run_query(_busy_host(), "-q -x")
        assert stderr == ""
        assert_matches_golden("smi_query.xml", stdout)

    def test_console_table(self):
        from repro.gpusim.smi import render_table

        assert_matches_golden("smi_table.txt", render_table(_busy_host()))

    def test_topology_matrix(self):
        from repro.gpusim.smi import render_topology

        assert_matches_golden("smi_topology.txt", render_topology(_busy_host()))


# --------------------------------------------------------------------- #
# lint / verify JSON
# --------------------------------------------------------------------- #
class TestAnalysisGoldens:
    def test_lint_json(self, monkeypatch):
        from repro.analysis.linter import LintOptions, lint_paths

        monkeypatch.chdir(HERE)
        report = lint_paths(["fixtures/lint"], LintOptions())
        assert report.findings, "the fixture must keep tripping rules"
        assert_matches_golden("lint.json", report.render_json() + "\n")

    def test_verify_json(self, monkeypatch):
        from repro.analysis.verifier import Scope, VerifyOptions, verify_paths

        monkeypatch.chdir(HERE)
        options = VerifyOptions(
            scope=Scope(devices=2, jobs=2, faults=1, max_replays=60)
        )
        report = verify_paths(["fixtures/verify"], options)
        assert not report.errors
        assert report.findings, "the fixture must keep tripping passes"
        assert_matches_golden("verify.json", report.render_json() + "\n")


# --------------------------------------------------------------------- #
# bench JSON (schema only: wall-clock numbers are masked)
# --------------------------------------------------------------------- #
def _normalised_bench_json() -> str:
    from repro.benchmarking import SUITE_NAME, run_suite, sim_core_suite

    report = run_suite(sim_core_suite(quick=True), suite=SUITE_NAME,
                       repeats=1, quick=True)
    data = json.loads(report.render_json())
    for scenario in data["scenarios"]:
        # Wall-clock figures vary run to run; the schema around them —
        # key names, scenario names, workload facts, simulated time —
        # must not.
        scenario["wall_seconds"] = {
            key: "<wall>" for key in sorted(scenario["wall_seconds"])
        }
        scenario["sim_seconds_per_wall_second"] = "<wall>"
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


class TestBenchGolden:
    def test_report_schema(self):
        assert_matches_golden("bench_schema.json", _normalised_bench_json())


# --------------------------------------------------------------------- #
# fleet JSON (fully deterministic: virtual clock only, no masking)
# --------------------------------------------------------------------- #
def _fleet_day():
    """A small half-day with a storm: enough to grow and drain the pool."""
    from repro.workloads.diurnal import BurstStorm, DiurnalProfile

    return DiurnalProfile(
        users=300, jobs_per_user_day=3.0, days=0.5, tick_seconds=300.0,
        seed=11,
        storms=(BurstStorm(start=20_000.0, duration=4_000.0,
                           multiplier=6.0),),
    )


class TestFleetGoldens:
    def test_static_fleet_json(self):
        from repro.cluster.fleet import FleetConfig, run_fleet

        result = run_fleet(
            FleetConfig(nodes=4, gpus_per_node=2, queue_limit=4,
                        deadline_seconds=1800.0),
            _fleet_day(),
        )
        assert_matches_golden("fleet/static.json", result.to_json())

    def test_autoscaled_fleet_json(self):
        from repro.cluster.autoscale import AutoscalerConfig
        from repro.cluster.fleet import FleetConfig, run_fleet

        auto = AutoscalerConfig(
            min_nodes=2, max_nodes=6, eval_interval_s=300.0,
            provision_lag_s=600.0, scale_up_step=2, scale_down_step=2,
            hysteresis_windows=2, cooldown_s=600.0,
        )
        result = run_fleet(
            FleetConfig(nodes=6, gpus_per_node=2, queue_limit=4,
                        deadline_seconds=1800.0, autoscale=auto),
            _fleet_day(),
        )
        # The golden must freeze a run that actually flexes the pool:
        # growth, drain and the cost meter all appear in the payload.
        assert result.scale_ups > 0 and result.scale_downs > 0
        assert_matches_golden("fleet/autoscale.json", result.to_json())

    def test_fleet_ab_cli_json(self, capsys):
        from repro.cli import main

        assert main([
            "fleet", "--ab", "--jobs", "4000", "--nodes", "8",
            "--gpus-per-node", "2", "--queue-limit", "4",
            "--format", "json",
        ]) == 0
        assert_matches_golden("fleet/ab.json", capsys.readouterr().out)


# --------------------------------------------------------------------- #
# trace artifacts
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def workload_artifacts():
    from repro.observability.driver import trace_workload

    return trace_workload(jobs=4, interarrival=2.0, seed=3)


class TestTraceGoldens:
    def test_perfetto(self, workload_artifacts):
        assert_matches_golden(
            "trace/trace.perfetto.json", workload_artifacts.perfetto
        )

    def test_prometheus(self, workload_artifacts):
        assert_matches_golden(
            "trace/metrics.prom", workload_artifacts.prometheus
        )

    def test_timeline(self, workload_artifacts):
        assert_matches_golden(
            "trace/timeline.txt", workload_artifacts.timeline
        )

    def test_summary(self, workload_artifacts):
        assert_matches_golden(
            "trace/summary.json", workload_artifacts.summary_json()
        )

    def test_chaos_summary(self):
        from repro.observability.driver import trace_chaos
        from repro.workloads.chaos import resolve_plan

        artifacts = trace_chaos(resolve_plan("k80-die-midrun", seed=2), jobs=4)
        assert_matches_golden(
            "trace/chaos_summary.json", artifacts.summary_json()
        )
