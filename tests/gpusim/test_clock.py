"""Virtual clock and timeline behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.clock import Timeline, VirtualClock
from repro.gpusim.errors import ClockError


class TestVirtualClock:
    def test_starts_at_epoch(self):
        assert VirtualClock().now == 0.0
        assert VirtualClock(epoch=10.0).now == 10.0

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.5) == 3.0
        assert clock.now == 3.0

    def test_advance_to_absolute(self):
        clock = VirtualClock()
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_zero_advance_is_legal(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ClockError):
            clock.advance(-1.0)

    def test_backwards_advance_to_rejected(self):
        clock = VirtualClock()
        clock.advance(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.0)

    def test_callbacks_fire_in_order(self):
        clock = VirtualClock()
        fired = []
        clock.call_at(3.0, lambda now: fired.append(("c", now)))
        clock.call_at(1.0, lambda now: fired.append(("a", now)))
        clock.call_at(2.0, lambda now: fired.append(("b", now)))
        clock.advance(5.0)
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_callback_sees_its_own_instant(self):
        clock = VirtualClock()
        seen = []
        clock.call_later(1.0, lambda now: seen.append(now))
        clock.advance(10.0)
        assert seen == [1.0]
        assert clock.now == 10.0

    def test_callbacks_beyond_horizon_stay_pending(self):
        clock = VirtualClock()
        fired = []
        clock.call_at(100.0, lambda now: fired.append(now))
        clock.advance(5.0)
        assert fired == []
        assert clock.pending_count() == 1

    def test_rearm_from_callback(self):
        """A callback may schedule the next one (how the monitor samples)."""
        clock = VirtualClock()
        ticks = []

        def tick(now):
            ticks.append(now)
            if now < 5.0:
                clock.call_later(1.0, tick)

        clock.call_later(1.0, tick)
        clock.advance(10.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_cancel_all(self):
        clock = VirtualClock()
        clock.call_at(1.0, lambda now: None)
        clock.call_at(2.0, lambda now: None)
        assert clock.cancel_all() == 2
        assert clock.pending_count() == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock().call_later(-1.0, lambda now: None)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=30))
    def test_monotone_under_any_advance_sequence(self, deltas):
        clock = VirtualClock()
        previous = clock.now
        for delta in deltas:
            clock.advance(delta)
            assert clock.now >= previous
            previous = clock.now


class TestTimeline:
    def test_records_and_iterates_chronologically(self):
        timeline = Timeline()
        timeline.record(2.0, "b")
        timeline.record(1.0, "a")
        timeline.record(3.0, "c")
        assert [e.label for e in timeline] == ["a", "b", "c"]

    def test_between_is_half_open(self):
        timeline = Timeline()
        for t in (0.0, 1.0, 2.0, 3.0):
            timeline.record(t, f"e{t}")
        labels = [e.label for e in timeline.between(1.0, 3.0)]
        assert labels == ["e1.0", "e2.0"]

    def test_labelled_filter(self):
        timeline = Timeline()
        timeline.record(0.0, "x")
        timeline.record(1.0, "y")
        timeline.record(2.0, "x")
        assert len(timeline.labelled("x")) == 2

    def test_stable_order_for_equal_times(self):
        timeline = Timeline()
        first = timeline.record(1.0, "first")
        second = timeline.record(1.0, "second")
        ordered = list(timeline)
        assert ordered.index(first) < ordered.index(second)

    @given(st.lists(st.floats(min_value=0, max_value=100), max_size=50))
    def test_iteration_always_sorted(self, times):
        timeline = Timeline()
        for i, t in enumerate(times):
            timeline.record(t, str(i))
        ordered = [e.time for e in timeline]
        assert ordered == sorted(ordered)

    def test_interleaved_inserts_stay_sorted(self):
        """Regression: an out-of-order record used to leave the sorted
        flag set once a later in-order append was seen, so queries could
        observe a partially sorted list.  Interleave both patterns."""
        timeline = Timeline()
        for when in (10.0, 5.0, 12.0, 7.0, 12.0, 6.0, 20.0, 1.0):
            timeline.record(when, f"e{when}")
        ordered = [e.time for e in timeline]
        assert ordered == sorted(ordered)
        assert [e.time for e in timeline.between(5.0, 12.0)] == [
            5.0, 6.0, 7.0, 10.0,
        ]

    def test_queries_consistent_after_late_out_of_order_insert(self):
        timeline = Timeline()
        for when in range(10):
            timeline.record(float(when), "tick")
        timeline.record(4.5, "late")
        assert [e.label for e in timeline.between(4.0, 6.0)] == [
            "tick", "late", "tick",
        ]
        assert [e.time for e in timeline.labelled("tick")] == [
            float(when) for when in range(10)
        ]
        assert [e.time for e in timeline.labelled("late")] == [4.5]

    def test_labelled_sorted_after_interleave(self):
        timeline = Timeline()
        timeline.record(3.0, "x")
        timeline.record(1.0, "x")
        timeline.record(2.0, "x")
        assert [e.time for e in timeline.labelled("x")] == [1.0, 2.0, 3.0]


class TestTimerHandles:
    def test_cancelled_timer_never_fires(self):
        clock = VirtualClock()
        fired = []
        handle = clock.call_at(1.0, lambda now: fired.append(now))
        assert handle.cancel()
        clock.advance(5.0)
        assert fired == []

    def test_cancel_is_idempotent(self):
        clock = VirtualClock()
        handle = clock.call_at(1.0, lambda now: None)
        assert handle.cancel()
        assert not handle.cancel()

    def test_cancel_after_fire_returns_false(self):
        clock = VirtualClock()
        handle = clock.call_at(1.0, lambda now: None)
        clock.advance(2.0)
        assert not handle.active
        assert not handle.cancel()

    def test_pending_count_tracks_cancellation(self):
        clock = VirtualClock()
        keep = clock.call_at(1.0, lambda now: None)
        drop = clock.call_at(2.0, lambda now: None)
        assert clock.pending_count() == 2
        drop.cancel()
        assert clock.pending_count() == 1
        drop.cancel()  # idempotent: no double decrement
        assert clock.pending_count() == 1
        clock.advance(5.0)
        assert clock.pending_count() == 0
        assert not keep.active

    def test_other_timers_unaffected_by_cancel(self):
        clock = VirtualClock()
        fired = []
        clock.call_at(1.0, lambda now: fired.append("a"))
        clock.call_at(2.0, lambda now: fired.append("b")).cancel()
        clock.call_at(3.0, lambda now: fired.append("c"))
        clock.advance(5.0)
        assert fired == ["a", "c"]


class TestSpanListeners:
    def test_spans_partition_the_advance(self):
        """Callbacks split an advance into spans; between two firings
        simulated state cannot change, which is what lets the monitor
        sample whole spans in bulk."""
        clock = VirtualClock()
        spans = []
        clock.add_span_listener(lambda s, e, closed: spans.append((s, e, closed)))
        clock.call_at(2.0, lambda now: None)
        clock.call_at(4.0, lambda now: None)
        clock.advance(5.0)
        assert spans == [
            (0.0, 2.0, False),
            (2.0, 4.0, False),
            (4.0, 5.0, True),
        ]

    def test_plain_advance_is_one_closed_span(self):
        clock = VirtualClock()
        spans = []
        clock.add_span_listener(lambda s, e, closed: spans.append((s, e, closed)))
        clock.advance(7.5)
        assert spans == [(0.0, 7.5, True)]

    def test_removed_listener_stops_receiving(self):
        clock = VirtualClock()
        spans = []

        def listener(start, end, closed):
            spans.append((start, end, closed))

        clock.add_span_listener(listener)
        clock.advance(1.0)
        clock.remove_span_listener(listener)
        clock.remove_span_listener(listener)  # absent: no-op
        clock.advance(1.0)
        assert spans == [(0.0, 1.0, True)]
