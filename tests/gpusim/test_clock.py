"""Virtual clock and timeline behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.clock import Timeline, VirtualClock
from repro.gpusim.errors import ClockError


class TestVirtualClock:
    def test_starts_at_epoch(self):
        assert VirtualClock().now == 0.0
        assert VirtualClock(epoch=10.0).now == 10.0

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.5) == 3.0
        assert clock.now == 3.0

    def test_advance_to_absolute(self):
        clock = VirtualClock()
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_zero_advance_is_legal(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ClockError):
            clock.advance(-1.0)

    def test_backwards_advance_to_rejected(self):
        clock = VirtualClock()
        clock.advance(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.0)

    def test_callbacks_fire_in_order(self):
        clock = VirtualClock()
        fired = []
        clock.call_at(3.0, lambda now: fired.append(("c", now)))
        clock.call_at(1.0, lambda now: fired.append(("a", now)))
        clock.call_at(2.0, lambda now: fired.append(("b", now)))
        clock.advance(5.0)
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_callback_sees_its_own_instant(self):
        clock = VirtualClock()
        seen = []
        clock.call_later(1.0, lambda now: seen.append(now))
        clock.advance(10.0)
        assert seen == [1.0]
        assert clock.now == 10.0

    def test_callbacks_beyond_horizon_stay_pending(self):
        clock = VirtualClock()
        fired = []
        clock.call_at(100.0, lambda now: fired.append(now))
        clock.advance(5.0)
        assert fired == []
        assert clock.pending_count() == 1

    def test_rearm_from_callback(self):
        """A callback may schedule the next one (how the monitor samples)."""
        clock = VirtualClock()
        ticks = []

        def tick(now):
            ticks.append(now)
            if now < 5.0:
                clock.call_later(1.0, tick)

        clock.call_later(1.0, tick)
        clock.advance(10.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_cancel_all(self):
        clock = VirtualClock()
        clock.call_at(1.0, lambda now: None)
        clock.call_at(2.0, lambda now: None)
        assert clock.cancel_all() == 2
        assert clock.pending_count() == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock().call_later(-1.0, lambda now: None)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=30))
    def test_monotone_under_any_advance_sequence(self, deltas):
        clock = VirtualClock()
        previous = clock.now
        for delta in deltas:
            clock.advance(delta)
            assert clock.now >= previous
            previous = clock.now


class TestTimeline:
    def test_records_and_iterates_chronologically(self):
        timeline = Timeline()
        timeline.record(2.0, "b")
        timeline.record(1.0, "a")
        timeline.record(3.0, "c")
        assert [e.label for e in timeline] == ["a", "b", "c"]

    def test_between_is_half_open(self):
        timeline = Timeline()
        for t in (0.0, 1.0, 2.0, 3.0):
            timeline.record(t, f"e{t}")
        labels = [e.label for e in timeline.between(1.0, 3.0)]
        assert labels == ["e1.0", "e2.0"]

    def test_labelled_filter(self):
        timeline = Timeline()
        timeline.record(0.0, "x")
        timeline.record(1.0, "y")
        timeline.record(2.0, "x")
        assert len(timeline.labelled("x")) == 2

    def test_stable_order_for_equal_times(self):
        timeline = Timeline()
        first = timeline.record(1.0, "first")
        second = timeline.record(1.0, "second")
        ordered = list(timeline)
        assert ordered.index(first) < ordered.index(second)

    @given(st.lists(st.floats(min_value=0, max_value=100), max_size=50))
    def test_iteration_always_sorted(self, times):
        timeline = Timeline()
        for i, t in enumerate(times):
            timeline.record(t, str(i))
        ordered = [e.time for e in timeline]
        assert ordered == sorted(ordered)
