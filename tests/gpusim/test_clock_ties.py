"""Property tests for the clock's same-instant tie-break contract.

The determinism contract DET403 pins (and ``docs/determinism.md``
documents): callbacks scheduled at the same virtual instant fire
ordered by explicit tie-break key first, then strictly by registration
order.  500 seeded registration shuffles guard the registration-order
half; the key half gets its own adversarial orderings.
"""

from __future__ import annotations

import random

import pytest

from repro.gpusim.clock import VirtualClock


def test_same_instant_callbacks_fire_in_registration_order_500_shuffles():
    instant = 42.0
    labels = [f"cb{i}" for i in range(8)]
    for seed in range(500):
        order = list(labels)
        random.Random(seed).shuffle(order)
        clock = VirtualClock()
        fired: list[str] = []
        for label in order:
            clock.call_at(instant, lambda now, lbl=label: fired.append(lbl))
        clock.advance_to(instant)
        assert fired == order, f"seed {seed}: {fired} != {order}"


def test_keyed_ties_fire_in_key_order_regardless_of_registration():
    keys = [f"k{i:02d}" for i in range(8)]
    for seed in range(50):
        order = list(keys)
        random.Random(seed).shuffle(order)
        clock = VirtualClock()
        fired: list[str] = []
        for key in order:
            clock.call_at(7.0, lambda now, k=key: fired.append(k), key=key)
        clock.advance_to(7.0)
        assert fired == sorted(keys), f"seed {seed}: {fired}"


def test_keyed_before_unkeyed_is_key_string_order():
    # The empty key sorts before every non-empty key, so unkeyed timers
    # fire ahead of keyed ones at the same instant — part of the heap
    # ordering contract, pinned here so a refactor cannot drift it.
    clock = VirtualClock()
    fired: list[str] = []
    clock.call_at(1.0, lambda now: fired.append("keyed"), key="a")
    clock.call_at(1.0, lambda now: fired.append("unkeyed"))
    clock.advance_to(1.0)
    assert fired == ["unkeyed", "keyed"]


def test_same_key_falls_back_to_registration_order():
    clock = VirtualClock()
    fired: list[str] = []
    for label in ("first", "second", "third"):
        clock.call_at(3.0, lambda now, lbl=label: fired.append(lbl), key="same")
    clock.advance_to(3.0)
    assert fired == ["first", "second", "third"]


def test_call_later_passes_key_through():
    clock = VirtualClock()
    fired: list[str] = []
    clock.call_later(2.0, lambda now: fired.append("z"), key="z")
    clock.call_later(2.0, lambda now: fired.append("a"), key="a")
    clock.advance_to(2.0)
    assert fired == ["a", "z"]


def test_cancel_inside_tie_skips_later_member():
    clock = VirtualClock()
    fired: list[str] = []
    handles = {}

    def cancel_b(now: float) -> None:
        fired.append("a")
        handles["b"].cancel()

    handles["a"] = clock.call_at(1.0, cancel_b)
    handles["b"] = clock.call_at(1.0, lambda now: fired.append("b"))
    clock.advance_to(1.0)
    assert fired == ["a"]
    assert clock.pending_count() == 0


def test_mixed_instants_never_interleave():
    for seed in range(50):
        rng = random.Random(seed)
        registrations = [(when, i) for when in (1.0, 2.0, 3.0) for i in range(4)]
        rng.shuffle(registrations)
        clock = VirtualClock()
        fired: list[tuple[float, int]] = []
        for when, i in registrations:
            clock.call_at(when, lambda now, w=when, j=i: fired.append((w, j)))
        clock.advance_to(3.0)
        # Instants in time order; within one instant, registration order.
        expected: list[tuple[float, int]] = []
        for when in (1.0, 2.0, 3.0):
            expected.extend(r for r in registrations if r[0] == when)
        assert fired == expected, f"seed {seed}"


@pytest.mark.parametrize("key", ["", "fault:0001"])
def test_timer_handle_exposes_key(key):
    clock = VirtualClock()
    handle = clock.call_at(1.0, lambda now: None, key=key)
    assert handle.key == key
