"""Device compute modes: why the paper's scatter needs Default mode."""

import pytest

from repro.gpusim.device import ComputeMode, ComputeModeError


class TestComputeModes:
    def test_default_allows_many_contexts(self, host):
        for _ in range(3):
            host.launch_process("tool", cuda_visible_devices="0")
        assert len(host.device(0).compute_processes()) == 3

    def test_exclusive_admits_one(self, host):
        host.device(0).compute_mode = ComputeMode.EXCLUSIVE_PROCESS
        host.launch_process("first", cuda_visible_devices="0")
        with pytest.raises(ComputeModeError):
            host.launch_process("second", cuda_visible_devices="0")

    def test_exclusive_frees_on_exit(self, host):
        host.device(0).compute_mode = ComputeMode.EXCLUSIVE_PROCESS
        proc = host.launch_process("first", cuda_visible_devices="0")
        host.terminate_process(proc.pid)
        host.launch_process("second", cuda_visible_devices="0")  # fine now

    def test_prohibited_rejects_all(self, host):
        host.device(1).compute_mode = ComputeMode.PROHIBITED
        with pytest.raises(ComputeModeError):
            host.launch_process("tool", cuda_visible_devices="1")

    def test_reattach_same_pid_allowed(self, host):
        host.device(0).compute_mode = ComputeMode.EXCLUSIVE_PROCESS
        proc = host.launch_process("tool", cuda_visible_devices="0")
        # idempotent re-attach of the live pid is not a second context
        host.device(0).attach_process(proc.pid, "tool")

    def test_case3_scatter_requires_default_mode(self):
        """The paper's Case 3 (processes 3 and 4 scattered onto busy
        GPUs) only works because the K80s ran in Default compute mode;
        under Exclusive_Process the same placement fails."""
        from repro.core import build_deployment
        from repro.tools.executors import register_paper_tools

        deployment = build_deployment()
        register_paper_tools(deployment.app)
        for device in deployment.gpu_host.devices:
            device.compute_mode = ComputeMode.EXCLUSIVE_PROCESS

        def launch(tool_id):
            job = deployment.app.submit(tool_id, {"workload": "unit"})
            destination = deployment.app.map_destination(job)
            runner = deployment.app.runner_for(destination)
            return job, runner, destination

        job1, runner1, dest1 = launch("racon")
        handle1 = runner1.launch(job1, dest1)
        job2, runner2, dest2 = launch("racon")
        handle2 = runner2.launch(job2, dest2)
        # Third job: both devices busy -> PID strategy scatters -> the
        # exclusive-mode attach blows up at launch.
        job3, runner3, dest3 = launch("racon")
        with pytest.raises(ComputeModeError):
            runner3.launch(job3, dest3)
        runner1.finish(handle1)
        runner2.finish(handle2)


class TestSmiComputeModeColumn:
    def test_table_reflects_mode(self, host):
        from repro.gpusim.device import ComputeMode
        from repro.gpusim.smi import render_table

        host.device(1).compute_mode = ComputeMode.EXCLUSIVE_PROCESS
        table = render_table(host)
        assert "Default" in table
        assert "E. Process" in table
