"""GPU device model: architecture figures, processes, telemetry."""

import pytest

from repro.gpusim.device import GPUDevice, TESLA_GK210, TESLA_K80_BOARD
from repro.gpusim.errors import InvalidDeviceError
from repro.gpusim.memory import MIB


class TestArchitecture:
    def test_paper_k80_figures(self):
        """§II-C: 2496 cores, 15 SMs, 4 warp schedulers, 32-thread warps."""
        assert TESLA_GK210.cuda_cores == 2496
        assert TESLA_GK210.sm_count == 15
        assert TESLA_GK210.warp_schedulers_per_sm == 4
        assert TESLA_GK210.threads_per_warp == 32
        assert TESLA_GK210.max_threads_per_block == 2048
        assert TESLA_GK210.max_warps_per_sm == 64

    def test_board_is_two_dies_24gb(self):
        """A K80 board = two GK210 dies, ~24 GB total."""
        assert TESLA_K80_BOARD.dies == 2
        assert TESLA_K80_BOARD.total_memory_mib == 2 * 11441

    def test_clock_range(self):
        assert TESLA_GK210.base_clock_mhz == 560.0
        assert TESLA_GK210.boost_clock_mhz == 875.0

    def test_peak_gflops_positive(self):
        assert TESLA_GK210.peak_gflops == pytest.approx(2 * 2496 * 0.875, rel=1e-6)

    def test_fb_memory_matches_smi_output(self):
        """Fig. 10 shows 11441 MiB per device."""
        assert TESLA_GK210.fb_memory_mib == 11441


class TestDevice:
    def test_negative_minor_rejected(self):
        with pytest.raises(InvalidDeviceError):
            GPUDevice(minor_number=-1)

    def test_fresh_device_is_idle(self):
        device = GPUDevice(0)
        assert device.is_idle
        assert device.fb_used_mib == 0
        assert device.process_pids() == []

    def test_attach_creates_context_and_occupies(self):
        device = GPUDevice(0)
        device.attach_process(100, "/usr/bin/racon_gpu", now=1.0)
        assert not device.is_idle
        assert device.process_pids() == [100]
        assert device.fb_used_mib == 60

    def test_attach_idempotent_for_live_pid(self):
        device = GPUDevice(0)
        device.attach_process(100, "tool")
        device.attach_process(100, "tool")
        assert device.fb_used_mib == 60
        assert len(device.compute_processes()) == 1

    def test_detach_reclaims_memory_and_resets_telemetry(self):
        device = GPUDevice(0)
        device.attach_process(100, "tool")
        device.alloc(500 * MIB, pid=100)
        device.sm_utilization = 95.0
        freed = device.detach_process(100, now=2.0)
        assert freed == 560 * MIB
        assert device.is_idle
        assert device.sm_utilization == 0.0
        assert device.pcie_generation_current == 1

    def test_detach_keeps_telemetry_while_others_run(self):
        device = GPUDevice(0)
        device.attach_process(100, "a")
        device.attach_process(101, "b")
        device.sm_utilization = 80.0
        device.detach_process(100)
        assert device.sm_utilization == 80.0
        assert device.process_pids() == [101]

    def test_process_order_is_attach_order(self):
        """nvidia-smi lists processes in attach order (Fig. 11)."""
        device = GPUDevice(0)
        for pid in (39953, 41105, 41872):
            device.attach_process(pid, "/usr/bin/racon_gpu")
        assert device.process_pids() == [39953, 41105, 41872]

    def test_temperature_and_power_track_utilization(self):
        device = GPUDevice(0)
        idle_temp, idle_power = device.temperature_c, device.power_draw_watts
        device.sm_utilization = 100.0
        assert device.temperature_c > idle_temp
        assert device.power_draw_watts > idle_power
        assert device.power_draw_watts <= device.arch.power_limit_watts

    def test_pcie_gen_rises_on_attach(self):
        device = GPUDevice(0)
        assert device.pcie_generation_current == 1
        device.attach_process(1, "tool")
        assert device.pcie_generation_current == device.arch.pcie_generation_max

    def test_bus_ids_distinct(self):
        assert GPUDevice(0).bus_id != GPUDevice(1).bus_id
