"""CUDA events."""

import pytest

from repro.gpusim.events import CudaEvent, EventApi, EventError
from repro.gpusim.kernels import KernelLaunch, KernelTimingModel, MemcpyKind
from repro.gpusim.streams import CudaStream, StreamEngine


@pytest.fixture
def api(host):
    timing = KernelTimingModel(host, host.device(0))
    return EventApi(StreamEngine(timing))


def kernel(seconds: float) -> KernelLaunch:
    achievable = 240e9 * 0.70
    return KernelLaunch("k", 60, 256, flops=1.0,
                        bytes_read=seconds * achievable, bytes_written=0)


class TestRecordAndElapsed:
    def test_elapsed_measures_device_phase(self, api):
        stream = CudaStream()
        start, end = CudaEvent(), CudaEvent()
        api.record(start, stream)
        api.engine.launch_async(kernel(0.25), stream)
        api.record(end, stream)
        assert api.elapsed_time_ms(start, end) == pytest.approx(250.0, rel=0.01)

    def test_elapsed_independent_of_host_time(self, api, host):
        stream = CudaStream()
        start, end = CudaEvent(), CudaEvent()
        api.record(start, stream)
        api.engine.launch_async(kernel(0.1), stream)
        api.record(end, stream)
        host.clock.advance(100.0)  # host wanders off
        assert api.elapsed_time_ms(start, end) == pytest.approx(100.0, rel=0.01)

    def test_unrecorded_events_rejected(self, api):
        with pytest.raises(EventError):
            api.elapsed_time_ms(CudaEvent(), CudaEvent())

    def test_reversed_events_rejected(self, api):
        stream = CudaStream()
        early, late = CudaEvent(), CudaEvent()
        api.record(early, stream)
        api.engine.launch_async(kernel(0.1), stream)
        api.record(late, stream)
        with pytest.raises(EventError):
            api.elapsed_time_ms(late, early)

    def test_event_ids_unique(self):
        assert CudaEvent().event_id != CudaEvent().event_id


class TestQueryAndSync:
    def test_query_false_until_complete(self, api, host):
        stream = CudaStream()
        api.engine.launch_async(kernel(1.0), stream)
        event = api.record(CudaEvent(), stream)
        assert not api.query(event)  # host hasn't reached it
        host.clock.advance(2.0)
        assert api.query(event)

    def test_query_unrecorded_is_false(self, api):
        assert not api.query(CudaEvent())

    def test_synchronize_blocks_host_to_event(self, api, host):
        stream = CudaStream()
        api.engine.launch_async(kernel(0.5), stream)
        event = api.record(CudaEvent(), stream)
        now = api.synchronize(event)
        assert now == pytest.approx(event.timestamp)
        assert host.clock.now >= event.timestamp

    def test_synchronize_unrecorded_rejected(self, api):
        with pytest.raises(EventError):
            api.synchronize(CudaEvent())

    def test_measures_memcpy_phase(self, api):
        stream = CudaStream()
        start = api.record(CudaEvent(), stream)
        api.engine.memcpy_async(MemcpyKind.HOST_TO_DEVICE, 1.2e9, stream)
        end = api.record(CudaEvent(), stream)
        expected_ms = 1.2e9 / 12e9 * 1000
        assert api.elapsed_time_ms(start, end) == pytest.approx(expected_ms, rel=0.01)
