"""Fault injection: events, plans, the fault plane, and the injector."""

from __future__ import annotations

import pytest

from repro.gpusim.errors import DeviceLostError, NVMLError
from repro.gpusim.faults import (
    SCENARIOS,
    FaultEvent,
    FaultInjector,
    FaultKind,
    InjectionPlan,
    build_scenario,
)
from repro.gpusim.host import make_k80_host
from repro.gpusim.nvml import NvmlLibrary
from repro.gpusim.smi import run_query


class TestFaultEvent:
    def test_device_faults_need_a_device(self):
        for kind in (FaultKind.DEVICE_LOST, FaultKind.DEVICE_RECOVER,
                     FaultKind.ECC_ERRORS):
            with pytest.raises(ValueError):
                FaultEvent(time=1.0, kind=kind)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=-0.1, kind=FaultKind.NVML_FLAKE)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=1.0, kind=FaultKind.NVML_FLAKE, count=0)

    def test_roundtrip(self):
        event = FaultEvent(time=3.5, kind=FaultKind.DEVICE_LOST, device=1,
                           xid=79, note="boom")
        assert FaultEvent.from_dict(event.to_dict()) == event


class TestInjectionPlan:
    def test_events_sorted_by_time(self):
        plan = InjectionPlan(name="p", seed=0, events=(
            FaultEvent(time=9.0, kind=FaultKind.NVML_FLAKE),
            FaultEvent(time=1.0, kind=FaultKind.NVML_FLAKE),
        ))
        assert [e.time for e in plan.events] == [1.0, 9.0]

    def test_json_roundtrip(self, tmp_path):
        plan = build_scenario("k80-die-midrun", seed=7)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert InjectionPlan.from_file(path) == plan

    def test_scenarios_deterministic_per_seed(self):
        for name in SCENARIOS:
            assert build_scenario(name, seed=5) == build_scenario(name, seed=5)

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("meteor-strike")


class TestFaultPlane:
    def test_nvml_errors_consumed_once(self, host):
        host.faults.inject_nvml_error(NVMLError.NVML_ERROR_TIMEOUT, count=2)
        assert host.faults.take_nvml_error() == NVMLError.NVML_ERROR_TIMEOUT
        assert host.faults.take_nvml_error() == NVMLError.NVML_ERROR_TIMEOUT
        assert host.faults.take_nvml_error() is None
        assert host.faults.nvml_errors_served == 2
        assert host.faults.quiet

    def test_nvml_shim_serves_injected_error(self, host):
        nvml = NvmlLibrary(host)
        nvml.nvmlInit()
        host.faults.inject_nvml_error(NVMLError.NVML_ERROR_UNKNOWN)
        with pytest.raises(NVMLError) as excinfo:
            nvml.nvmlDeviceGetCount()
        assert excinfo.value.code == NVMLError.NVML_ERROR_UNKNOWN
        assert excinfo.value.transient
        assert nvml.nvmlDeviceGetCount() == 2  # consumed: next call is fine

    def test_smi_serves_injected_error(self, host):
        host.faults.inject_nvml_error(NVMLError.NVML_ERROR_GPU_IS_LOST)
        stdout, stderr = run_query(host)
        assert stdout == ""
        assert "Unable to determine the device handle" in stderr
        # Consumed: the next invocation answers normally.
        stdout, stderr = run_query(host)
        assert stderr == ""
        assert stdout


class TestUnhealthyDeviceViews:
    """NVML and nvidia-smi must agree about a lost device."""

    def test_nvml_raises_gpu_is_lost_for_dead_device(self, host):
        nvml = NvmlLibrary(host)
        nvml.nvmlInit()
        handle = nvml.nvmlDeviceGetHandleByIndex(0)
        host.devices[0].mark_failed(now=1.0)
        with pytest.raises(NVMLError) as excinfo:
            nvml.nvmlDeviceGetMemoryInfo(handle)
        assert excinfo.value.code == NVMLError.NVML_ERROR_GPU_IS_LOST

    def test_cuda_calls_raise_device_lost(self, host):
        from repro.gpusim.kernels import KernelTimingModel

        proc = host.launch_process("tool", cuda_visible_devices="0")
        timing = KernelTimingModel(host=host, device=host.devices[0],
                                   pid=proc.pid)
        host.devices[0].mark_failed(now=host.clock.now)
        with pytest.raises(DeviceLostError):
            timing.malloc(1024, tag="x")


class TestFaultInjector:
    def _plan(self):
        return InjectionPlan(name="t", seed=0, events=(
            FaultEvent(time=2.0, kind=FaultKind.ECC_ERRORS, device=0, count=3),
            FaultEvent(time=5.0, kind=FaultKind.DEVICE_LOST, device=0, xid=79),
            FaultEvent(time=6.0, kind=FaultKind.NVML_FLAKE,
                       nvml_code=NVMLError.NVML_ERROR_UNKNOWN),
            FaultEvent(time=7.0, kind=FaultKind.CONTAINER_LAUNCH_FAIL),
            FaultEvent(time=9.0, kind=FaultKind.DEVICE_RECOVER, device=0),
        ))

    def test_events_fire_as_clock_advances(self, host):
        injector = FaultInjector(host, self._plan())
        injector.arm()
        assert injector.fired == []

        host.clock.advance(3.0)
        assert host.devices[0].ecc_errors == 3

        host.clock.advance(2.5)  # past the death
        assert not host.devices[0].healthy
        assert host.devices[0].xid_events  # XID 79 logged

        host.clock.advance(2.0)  # flake + container failure queued
        assert not host.faults.quiet

        host.clock.advance(2.0)  # recovery
        assert host.devices[0].healthy
        assert host.devices[0].ecc_errors == 0  # reset clears counters
        assert len(injector.fired) == 5

    def test_device_death_evicts_processes(self, host):
        # The OS process survives the XID 79 (only its CUDA context is
        # gone), but the device must hold no live contexts afterwards.
        proc = host.launch_process("tool", cuda_visible_devices="0")
        assert proc.pid in host.devices[0].process_pids()
        injector = FaultInjector(host, self._plan())
        injector.arm()
        host.clock.advance(5.5)
        assert proc.pid not in host.devices[0].process_pids()
        host.terminate_process(proc.pid)

    def test_arm_is_idempotent(self, host):
        injector = FaultInjector(host, self._plan())
        injector.arm()
        injector.arm()
        host.clock.advance(3.0)
        assert host.devices[0].ecc_errors == 3  # not doubled

    def test_timeline_records_fired_faults(self, host):
        injector = FaultInjector(host, self._plan())
        injector.arm()
        host.clock.advance(10.0)
        labels = [e.label for e in host.timeline
                  if e.label.startswith("fault_")]
        assert labels == [
            "fault_ecc_errors", "fault_device_lost", "fault_nvml_flake",
            "fault_container_launch_fail", "fault_device_recover",
        ]


class TestWorkloadSpec:
    def test_plan_roundtrip_with_workload(self):
        from repro.gpusim.faults import WorkloadSpec

        plan = InjectionPlan(
            name="with-workload", seed=3,
            events=(FaultEvent(time=1.0, kind=FaultKind.DEVICE_LOST,
                               device=0, xid=79),),
            workload=WorkloadSpec(jobs=3, tools=("racon",), resilient=True,
                                  job_conf_xml="<job_conf/>",
                                  expect="job_loss"),
        )
        rehydrated = InjectionPlan.from_dict(plan.to_dict())
        assert rehydrated.workload == plan.workload
        assert rehydrated == plan

    def test_workload_dict_is_self_contained(self):
        from repro.gpusim.faults import WorkloadSpec

        data = WorkloadSpec(jobs=2).to_dict()
        assert data == {"jobs": 2, "tools": ["racon", "bonito"],
                        "resilient": True}
        assert WorkloadSpec.from_dict(data) == WorkloadSpec(jobs=2)

    def test_plans_without_workload_stay_compatible(self):
        plan = InjectionPlan(name="legacy", seed=0, events=())
        data = plan.to_dict()
        assert "workload" not in data
        assert InjectionPlan.from_dict(data).workload is None
