"""GPU host: device sets, process table, CUDA_VISIBLE_DEVICES semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.errors import InvalidDeviceError, ProcessError
from repro.gpusim.host import GPUHost, make_k80_host, parse_cuda_visible_devices


class TestParseCudaVisibleDevices:
    def test_unset_exposes_all(self):
        assert parse_cuda_visible_devices(None, 4) == [0, 1, 2, 3]

    def test_empty_exposes_none(self):
        assert parse_cuda_visible_devices("", 4) == []
        assert parse_cuda_visible_devices("   ", 4) == []

    def test_order_preserved(self):
        assert parse_cuda_visible_devices("2,0", 4) == [2, 0]

    def test_truncates_at_first_invalid_token(self):
        assert parse_cuda_visible_devices("1,banana,0", 4) == [1]
        assert parse_cuda_visible_devices("1,7,0", 4) == [1]
        assert parse_cuda_visible_devices("-1,0", 4) == []

    def test_duplicates_collapse_first_wins(self):
        assert parse_cuda_visible_devices("0,1,0", 2) == [0, 1]

    def test_whitespace_tolerated(self):
        assert parse_cuda_visible_devices(" 0 , 1 ", 2) == [0, 1]

    @given(st.text(alphabet="0123456789,- x", max_size=20), st.integers(1, 8))
    def test_never_returns_out_of_range(self, mask, count):
        for index in parse_cuda_visible_devices(mask, count):
            assert 0 <= index < count


class TestHost:
    def test_k80_testbed_has_two_devices(self):
        host = make_k80_host()
        assert host.device_count == 2
        assert host.driver_version == "455.45.01"

    def test_device_lookup_validates(self):
        host = make_k80_host()
        assert host.device(1).minor_number == 1
        with pytest.raises(InvalidDeviceError):
            host.device(2)

    def test_needs_at_least_one_device(self):
        with pytest.raises(ValueError):
            GPUHost(device_count=0)

    def test_launch_attaches_to_masked_devices_only(self):
        host = make_k80_host()
        proc = host.launch_process("/usr/bin/racon_gpu", cuda_visible_devices="1")
        assert proc.device_indices == [1]
        assert host.device(1).process_pids() == [proc.pid]
        assert host.device(0).is_idle

    def test_launch_without_mask_attaches_everywhere(self):
        """CUDA default: all devices visible (paper §IV-A)."""
        host = make_k80_host()
        proc = host.launch_process("tool")
        assert proc.device_indices == [0, 1]

    def test_launch_cpu_only(self):
        host = make_k80_host()
        proc = host.launch_process("cpu_tool", attach=False)
        assert proc.device_indices == []
        assert host.device(0).is_idle and host.device(1).is_idle

    def test_pids_monotone_and_paperlike(self):
        host = make_k80_host()
        first = host.launch_process("a").pid
        second = host.launch_process("b").pid
        assert first == 39953  # Fig. 11's first PID
        assert second > first

    def test_terminate_detaches_everywhere(self):
        host = make_k80_host()
        proc = host.launch_process("tool", cuda_visible_devices="0,1")
        host.terminate_process(proc.pid)
        assert host.device(0).is_idle and host.device(1).is_idle
        assert not host.process(proc.pid).alive

    def test_double_terminate_rejected(self):
        host = make_k80_host()
        proc = host.launch_process("tool")
        host.terminate_process(proc.pid)
        with pytest.raises(ProcessError):
            host.terminate_process(proc.pid)

    def test_unknown_pid_rejected(self):
        with pytest.raises(ProcessError):
            make_k80_host().terminate_process(12345)

    def test_available_devices_tracks_occupancy(self):
        host = make_k80_host()
        proc = host.launch_process("tool", cuda_visible_devices="0")
        assert [d.minor_number for d in host.available_devices()] == [1]
        host.terminate_process(proc.pid)
        assert len(host.available_devices()) == 2

    def test_min_memory_device_ties_to_lower_minor(self):
        host = make_k80_host()
        assert host.min_memory_device().minor_number == 0

    def test_min_memory_device_prefers_emptier(self):
        host = make_k80_host()
        host.launch_process("tool", cuda_visible_devices="0")
        assert host.min_memory_device().minor_number == 1

    def test_timeline_records_lifecycle(self):
        host = make_k80_host()
        proc = host.launch_process("tool")
        host.clock.advance(3.0)
        host.terminate_process(proc.pid)
        labels = [e.label for e in host.timeline]
        assert labels == ["process_start", "process_end"]

    def test_snapshot_structure(self):
        host = make_k80_host()
        host.launch_process("tool", cuda_visible_devices="0")
        snap = host.snapshot()
        assert len(snap["devices"]) == 2
        assert snap["devices"][0]["pids"] and not snap["devices"][1]["pids"]

    def test_visible_devices_renumbering_order(self):
        """Inside CUDA_VISIBLE_DEVICES=1,0, ordinal 0 is minor 1."""
        host = make_k80_host()
        ordered = host.visible_devices("1,0")
        assert [d.minor_number for d in ordered] == [1, 0]
