"""Kernel timing model: roofline, occupancy, transfers, allocation."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.kernels import (
    KernelLaunch,
    KernelTimingModel,
    MALLOC_PER_GIB_S,
    MemcpyKind,
)
from repro.gpusim.profiler import CudaProfiler

GIB = 1024**3


@pytest.fixture
def timing(host):
    proc = host.launch_process("tool", cuda_visible_devices="0")
    return KernelTimingModel(
        host, host.device(0), profiler=CudaProfiler(), pid=proc.pid
    )


class TestKernelLaunchValidation:
    def test_positive_geometry_required(self):
        with pytest.raises(ValueError):
            KernelLaunch("k", 0, 64, 1, 1, 1)
        with pytest.raises(ValueError):
            KernelLaunch("k", 1, 0, 1, 1, 1)

    def test_derived_quantities(self):
        kernel = KernelLaunch("k", 4, 128, flops=10, bytes_read=6, bytes_written=4)
        assert kernel.total_bytes == 10
        assert kernel.total_threads == 512


class TestOccupancy:
    def test_more_blocks_never_less_occupancy(self, timing):
        occs = [
            timing.occupancy(KernelLaunch("k", blocks, 256, 1, 1, 1))
            for blocks in (1, 2, 4, 8, 15, 30)
        ]
        assert occs == sorted(occs)
        assert occs[-1] <= 1.0

    def test_single_block_underutilizes(self, timing):
        """§II-C: more blocks per kernel means better scaling."""
        one = timing.occupancy(KernelLaunch("k", 1, 256, 1, 1, 1))
        full = timing.occupancy(KernelLaunch("k", 60, 256, 1, 1, 1))
        assert one < full


class TestRoofline:
    def test_memory_bound_kernel(self, timing):
        kernel = KernelLaunch("k", 60, 256, flops=1e6, bytes_read=8e9, bytes_written=0)
        execution = timing.launch(kernel)
        assert execution.memory_bound
        assert execution.duration >= execution.memory_time

    def test_compute_bound_kernel(self, timing):
        kernel = KernelLaunch("k", 60, 256, flops=1e13, bytes_read=1e3, bytes_written=0)
        execution = timing.launch(kernel)
        assert not execution.memory_bound

    def test_launch_advances_clock_by_duration(self, timing, host):
        before = host.clock.now
        execution = timing.launch(KernelLaunch("k", 60, 256, 1e9, 1e9, 0))
        assert host.clock.now == pytest.approx(before + execution.duration)

    def test_launch_sets_device_utilization(self, timing, host):
        timing.launch(KernelLaunch("k", 60, 256, 1e9, 1e9, 0))
        assert host.device(0).sm_utilization > 0
        assert host.device(0).busy_seconds > 0

    @given(
        blocks=st.integers(1, 64),
        threads=st.integers(32, 1024),
        flops=st.floats(1e3, 1e12),
        nbytes=st.floats(1e3, 1e10),
    )
    def test_duration_positive_and_bounded_below(self, blocks, threads, flops, nbytes):
        from repro.gpusim.host import make_k80_host

        host = make_k80_host()
        timing = KernelTimingModel(host, host.device(0))
        compute, memory, occ = timing.kernel_times(
            KernelLaunch("k", blocks, threads, flops, nbytes, 0)
        )
        assert compute > 0 and memory > 0 and 0 < occ <= 1


class TestMemcpy:
    def test_duration_scales_with_bytes(self, timing):
        small = timing.memcpy(MemcpyKind.HOST_TO_DEVICE, 1e6)
        large = timing.memcpy(MemcpyKind.HOST_TO_DEVICE, 1e9)
        assert large > small * 100

    def test_pcie_efficiency_slows_transfers(self, host):
        pinned = KernelTimingModel(host, host.device(0), pcie_efficiency=1.0)
        staged = KernelTimingModel(host, host.device(0), pcie_efficiency=0.1)
        assert staged.memcpy(MemcpyKind.HOST_TO_DEVICE, 1e9) > 9 * pinned.memcpy(
            MemcpyKind.HOST_TO_DEVICE, 1e9
        )

    def test_negative_bytes_rejected(self, timing):
        with pytest.raises(ValueError):
            timing.memcpy(MemcpyKind.DEVICE_TO_HOST, -1)

    def test_invalid_efficiency_rejected(self, host):
        with pytest.raises(ValueError):
            KernelTimingModel(host, host.device(0), pcie_efficiency=0.0)
        with pytest.raises(ValueError):
            KernelTimingModel(host, host.device(0), pcie_efficiency=1.5)


class TestMallocAndApi:
    def test_malloc_charges_memory_and_time(self, timing, host):
        before = host.clock.now
        allocation = timing.malloc(8 * GIB)
        assert host.device(0).memory.used >= 8 * GIB
        # ~2 s for 8 GiB: the paper's Racon allocation phase.
        assert host.clock.now - before == pytest.approx(
            8 * MALLOC_PER_GIB_S, rel=0.01
        )
        timing.free(allocation)
        assert host.device(0).memory.used < GIB

    def test_synchronize_records_and_advances(self, timing, host):
        before = host.clock.now
        timing.synchronize()
        assert host.clock.now > before
        assert timing.profiler.call_count("cudaStreamSynchronize") == 1

    def test_api_call_aggregation(self, timing, host):
        timing.api_call("cudaLaunchKernel", 1.5, category="launch")
        assert host.clock.now >= 1.5
        assert timing.profiler.total_time("launch") == pytest.approx(1.5)

    def test_api_call_rejects_negative(self, timing):
        with pytest.raises(ValueError):
            timing.api_call("x", -1.0)
