"""Device memory allocator invariants."""

import contextlib

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.errors import DeviceOutOfMemoryError, DoubleFreeError
from repro.gpusim.memory import CUDA_CONTEXT_OVERHEAD_BYTES, MIB, MemoryAllocator

CAP = 1024 * MIB


class TestAllocator:
    def test_initial_state(self):
        allocator = MemoryAllocator(CAP)
        assert allocator.used == 0
        assert allocator.free_bytes == CAP
        assert allocator.used_mib == 0

    def test_alloc_free_roundtrip(self):
        allocator = MemoryAllocator(CAP)
        allocation = allocator.alloc(100 * MIB, owner_pid=1)
        assert allocator.used == 100 * MIB
        assert allocator.free(allocation) == 100 * MIB
        assert allocator.used == 0

    def test_oom_raises_and_preserves_state(self):
        allocator = MemoryAllocator(CAP)
        allocator.alloc(CAP // 2, owner_pid=1)
        before = allocator.used
        with pytest.raises(DeviceOutOfMemoryError) as excinfo:
            allocator.alloc(CAP, owner_pid=1)
        assert allocator.used == before
        assert excinfo.value.requested == CAP

    def test_double_free_rejected(self):
        allocator = MemoryAllocator(CAP)
        allocation = allocator.alloc(MIB, owner_pid=1)
        allocator.free(allocation)
        with pytest.raises(DoubleFreeError):
            allocator.free(allocation)

    def test_non_positive_alloc_rejected(self):
        allocator = MemoryAllocator(CAP)
        with pytest.raises(ValueError):
            allocator.alloc(0, owner_pid=1)
        with pytest.raises(ValueError):
            allocator.alloc(-5, owner_pid=1)

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryAllocator(0)

    def test_context_overhead_matches_paper_figure(self):
        """Idle racon_gpu processes show 60 MiB in the paper's Fig. 11."""
        allocator = MemoryAllocator(CAP)
        allocator.register_context(41)
        assert allocator.used_mib == 60
        assert CUDA_CONTEXT_OVERHEAD_BYTES == 60 * MIB

    def test_context_registration_idempotent(self):
        allocator = MemoryAllocator(CAP)
        allocator.register_context(41)
        allocator.register_context(41)
        assert allocator.used == CUDA_CONTEXT_OVERHEAD_BYTES

    def test_release_pid_reclaims_everything(self):
        allocator = MemoryAllocator(CAP)
        allocator.register_context(7)
        allocator.alloc(10 * MIB, owner_pid=7)
        allocator.alloc(20 * MIB, owner_pid=7)
        allocator.alloc(5 * MIB, owner_pid=8)
        freed = allocator.release_pid(7)
        assert freed == 30 * MIB + CUDA_CONTEXT_OVERHEAD_BYTES
        assert allocator.used == 5 * MIB
        assert allocator.owner_pids() == {8}

    def test_used_by_attribution(self):
        allocator = MemoryAllocator(CAP)
        allocator.register_context(1)
        allocator.alloc(10 * MIB, owner_pid=1)
        allocator.alloc(99 * MIB, owner_pid=2)
        assert allocator.used_by(1) == 10 * MIB + CUDA_CONTEXT_OVERHEAD_BYTES
        assert allocator.used_by(2) == 99 * MIB

    def test_peak_tracks_high_water_mark(self):
        allocator = MemoryAllocator(CAP)
        a = allocator.alloc(500 * MIB, owner_pid=1)
        allocator.free(a)
        allocator.alloc(10 * MIB, owner_pid=1)
        assert allocator.peak_used == 500 * MIB


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["alloc", "free", "release"]),
            st.integers(min_value=1, max_value=4),  # pid
            st.integers(min_value=1, max_value=200 * MIB),  # size
        ),
        max_size=60,
    )
)
def test_accounting_invariant_under_random_operations(operations):
    """used + free == capacity and used == sum(live) at every step."""
    allocator = MemoryAllocator(CAP)
    live = []
    for op, pid, size in operations:
        if op == "alloc":
            with contextlib.suppress(DeviceOutOfMemoryError):
                live.append(allocator.alloc(size, owner_pid=pid))
        elif op == "free" and live:
            allocator.free(live.pop())
        elif op == "release":
            allocator.release_pid(pid)
            live = [a for a in live if a.owner_pid != pid]
        assert allocator.used + allocator.free_bytes == allocator.capacity
        assert allocator.used == sum(a.size for a in live)
        assert allocator.used >= 0
