"""NVML shim: API shape, error discipline, state fidelity."""

import pytest

from repro.gpusim import nvml
from repro.gpusim.errors import NVMLError
from repro.gpusim.host import make_k80_host
from repro.gpusim.memory import MIB
from repro.gpusim.nvml import NvmlLibrary


@pytest.fixture
def lib(host):
    library = NvmlLibrary(host)
    library.nvmlInit()
    return library


class TestLifecycle:
    def test_use_before_init_raises_uninitialized(self, host):
        library = NvmlLibrary(host)
        with pytest.raises(NVMLError) as excinfo:
            library.nvmlDeviceGetCount()
        assert excinfo.value.code == NVMLError.NVML_ERROR_UNINITIALIZED

    def test_shutdown_invalidates(self, lib):
        lib.nvmlShutdown()
        with pytest.raises(NVMLError):
            lib.nvmlDeviceGetCount()

    def test_reinit_after_shutdown(self, lib):
        lib.nvmlShutdown()
        lib.nvmlInit()
        assert lib.nvmlDeviceGetCount() == 2


class TestQueries:
    def test_device_count(self, lib):
        assert lib.nvmlDeviceGetCount() == 2

    def test_handle_validation(self, lib):
        with pytest.raises(NVMLError) as excinfo:
            lib.nvmlDeviceGetHandleByIndex(5)
        assert excinfo.value.code == NVMLError.NVML_ERROR_INVALID_ARGUMENT

    def test_handle_from_other_host_rejected(self, lib):
        other = NvmlLibrary(make_k80_host())
        other.nvmlInit()
        foreign = other.nvmlDeviceGetHandleByIndex(0)
        with pytest.raises(NVMLError):
            lib.nvmlDeviceGetMemoryInfo(foreign)

    def test_memory_info_tracks_device(self, host, lib):
        handle = lib.nvmlDeviceGetHandleByIndex(0)
        before = lib.nvmlDeviceGetMemoryInfo(handle)
        assert before.used == 0
        assert before.total == before.free == host.device(0).memory.capacity
        host.launch_process("tool", cuda_visible_devices="0")
        after = lib.nvmlDeviceGetMemoryInfo(handle)
        assert after.used == 60 * MIB
        assert after.total == after.used + after.free

    def test_utilization_rates(self, host, lib):
        host.device(1).sm_utilization = 95.0
        host.device(1).mem_utilization = 40.0
        util = lib.nvmlDeviceGetUtilizationRates(lib.nvmlDeviceGetHandleByIndex(1))
        assert util.gpu == 95 and util.memory == 40

    def test_compute_running_processes(self, host, lib):
        proc = host.launch_process("/usr/bin/bonito", cuda_visible_devices="1")
        handle = lib.nvmlDeviceGetHandleByIndex(1)
        infos = lib.nvmlDeviceGetComputeRunningProcesses(handle)
        assert [p.pid for p in infos] == [proc.pid]
        assert infos[0].usedGpuMemory == 60 * MIB
        assert lib.nvmlDeviceGetComputeRunningProcesses(
            lib.nvmlDeviceGetHandleByIndex(0)
        ) == []

    def test_identity_queries(self, lib):
        handle = lib.nvmlDeviceGetHandleByIndex(0)
        assert lib.nvmlDeviceGetName(handle) == "Tesla K80"
        assert lib.nvmlDeviceGetMinorNumber(handle) == 0
        assert lib.nvmlDeviceGetUUID(handle).startswith("GPU-")

    def test_versions(self, lib):
        assert lib.nvmlSystemGetDriverVersion() == "455.45.01"
        assert lib.nvmlSystemGetCudaDriverVersion() == 11010

    def test_power_and_temperature(self, host, lib):
        handle = lib.nvmlDeviceGetHandleByIndex(0)
        assert lib.nvmlDeviceGetTemperature(handle) >= 35
        assert lib.nvmlDeviceGetPowerUsage(handle) > 0


class TestModuleLevelInterface:
    def test_module_interface_mirrors_pynvml(self, host):
        nvml.bind_host(host)
        nvml.nvmlInit()
        try:
            assert nvml.nvmlDeviceGetCount() == 2
            handle = nvml.nvmlDeviceGetHandleByIndex(0)
            assert nvml.nvmlDeviceGetMemoryInfo(handle).used == 0
            assert nvml.nvmlSystemGetDriverVersion() == "455.45.01"
        finally:
            nvml.nvmlShutdown()
