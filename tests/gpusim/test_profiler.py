"""NVProf-like profiler: hotspots, stall attribution, merging."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.profiler import CudaProfiler, StallAnalysis


def make_profiler_with(records):
    profiler = CudaProfiler()
    for name, category, duration in records:
        profiler.record_api(name, category, start=0.0, duration=duration, device_index=0)
    return profiler


class TestHotspots:
    def test_sorted_by_time_desc(self):
        profiler = make_profiler_with(
            [("a", "kernel", 1.0), ("b", "sync", 5.0), ("c", "memcpy_htod", 2.0)]
        )
        names = [h.name for h in profiler.hotspots()]
        assert names == ["b", "c", "a"]

    def test_percentages_sum_to_100(self):
        profiler = make_profiler_with(
            [("a", "kernel", 1.0), ("b", "sync", 3.0), ("a", "kernel", 2.0)]
        )
        assert sum(h.pct for h in profiler.hotspots()) == pytest.approx(100.0)

    def test_grouping_by_name(self):
        profiler = make_profiler_with([("a", "kernel", 1.0), ("a", "kernel", 2.0)])
        spot = profiler.hotspots()[0]
        assert spot.calls == 2 and spot.total_time == pytest.approx(3.0)

    def test_top_limits(self):
        profiler = make_profiler_with(
            [(f"k{i}", "kernel", float(i)) for i in range(1, 6)]
        )
        assert len(profiler.hotspots(top=2)) == 2

    def test_hotspot_pct_absent_name(self):
        assert make_profiler_with([]).hotspot_pct("nothing") == 0.0

    def test_empty_profiler(self):
        profiler = CudaProfiler()
        assert profiler.hotspots() == []
        assert profiler.total_time() == 0.0


class TestStallAnalysis:
    def test_no_kernels_means_all_other(self):
        analysis = CudaProfiler().stall_analysis()
        assert analysis == StallAnalysis(0.0, 0.0, 100.0)

    def test_memory_bound_mix_lands_near_paper_split(self):
        """mem:comp = 3.5 -> ~70/20/10, the paper's Racon stall figures."""
        profiler = CudaProfiler()
        profiler.record_kernel(
            "poa", start=0, duration=4.5, device_index=0, compute_time=1.0, memory_time=3.5
        )
        analysis = profiler.stall_analysis()
        assert analysis.memory_dependency_pct == pytest.approx(70.0, abs=0.5)
        assert analysis.execution_dependency_pct == pytest.approx(20.0, abs=0.5)
        assert analysis.other_pct == pytest.approx(10.0)

    def test_percentages_always_sum_to_100(self):
        profiler = CudaProfiler()
        profiler.record_kernel("k", 0, 1.0, 0, compute_time=0.7, memory_time=0.1)
        analysis = profiler.stall_analysis()
        total = (
            analysis.memory_dependency_pct
            + analysis.execution_dependency_pct
            + analysis.other_pct
        )
        assert total == pytest.approx(100.0, abs=0.1)

    @given(
        st.lists(
            st.tuples(st.floats(0.001, 10.0), st.floats(0.001, 10.0)), min_size=1, max_size=20
        )
    )
    def test_attribution_bounded(self, times):
        profiler = CudaProfiler()
        for compute, memory in times:
            profiler.record_kernel(
                "k", 0, compute + memory, 0, compute_time=compute, memory_time=memory
            )
        analysis = profiler.stall_analysis()
        assert 0 <= analysis.memory_dependency_pct <= 90.0
        assert 0 <= analysis.execution_dependency_pct <= 90.0

    def test_as_dict(self):
        d = StallAnalysis(70.0, 20.0, 10.0).as_dict()
        assert d == {
            "memory_dependency": 70.0,
            "execution_dependency": 20.0,
            "other": 10.0,
        }


class TestMergingAndReporting:
    def test_merge_combines_and_sorts(self):
        a = CudaProfiler()
        a.record_api("x", "kernel", start=5.0, duration=1.0, device_index=0)
        b = CudaProfiler()
        b.record_api("y", "kernel", start=1.0, duration=1.0, device_index=1)
        a.merge([b])
        assert [r.name for r in a.records] == ["y", "x"]

    def test_summary_table_format(self):
        profiler = make_profiler_with([("kernelA", "kernel", 2.0)])
        table = profiler.summary_table()
        assert "kernelA" in table and "100.00%" in table

    def test_category_totals(self):
        profiler = make_profiler_with(
            [("a", "sync", 1.0), ("b", "sync", 2.0), ("c", "kernel", 4.0)]
        )
        assert profiler.total_time("sync") == pytest.approx(3.0)
        assert profiler.total_time() == pytest.approx(7.0)
