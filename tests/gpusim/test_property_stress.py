"""Seeded property-based stress tests for the simulator's bookkeeping.

Thousands of randomised (but reproducibly seeded, stdlib ``random``)
mixed operations against the two structures whose incremental fast
paths PR4 introduced:

* :class:`~repro.gpusim.memory.MemoryAllocator` — the O(1) ``used``
  counter must agree with the O(live) ``audit_used()`` recomputation
  after any operation mix, with the simsan SIM305 check applied along
  the way;
* :class:`~repro.gpusim.clock.Timeline` — the incrementally sorted
  event log must answer ``between``/``labelled`` queries identically to
  a naive sort-everything model.

The suite-wide simsan installation (see ``tests/conftest.py``) stays
active here, so every mutation also runs under the runtime sanitizer's
wrapped entry points.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.sanitizer import SimSanitizer
from repro.gpusim.clock import Timeline
from repro.gpusim.errors import DeviceOutOfMemoryError, DoubleFreeError
from repro.gpusim.memory import (
    CUDA_CONTEXT_OVERHEAD_BYTES,
    MIB,
    MemoryAllocator,
)

CAPACITY = 1024 * MIB
SEEDS = (0, 1, 7, 1234, 987654)


def _assert_allocator_consistent(
    allocator: MemoryAllocator, checker: SimSanitizer
) -> None:
    assert allocator.audit_used() == allocator.used
    assert allocator.used + allocator.free_bytes == allocator.capacity
    assert 0 <= allocator.used <= allocator.capacity
    checker.check_allocator(allocator)  # SIM305, raising on violation


class TestAllocatorStress:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mixed_operations_preserve_byte_accounting(self, seed):
        rng = random.Random(seed)
        allocator = MemoryAllocator(CAPACITY, device_index=0)
        checker = SimSanitizer()
        live: list = []
        freed: list = []
        contexts: set[int] = set()
        pids = list(range(100, 110))
        version = allocator.version

        for step in range(3000):
            op = rng.random()
            pid = rng.choice(pids)
            if op < 0.40:
                size = rng.randint(1, 64 * MIB)
                try:
                    live.append(allocator.alloc(size, pid))
                except DeviceOutOfMemoryError:
                    # OOM must not mutate state.
                    assert allocator.version == version
            elif op < 0.60 and live:
                allocation = live.pop(rng.randrange(len(live)))
                allocator.free(allocation)
                freed.append(allocation)
            elif op < 0.70 and freed:
                # Double frees must raise without corrupting accounting.
                with pytest.raises(DoubleFreeError):
                    allocator.free(rng.choice(freed))
            elif op < 0.80:
                try:
                    allocator.register_context(pid)
                    contexts.add(pid)
                except DeviceOutOfMemoryError:
                    assert allocator.version == version
            elif op < 0.90:
                allocator.release_context(pid)
                contexts.discard(pid)
            else:
                allocator.release_pid(pid)
                moved = [a for a in live if a.owner_pid == pid]
                live = [a for a in live if a.owner_pid != pid]
                freed.extend(moved)
                contexts.discard(pid)
            version = allocator.version
            if step % 97 == 0:
                _assert_allocator_consistent(allocator, checker)

        _assert_allocator_consistent(allocator, checker)
        assert allocator.used == (
            sum(a.size for a in live)
            + len(contexts) * CUDA_CONTEXT_OVERHEAD_BYTES
        )
        assert allocator.owner_pids() == (
            {a.owner_pid for a in live} | contexts
        )
        assert not checker.violations

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_peak_used_is_monotone_high_water_mark(self, seed):
        rng = random.Random(seed)
        allocator = MemoryAllocator(CAPACITY)
        live = []
        observed_max = 0
        for _ in range(1500):
            if rng.random() < 0.6 or not live:
                try:
                    live.append(allocator.alloc(rng.randint(1, 32 * MIB), 1))
                except DeviceOutOfMemoryError:
                    pass
            else:
                allocator.free(live.pop(rng.randrange(len(live))))
            observed_max = max(observed_max, allocator.used)
            assert allocator.peak_used == observed_max

    def test_full_drain_returns_to_zero(self):
        rng = random.Random(42)
        allocator = MemoryAllocator(CAPACITY)
        checker = SimSanitizer()
        for pid in range(5):
            allocator.register_context(pid)
            for _ in range(50):
                try:
                    allocator.alloc(rng.randint(1, 2 * MIB), pid)
                except DeviceOutOfMemoryError:
                    break
        for pid in range(5):
            allocator.release_pid(pid)
        _assert_allocator_consistent(allocator, checker)
        assert allocator.used == 0
        assert allocator.audit_used() == 0
        assert allocator.free_bytes == allocator.capacity


class NaiveTimeline:
    """The obviously-correct model: sort everything on every query."""

    def __init__(self) -> None:
        self.records: list[tuple[float, int, str]] = []

    def record(self, time: float, label: str) -> None:
        self.records.append((time, len(self.records), label))

    def ordered(self):
        return sorted(self.records, key=lambda r: (r[0], r[1]))

    def between(self, start: float, end: float):
        return [r for r in self.ordered() if start <= r[0] < end]

    def labelled(self, label: str):
        return [r for r in self.ordered() if r[2] == label]


def _as_tuples(events):
    return [(e.time, e.seq, e.label) for e in events]


class TestTimelineStress:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_naive_model_under_out_of_order_records(self, seed):
        rng = random.Random(seed)
        timeline, model = Timeline(), NaiveTimeline()
        labels = [f"event_{i}" for i in range(6)]
        for step in range(4000):
            if rng.random() < 0.7:
                # Mostly in-order appends (the monitor's common case)...
                when = float(step)
            else:
                # ...with out-of-order stragglers, including exact ties.
                when = rng.choice([rng.uniform(0, step + 1),
                                   float(rng.randint(0, step))])
            label = rng.choice(labels)
            timeline.record(when, label)
            model.record(when, label)

        assert len(timeline) == len(model.records)
        assert _as_tuples(timeline) == model.ordered()
        for _ in range(50):
            start, end = sorted(
                (rng.uniform(0, 4000), rng.uniform(0, 4000))
            )
            assert _as_tuples(timeline.between(start, end)) == model.between(
                start, end
            )
        for label in labels:
            assert _as_tuples(timeline.labelled(label)) == model.labelled(
                label
            )

    def test_equal_timestamps_preserve_insertion_order(self):
        timeline = Timeline()
        for i in range(100):
            timeline.record(5.0, f"tied_{i}")
        seqs = [e.seq for e in timeline.between(5.0, 5.0 + 1e-9)]
        assert seqs == sorted(seqs)
