"""nvidia-smi emulator: XML schema, soup facade, console table."""

import xml.etree.ElementTree as ET


from repro.gpusim.smi import (
    SmiSoup,
    process_placement,
    render_table,
    render_xml,
    run_query,
)


class TestXmlRendering:
    def test_well_formed_and_rooted(self, host):
        root = ET.fromstring(render_xml(host))
        assert root.tag == "nvidia_smi_log"
        assert root.findtext("driver_version") == "455.45.01"
        assert root.findtext("attached_gpus") == "2"
        assert len(root.findall("gpu")) == 2

    def test_minor_numbers_in_order(self, host):
        root = ET.fromstring(render_xml(host))
        minors = [g.findtext("minor_number") for g in root.findall("gpu")]
        assert minors == ["0", "1"]

    def test_process_info_schema(self, host):
        proc = host.launch_process("/usr/bin/racon_gpu", cuda_visible_devices="0")
        root = ET.fromstring(render_xml(host))
        gpu0 = root.findall("gpu")[0]
        info = gpu0.find("processes").findall("process_info")
        assert len(info) == 1
        assert info[0].findtext("pid") == str(proc.pid)
        assert info[0].findtext("type") == "C"
        assert info[0].findtext("process_name") == "/usr/bin/racon_gpu"
        assert info[0].findtext("used_memory") == "60 MiB"

    def test_fb_memory_usage_fields(self, host):
        host.launch_process("tool", cuda_visible_devices="1")
        root = ET.fromstring(render_xml(host))
        fb = root.findall("gpu")[1].find("fb_memory_usage")
        assert fb.findtext("total") == "11441 MiB"
        assert fb.findtext("used") == "60 MiB"
        assert fb.findtext("free") == "11381 MiB"

    def test_roundtrip_placement(self, host):
        """render -> parse recovers the (minor -> pids) map exactly."""
        a = host.launch_process("a", cuda_visible_devices="0")
        b = host.launch_process("b", cuda_visible_devices="1")
        c = host.launch_process("c", cuda_visible_devices="1")
        soup = SmiSoup(render_xml(host))
        parsed: dict[int, list[int]] = {}
        for gpu in soup.find("nvidia_smi_log").find_all("gpu"):
            minor = int(gpu.find("minor_number").text)
            parsed[minor] = [
                int(pi.find("pid").text)
                for pi in gpu.find("processes").find_all("process_info")
            ]
        assert parsed == process_placement(host)
        assert parsed == {0: [a.pid], 1: [b.pid, c.pid]}


class TestRunQuery:
    def test_supported_query(self, host):
        out, err = run_query(host, "-q -x")
        assert err == "" and out.startswith("<?xml")

    def test_unsupported_arguments_error(self, host):
        out, err = run_query(host, "--weird")
        assert out == "" and "unsupported" in err


class TestSmiSoup:
    def test_find_returns_none_when_absent(self, host):
        soup = SmiSoup(render_xml(host))
        assert soup.find("nonexistent_tag") is None

    def test_find_self_match(self):
        soup = SmiSoup("<a><b>x</b></a>")
        assert soup.find("a").name == "a"

    def test_find_all_document_order(self):
        soup = SmiSoup("<r><g><p>1</p></g><g><p>2</p></g></r>")
        assert [p.text for p in soup.find_all("p")] == ["1", "2"]

    def test_text_strips(self):
        assert SmiSoup("<a>  42  </a>").text == "42"
        assert SmiSoup("<a></a>").text == ""

    def test_paper_pseudocode_shape(self, host):
        """The exact traversal of the paper's Pseudocode 1 works."""
        host.launch_process("tool", cuda_visible_devices="0")
        out, _ = run_query(host, "-q -x")
        soup = SmiSoup(out)
        proc_gpu_dict: dict[str, list[str]] = {}
        gpu_find = soup.find("nvidia_smi_log").find_all("gpu")
        for p in gpu_find:
            minor_id = p.find("minor_number").text
            proc_gpu_dict.setdefault(minor_id, [])
            for proc in p.find("processes").find_all("process_info"):
                proc_gpu_dict[minor_id].append(proc.find("pid").text)
        assert list(proc_gpu_dict) == ["0", "1"]
        assert len(proc_gpu_dict["0"]) == 1 and proc_gpu_dict["1"] == []


class TestConsoleTable:
    def test_banner_matches_paper_versions(self, host):
        table = render_table(host)
        assert "NVIDIA-SMI 455.45.01" in table
        assert "CUDA Version: 11.1" in table

    def test_empty_process_section(self, host):
        assert "No running processes found" in render_table(host)

    def test_process_rows_like_fig11(self, host):
        for mask in ("0", "1", "0", "1"):
            host.launch_process("/usr/bin/racon_gpu", cuda_visible_devices=mask)
        table = render_table(host)
        rows = [line for line in table.splitlines() if "racon_gpu" in line]
        assert len(rows) == 4
        assert all("60MiB" in row for row in rows)
        assert all(" C " in row for row in rows)

    def test_memory_column(self, host):
        host.launch_process("tool", cuda_visible_devices="1")
        table = render_table(host)
        assert "60MiB / 11441MiB" in table
        assert "0MiB / 11441MiB" in table
