"""CUDA streams: ordering, engine overlap, synchronisation."""

import pytest

from repro.gpusim.host import make_k80_host
from repro.gpusim.kernels import KernelLaunch, KernelTimingModel, MemcpyKind
from repro.gpusim.profiler import CudaProfiler
from repro.gpusim.streams import CudaStream, StreamEngine

GB = 1e9


@pytest.fixture
def engine(host):
    timing = KernelTimingModel(host, host.device(0), profiler=CudaProfiler())
    return StreamEngine(timing)


def kernel(seconds_worth: float = 0.1) -> KernelLaunch:
    """A memory-bound kernel of roughly the requested duration."""
    achievable = 240e9 * 0.70
    return KernelLaunch(
        "k", 60, 256, flops=1.0, bytes_read=seconds_worth * achievable, bytes_written=0
    )


class TestOrdering:
    def test_same_stream_serialises(self, engine):
        stream = CudaStream()
        first = engine.memcpy_async(MemcpyKind.HOST_TO_DEVICE, 1 * GB, stream)
        second = engine.launch_async(kernel(), stream)
        third = engine.memcpy_async(MemcpyKind.DEVICE_TO_HOST, 1 * GB, stream)
        assert first.end <= second.start
        assert second.end <= third.start

    def test_issue_is_non_blocking(self, engine, host):
        stream = CudaStream()
        before = host.clock.now
        engine.memcpy_async(MemcpyKind.HOST_TO_DEVICE, 10 * GB, stream)
        engine.launch_async(kernel(1.0), stream)
        assert host.clock.now == before  # nothing blocked the host

    def test_engines_serialise_across_streams(self, engine):
        a, b = CudaStream(), CudaStream()
        first = engine.memcpy_async(MemcpyKind.HOST_TO_DEVICE, 1 * GB, a)
        second = engine.memcpy_async(MemcpyKind.HOST_TO_DEVICE, 1 * GB, b)
        # Same copy engine: the second transfer waits for the first.
        assert second.start >= first.end

    def test_different_engines_overlap(self, engine):
        a, b = CudaStream(), CudaStream()
        h2d = engine.memcpy_async(MemcpyKind.HOST_TO_DEVICE, 1 * GB, a)
        compute = engine.launch_async(kernel(0.2), b)
        d2h = engine.memcpy_async(MemcpyKind.DEVICE_TO_HOST, 1 * GB, b)
        # Compute on stream b starts immediately, concurrent with a's copy.
        assert compute.start < h2d.end
        # d2h uses the other copy engine but must follow b's kernel.
        assert d2h.start >= compute.end


class TestSynchronisation:
    def test_stream_sync_waits_for_that_stream_only(self, engine, host):
        a, b = CudaStream(), CudaStream()
        engine.launch_async(kernel(0.1), a)
        engine.launch_async(kernel(5.0), b)
        engine.synchronize(a)
        assert host.clock.now >= a.tail
        assert host.clock.now < b.tail

    def test_device_sync_waits_for_everything(self, engine, host):
        a, b = CudaStream(), CudaStream()
        engine.launch_async(kernel(0.5), a)
        engine.memcpy_async(MemcpyKind.HOST_TO_DEVICE, 5 * GB, b)
        engine.synchronize()
        assert host.clock.now >= a.tail
        assert host.clock.now >= b.tail

    def test_sync_recorded_in_profiler(self, engine):
        stream = CudaStream()
        engine.launch_async(kernel(0.1), stream)
        engine.synchronize(stream)
        assert engine.timing.profiler.call_count("cudaStreamSynchronize") == 1

    def test_sync_idempotent(self, engine, host):
        stream = CudaStream()
        engine.launch_async(kernel(0.1), stream)
        engine.synchronize(stream)
        t = host.clock.now
        engine.synchronize(stream)
        assert host.clock.now == pytest.approx(t, abs=1e-3)


class TestPipelineOverlap:
    def test_chunked_pipeline_beats_synchronous(self, host):
        """The A6 ablation's core claim: double-buffered streams hide
        transfer time behind compute."""
        n_chunks, chunk = 16, 0.5 * GB

        # synchronous baseline
        sync_host = make_k80_host()
        sync_timing = KernelTimingModel(sync_host, sync_host.device(0))
        for _ in range(n_chunks):
            sync_timing.memcpy(MemcpyKind.HOST_TO_DEVICE, chunk)
            sync_timing.launch(kernel(0.1))
            sync_timing.memcpy(MemcpyKind.DEVICE_TO_HOST, chunk)
        sync_total = sync_host.clock.now

        # stream-pipelined
        timing = KernelTimingModel(host, host.device(0))
        engine = StreamEngine(timing)
        streams = [CudaStream(), CudaStream()]
        for i in range(n_chunks):
            stream = streams[i % 2]
            engine.memcpy_async(MemcpyKind.HOST_TO_DEVICE, chunk, stream)
            engine.launch_async(kernel(0.1), stream)
            engine.memcpy_async(MemcpyKind.DEVICE_TO_HOST, chunk, stream)
        engine.synchronize()
        async_total = host.clock.now

        assert async_total < 0.7 * sync_total

    def test_busy_accounting(self, engine):
        stream = CudaStream()
        engine.memcpy_async(MemcpyKind.HOST_TO_DEVICE, 1 * GB, stream)
        engine.launch_async(kernel(0.2), stream)
        busy = engine.engine_busy_seconds()
        assert busy["copy_h2d"] > 0
        assert busy["compute"] > 0
        assert busy["copy_d2h"] == 0.0
        assert engine.makespan() >= max(busy.values())

    def test_negative_bytes_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.memcpy_async(MemcpyKind.HOST_TO_DEVICE, -1, CudaStream())
