"""Board topology: locality matrix and the board-aware strategy."""

import pytest

from repro.core.allocation import BoardAwareAllocationStrategy, strategy_by_name
from repro.core.gpu_usage import get_gpu_usage_snapshot
from repro.gpusim.errors import InvalidDeviceError
from repro.gpusim.host import GPUHost, make_k80_host
from repro.gpusim.smi import render_topology


class TestBoardGeometry:
    def test_k80_pairs(self):
        host = make_k80_host(boards=2)
        assert host.board_of(0) == host.board_of(1) == 0
        assert host.board_of(2) == host.board_of(3) == 1
        assert host.same_board(0, 1)
        assert not host.same_board(1, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUHost(device_count=2, dies_per_board=0)
        with pytest.raises(InvalidDeviceError):
            make_k80_host().board_of(9)


class TestTopologyMatrix:
    def test_four_die_matrix(self):
        host = make_k80_host(boards=2)
        topo = render_topology(host)
        lines = topo.splitlines()
        assert "GPU0" in lines[0] and "GPU3" in lines[0]
        # row GPU0: X PIX PHB PHB
        row0 = lines[1].split()
        assert row0 == ["GPU0", "X", "PIX", "PHB", "PHB"]
        row2 = lines[3].split()
        assert row2 == ["GPU2", "PHB", "PHB", "X", "PIX"]
        assert "Legend" in topo

    def test_lost_device_dropped_from_matrix(self):
        host = make_k80_host(boards=2)
        host.device(1).mark_failed()
        topo = render_topology(host)
        assert "GPU1" not in topo


class TestBoardAwareStrategy:
    @pytest.fixture
    def four_gpu_host(self):
        return make_k80_host(boards=2)

    def test_factory(self):
        assert isinstance(strategy_by_name("board"), BoardAwareAllocationStrategy)
        with pytest.raises(ValueError):
            BoardAwareAllocationStrategy(dies_per_board=0)

    def test_single_device_matches_pid(self, four_gpu_host):
        strategy = BoardAwareAllocationStrategy()
        four_gpu_host.launch_process("x", cuda_visible_devices="1")
        snapshot = get_gpu_usage_snapshot(four_gpu_host)
        decision = strategy.select(["1"], snapshot)
        # requested busy -> idle devices, trimmed to one board
        assert set(decision.gpu_ids) <= {"0", "2", "3"}

    def test_multi_device_selection_stays_on_one_board(self, four_gpu_host):
        strategy = BoardAwareAllocationStrategy()
        snapshot = get_gpu_usage_snapshot(four_gpu_host)
        decision = strategy.select([], snapshot)  # no preference, all idle
        boards = {int(g) // 2 for g in decision.gpu_ids}
        assert len(boards) == 1
        assert len(decision.gpu_ids) == 2
        assert "PLX locality" in decision.reason

    def test_prefers_board_with_more_idle_devices(self, four_gpu_host):
        strategy = BoardAwareAllocationStrategy()
        four_gpu_host.launch_process("x", cuda_visible_devices="0")
        snapshot = get_gpu_usage_snapshot(four_gpu_host)
        decision = strategy.select([], snapshot)
        assert set(decision.gpu_ids) == {"2", "3"}

    def test_scatter_under_full_load_kept_on_board(self, four_gpu_host):
        strategy = BoardAwareAllocationStrategy()
        for mask in ("0", "1", "2", "3"):
            four_gpu_host.launch_process("x", cuda_visible_devices=mask)
        snapshot = get_gpu_usage_snapshot(four_gpu_host)
        decision = strategy.select(["0"], snapshot)
        assert set(decision.gpu_ids) == {"0", "1"}  # lowest board wins tie

    def test_explicit_idle_request_honoured_across_boards(self, four_gpu_host):
        """Requested-and-idle selections are never second-guessed, even
        when they span boards (the user pinned them)."""
        strategy = BoardAwareAllocationStrategy()
        snapshot = get_gpu_usage_snapshot(four_gpu_host)
        decision = strategy.select(["1", "2"], snapshot)
        assert decision.gpu_ids == ("1", "2")
