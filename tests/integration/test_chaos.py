"""End-to-end chaos: a seeded fault plan kills a K80 die mid-workload.

The acceptance contract for the fault-injection layer:

* resilient deployment — every Racon/Bonito job still reaches OK via
  quarantine + backoff + resubmission;
* the whole run is byte-for-byte reproducible per seed;
* the stock deployment under the *same plan* demonstrably loses jobs —
  the delta is the resilience layer's contribution.
"""

from __future__ import annotations

import pytest

from repro.gpusim.errors import NVMLError
from repro.gpusim.faults import (
    SCENARIOS,
    FaultEvent,
    FaultKind,
    InjectionPlan,
    build_scenario,
)
from repro.workloads.chaos import ChaosJobResult, ChaosRunResult, run_chaos

#: Device 1 falls off the bus while a job occupies it (the unit Bonito
#: run spans t=5.0), then NVML flakes during the next mapping query.
KILLER_PLAN = InjectionPlan(
    name="die-under-running-job",
    seed=0,
    events=(
        FaultEvent(time=5.0, kind=FaultKind.DEVICE_LOST, device=1, xid=79),
        FaultEvent(time=6.0, kind=FaultKind.NVML_FLAKE,
                   nvml_code=NVMLError.NVML_ERROR_UNKNOWN),
    ),
)


class TestResilientRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run_chaos(KILLER_PLAN, jobs=8, resilient=True)

    def test_all_jobs_survive(self, result):
        assert result.crashed is None
        assert result.survived == 8
        assert result.lost == 0
        assert result.all_ok

    def test_faults_actually_fired(self, result):
        assert result.faults_fired == 2
        assert result.nvml_errors_served >= 1

    def test_device_death_was_quarantined(self, result):
        kinds = [kind for _, kind in result.quarantine_events]
        assert "quarantine" in kinds
        assert all(dev == "1" for dev, _ in result.quarantine_events)

    def test_killed_job_recovered_via_resubmission(self, result):
        chains = [j for j in result.jobs if j.resubmit_chain]
        assert chains, "the job on the dead die must have been resubmitted"
        assert all(j.state == "ok" for j in chains)
        assert all(len(j.resubmit_chain) >= 2 for j in chains)
        assert all("fallback" in j.destination for j in chains)

    def test_flake_absorbed_without_crashing(self, result):
        # One injected flake is consumed by the backoff retry around the
        # NVML probe (or, past the retry budget, degraded to the CPU arm);
        # either way mapping never crashes.
        assert result.nvml_errors_served >= 1
        assert result.crashed is None


class TestReproducibility:
    def test_byte_for_byte_identical(self):
        first = run_chaos(KILLER_PLAN, jobs=8, resilient=True)
        second = run_chaos(KILLER_PLAN, jobs=8, resilient=True)
        assert first.to_json() == second.to_json()

    def test_seeded_scenarios_reproduce(self):
        plan_a = build_scenario("k80-die-midrun", seed=3)
        plan_b = build_scenario("k80-die-midrun", seed=3)
        assert (run_chaos(plan_a, jobs=6).to_json()
                == run_chaos(plan_b, jobs=6).to_json())

    def test_different_seed_changes_the_run(self):
        base = run_chaos(build_scenario("k80-die-midrun", seed=3), jobs=6)
        other = run_chaos(build_scenario("k80-die-midrun", seed=4), jobs=6)
        assert base.plan != other.plan
        assert base.to_json() != other.to_json()


class TestStockCounterpart:
    """The same plan without the resilience layer loses jobs."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_chaos(KILLER_PLAN, jobs=8, resilient=False)

    def test_jobs_are_lost(self, result):
        assert not result.all_ok
        assert result.lost > 0

    def test_nvml_flake_crashes_mapping(self, result):
        assert result.crashed is not None
        assert "NVMLError" in result.crashed

    def test_no_recovery_machinery_ran(self, result):
        assert result.quarantine_events == []
        assert all(not j.resubmit_chain for j in result.jobs)
        assert result.launch_requeues == 0

    def test_resilience_delta_is_positive(self, result):
        resilient = run_chaos(KILLER_PLAN, jobs=8, resilient=True)
        assert resilient.survived > result.survived


class TestChaosCli:
    def test_resilient_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["faults", "--scenario", "k80-die-midrun",
                     "--seed", "3", "--jobs", "4"]) == 0
        out = capsys.readouterr().out
        assert "4/4" in out

    def test_stock_flaky_exit_one(self, capsys):
        from repro.cli import main

        assert main(["faults", "--scenario", "nvml-flaky",
                     "--jobs", "4", "--no-resilience"]) == 1
        out = capsys.readouterr().out
        assert "survived:" in out

    def test_plan_file_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "plan.json"
        path.write_text(KILLER_PLAN.to_json())
        assert main(["faults", "--plan", str(path), "--jobs", "2"]) == 0
        assert "die-under-running-job" in capsys.readouterr().out


class TestShedSemantics:
    """``shed`` is load management, ``lost`` is damage — counted apart."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_resilient_runs_never_crash(self, name):
        result = run_chaos(build_scenario(name, seed=0), jobs=8,
                           resilient=True)
        assert result.crashed is None
        assert result.lost == 0
        assert result.all_ok

    def test_ledger_identity_holds(self):
        result = run_chaos(KILLER_PLAN, jobs=8, resilient=True)
        assert (result.survived + result.shed + result.lost
                == result.jobs_requested)

    def test_shed_counts_apart_from_lost(self):
        # A synthetic ledger: one OK, one typed shed, one genuine loss.
        result = ChaosRunResult(plan=KILLER_PLAN, resilient=True,
                                jobs_requested=3)
        result.jobs.append(ChaosJobResult(
            tool="racon", state="ok", destination="slurm_cpu",
            resubmit_chain=()))
        result.jobs.append(ChaosJobResult(
            tool="racon", state="deleted", destination=None,
            resubmit_chain=(), shed_reason="queue_full"))
        assert (result.survived, result.shed, result.lost) == (1, 1, 1)
        data = result.to_dict()
        assert data["survived"] == 1
        assert data["shed"] == 1
        assert data["lost"] == 1
        assert result.jobs[1].to_dict()["shed_reason"] == "queue_full"
        assert not result.all_ok  # the loss, not the shed, breaks all_ok

    def test_serialisation_carries_the_shed_key(self):
        data = run_chaos(KILLER_PLAN, jobs=4, resilient=True).to_dict()
        assert data["shed"] == 0
        assert '"shed"' in run_chaos(KILLER_PLAN, jobs=4).to_json()

    def test_burst_storm_chaos_json_is_byte_stable(self):
        first = run_chaos(build_scenario("burst-storm", seed=1),
                          jobs=6).to_json()
        second = run_chaos(build_scenario("burst-storm", seed=1),
                           jobs=6).to_json()
        assert first == second
