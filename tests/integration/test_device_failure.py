"""Device loss (XID errors): the scheduler routes around dead GPUs."""

import pytest

from repro.core import build_deployment
from repro.core.gpu_usage import get_gpu_usage
from repro.galaxy.job import JobState
from repro.gpusim.smi import render_table, render_xml
from repro.tools.executors import register_paper_tools


class TestDeviceModel:
    def test_failure_kills_attached_processes(self, host):
        proc = host.launch_process("tool", cuda_visible_devices="0")
        casualties = host.device(0).mark_failed()
        assert casualties == [proc.pid]
        assert host.device(0).memory.used == 0
        assert not host.device(0).is_idle  # lost, not available

    def test_recover_restores_enumeration(self, host):
        host.device(0).mark_failed()
        assert len(host.healthy_devices()) == 1
        host.device(0).recover()
        assert len(host.healthy_devices()) == 2


class TestDriverSurfaces:
    def test_smi_drops_lost_device(self, host):
        host.device(0).mark_failed()
        xml = render_xml(host)
        assert "<attached_gpus>1</attached_gpus>" in xml
        assert "<minor_number>0</minor_number>" not in xml
        assert "<minor_number>1</minor_number>" in xml
        table = render_table(host)
        assert "00000000:05:00.0" not in table  # device 0's bus id

    def test_nvml_count_shrinks(self, host):
        from repro.gpusim.nvml import NvmlLibrary

        lib = NvmlLibrary(host)
        lib.nvmlInit()
        assert lib.nvmlDeviceGetCount() == 2
        host.device(1).mark_failed()
        assert lib.nvmlDeviceGetCount() == 1

    def test_get_gpu_usage_sees_survivors_only(self, host):
        host.device(0).mark_failed()
        available, all_gpus = get_gpu_usage(host)
        assert all_gpus == ["1"]
        assert available == ["1"]

    def test_cuda_never_enumerates_lost_device(self, host):
        host.device(0).mark_failed()
        proc = host.launch_process("tool", cuda_visible_devices="0,1")
        assert proc.device_indices == [1]


class TestSchedulingAroundFailures:
    @pytest.fixture
    def deployment(self):
        dep = build_deployment()
        register_paper_tools(dep.app)
        return dep

    def test_jobs_avoid_failed_device(self, deployment):
        """Racon requests GPU 0; GPU 0 is dead; the job lands on GPU 1."""
        deployment.gpu_host.device(0).mark_failed()
        job = deployment.run_tool("racon", {"workload": "unit"})
        assert job.state is JobState.OK
        assert job.environment["CUDA_VISIBLE_DEVICES"] == "1"
        assert job.metrics.gpu_ids == ["1"]

    def test_all_devices_failed_degrades_to_cpu(self, deployment):
        """Every GPU lost: NVML counts zero, the job runs its CPU arm —
        the same user-agnostic fallback as a GPU-less cluster."""
        for device in deployment.gpu_host.devices:
            device.mark_failed()
        job = deployment.run_tool("racon", {"threads": 4, "workload": "unit"})
        assert job.state is JobState.OK
        assert job.environment["GALAXY_GPU_ENABLED"] == "false"
        assert job.command_line.startswith("racon ")

    def test_recovery_restores_gpu_mapping(self, deployment):
        for device in deployment.gpu_host.devices:
            device.mark_failed()
        deployment.gpu_host.device(1).recover()
        job = deployment.run_tool("racon", {"workload": "unit"})
        assert job.environment["GALAXY_GPU_ENABLED"] == "true"
        assert job.environment["CUDA_VISIBLE_DEVICES"] == "1"

    def test_mid_fleet_failure_in_trace(self, deployment):
        """A device dies mid-trace; subsequent placements avoid it."""
        from repro.workloads.traces import TraceReplayer, generate_trace

        trace = generate_trace(
            n_jobs=10, mean_interarrival_s=4.0, seed=3, tool_mix={"racon": 1.0}
        )
        deployment.gpu_host.device(0).mark_failed()
        result = TraceReplayer(deployment).replay(trace)
        for job in result.jobs:
            assert "0" not in job.gpu_ids
