"""Whole-stack flows: submission through results, mirroring paper Fig. 2."""

import pytest

from repro.core import build_deployment
from repro.galaxy.job import JobState
from repro.tools.executors import register_paper_tools
from repro.tools.mapping import MinimizerMapper
from repro.tools.racon.alignment import identity


class TestFourStepFlow:
    def test_submit_map_run_collect(self, deployment):
        """Paper Fig. 2: submission -> runner mapping -> execution ->
        result collection."""
        job = deployment.app.submit("racon", {"threads": 4, "workload": "unit"})
        assert job.state is JobState.NEW
        destination = deployment.app.map_destination(job)
        assert destination.destination_id == "local_gpu"
        deployment.app.runner_for(destination).queue_job(job, destination)
        assert job.state is JobState.OK
        assert job.stdout

    def test_monitor_collects_during_tool_run(self, deployment):
        job = deployment.run_tool("racon", {"threads": 4, "workload": "unit"})
        session = deployment.monitor.session_for(job.job_id)
        assert session.stopped
        assert len(session.samples) >= 2
        csv = deployment.monitor.to_csv(job.job_id)
        assert csv.count("\n") == len(session.samples) + 1

    def test_full_paper_scale_comparison(self, deployment):
        """The headline §VI-A numbers through the full Galaxy stack."""
        gpu_job = deployment.run_tool(
            "racon", {"threads": 4, "workload": "dataset"}
        )
        cpu_only = build_deployment(
            node=__import__("repro.cluster.node", fromlist=["ComputeNode"]).ComputeNode.cpu_only()
        )
        register_paper_tools(cpu_only.app)
        cpu_job = cpu_only.run_tool("racon", {"threads": 4, "workload": "dataset"})
        speedup = cpu_job.metrics.runtime_seconds / gpu_job.metrics.runtime_seconds
        assert speedup == pytest.approx(2.05, abs=0.1)


class TestRealDataThroughTheStack:
    def test_polish_pipeline_with_real_mapper(self, deployment, small_read_set):
        """Generate reads, map them with the minimizer mapper, polish via
        the Galaxy job — the full Racon workflow on real (miniature) data."""
        from repro.workloads.generator import corrupted_backbone

        draft = corrupted_backbone(small_read_set, seed=6)
        mapper = MinimizerMapper(draft, k=13, w=5)
        mappings = mapper.map_reads(small_read_set.records)
        job = deployment.run_tool(
            "racon",
            {
                "workload": "payload",
                "window_length": 200,
                "payload": {
                    "backbone": draft,
                    "reads": small_read_set.records,
                    "mappings": mappings,
                },
            },
        )
        truth = small_read_set.genome.sequence
        assert identity(job.result.polished.sequence, truth) > identity(
            draft.sequence, truth
        )

    def test_basecall_then_polish_chain(self, deployment, pore_model):
        """Chain the two paper tools like a real pipeline: basecall
        squiggles, then use the calls as polishing reads."""
        from repro.tools.bonito.signal import SquiggleSimulator
        from repro.workloads.generator import simulate_genome, simulate_reads, corrupted_backbone

        genome = simulate_genome(1200, seed=33)
        simulator = SquiggleSimulator(pore_model, noise_sd_pa=0.8)
        signal_reads = simulator.simulate_reads(genome, n_reads=24, mean_length=280, seed=5)
        basecall_job = deployment.run_tool(
            "bonito",
            {"workload": "payload", "payload": {"pore": pore_model, "reads": signal_reads}},
        )
        called = basecall_job.result.records
        assert basecall_job.result.mean_identity > 0.75

        read_set = simulate_reads(genome, n_reads=1, mean_length=100, seed=1)
        draft = corrupted_backbone(read_set, seed=2, error_scale=1.5)
        mapper = MinimizerMapper(draft, k=11, w=5)
        mappings = mapper.map_reads(called)
        assert mappings, "basecalled reads failed to map back to the draft"
        polish_job = deployment.run_tool(
            "racon",
            {
                "workload": "payload",
                "window_length": 200,
                "payload": {"backbone": draft, "reads": called, "mappings": mappings},
            },
        )
        assert identity(polish_job.result.polished.sequence, genome) > identity(
            draft.sequence, genome
        )


class TestMonitorAcrossJobs:
    def test_per_job_sessions_isolated(self, deployment):
        job1 = deployment.run_tool("racon", {"workload": "unit"})
        job2 = deployment.run_tool("racon", {"workload": "unit", "batches": 16})
        s1 = deployment.monitor.session_for(job1.job_id)
        s2 = deployment.monitor.session_for(job2.job_id)
        assert s1.started_at < s2.started_at
        assert s1.stopped and s2.stopped
