"""Failure injection across the stack: every error path exercised."""

from repro.core import build_deployment
from repro.galaxy.job import JobState
from repro.tools.executors import register_paper_tools


class TestContainerFailures:
    def test_missing_nvidia_docker_fails_gpu_container_job(self):
        """The failure GYAN's availability checks exist to avoid: GPU
        flag without the NVIDIA runtime installed."""
        deployment = build_deployment(nvidia_docker_installed=False)
        register_paper_tools(deployment.app)
        deployment.route_tool_to("racon", "docker_dynamic")
        job = deployment.run_tool("racon", {"workload": "unit"})
        assert job.state is JobState.ERROR
        assert "nvidia-docker" in job.stderr

    def test_missing_image_fails_job(self, deployment):
        from repro.galaxy.tool_xml import parse_tool_xml

        deployment.app.install_tool(
            parse_tool_xml(
                '<tool id="ghosted">'
                "<requirements>"
                '<requirement type="compute">gpu</requirement>'
                '<container type="docker">nobody/ghost:1</container>'
                "</requirements>"
                "<command>racon_gpu -t 1</command></tool>"
            )
        )
        deployment.route_tool_to("ghosted", "docker_dynamic")
        job = deployment.run_tool("ghosted", {"workload": "unit"})
        assert job.state is JobState.ERROR
        assert "not found" in job.stderr

    def test_gpu_process_released_after_container_failure(self):
        deployment = build_deployment(nvidia_docker_installed=False)
        register_paper_tools(deployment.app)
        deployment.route_tool_to("racon", "docker_dynamic")
        deployment.run_tool("racon", {"workload": "unit"})
        assert all(d.is_idle for d in deployment.gpu_host.devices)


class TestDeviceFailures:
    def test_device_oom_inside_tool_fails_job_cleanly(self, deployment):
        """A tool that over-allocates device memory errors out, and the
        device is fully reclaimed afterwards."""
        from repro.galaxy.app import ToolExecutionResult
        from repro.gpusim.kernels import KernelTimingModel

        def hog(argv, ctx):
            timing = KernelTimingModel(
                ctx.node.gpu_host, ctx.gpu_devices[0], pid=ctx.pid
            )
            timing.malloc(50 * 1024**3)  # > 11441 MiB
            return ToolExecutionResult()

        deployment.app.register_executor("racon_gpu", hog)
        job = deployment.run_tool("racon", {"workload": "unit"})
        assert job.state is JobState.ERROR
        assert "out of memory" in job.stderr
        assert deployment.gpu_host.device(0).memory.used == 0

    def test_monitor_stops_even_when_tool_crashes(self, deployment):
        def boom(argv, ctx):
            ctx.clock.advance(2.5)
            raise RuntimeError("mid-run crash")

        deployment.app.register_executor("racon_gpu", boom)
        job = deployment.run_tool("racon", {"workload": "unit"})
        assert job.state is JobState.ERROR
        session = deployment.monitor.session_for(job.job_id)
        assert session.stopped
        assert len(session.samples) >= 3  # sampled through the crash


class TestSchedulingEdgeCases:
    def test_empty_cuda_visible_devices_means_cpu(self, deployment):
        """An empty device mask exposes nothing; the process attaches
        nowhere and the tool must fall back to its CPU arm."""
        proc = deployment.gpu_host.launch_process("x", cuda_visible_devices="")
        assert proc.device_indices == []
        deployment.gpu_host.terminate_process(proc.pid)

    def test_malformed_mask_truncates_not_crashes(self, deployment):
        proc = deployment.gpu_host.launch_process(
            "x", cuda_visible_devices="1,garbage,0"
        )
        assert proc.device_indices == [1]
        deployment.gpu_host.terminate_process(proc.pid)

    def test_many_sequential_jobs_leave_no_residue(self, deployment):
        for _ in range(10):
            job = deployment.run_tool("racon", {"workload": "unit"})
            assert job.state is JobState.OK
        assert all(d.is_idle for d in deployment.gpu_host.devices)
        assert deployment.gpu_host.device(0).memory.used == 0
        assert deployment.node.cpu_slots_free == 48

    def test_workflow_failure_leaves_devices_clean(self, deployment):
        from repro.galaxy.workflow import WorkflowDefinition, WorkflowRunner

        def boom(argv, ctx):
            raise RuntimeError("step crash")

        deployment.app.register_executor("racon_gpu", boom)
        wf = WorkflowDefinition(name="doomed")
        wf.add_step("racon", {"workload": "unit"})
        wf.add_step("seqstats", {"threads": 1})
        invocation = WorkflowRunner(deployment.app).invoke(wf)
        assert not invocation.succeeded
        assert all(d.is_idle for d in deployment.gpu_host.devices)


class TestHistoryCollection:
    def test_successful_job_outputs_land_in_history(self, deployment):
        before = len(deployment.app.histories[0])
        deployment.run_tool("racon", {"workload": "unit"})
        history = deployment.app.histories[0]
        assert len(history) == before + 1
        dataset = history.get("racon/consensus")
        assert dataset.format == "fasta"
        assert dataset.created_by_job is not None

    def test_failed_job_adds_nothing(self, deployment):
        def boom(argv, ctx):
            raise RuntimeError("x")

        deployment.app.register_executor("racon_gpu", boom)
        before = len(deployment.app.histories[0])
        deployment.run_tool("racon", {"workload": "unit"})
        assert len(deployment.app.histories[0]) == before


class TestChromeTrace:
    def test_trace_export_valid_json(self, deployment):
        import json

        from repro.gpusim.profiler import CudaProfiler

        deployment.app.profiler = CudaProfiler()
        deployment.run_tool("racon", {"workload": "dataset"})
        trace = json.loads(deployment.app.profiler.to_chrome_trace())
        events = trace["traceEvents"]
        assert events
        assert all(e["ph"] == "X" for e in events)
        names = {e["name"] for e in events}
        assert "generatePOAKernel" in names
        assert all(e["dur"] >= 0 for e in events)
