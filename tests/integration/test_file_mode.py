"""File-driven Galaxy jobs: the Racon executor reads a real working dir."""

import pytest

from repro.galaxy.job import JobState
from repro.tools.racon.alignment import identity
from repro.workloads.files import load, materialize
from repro.workloads.generator import simulate_read_set


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    read_set = simulate_read_set(
        genome_length=1500, coverage=10, mean_read_length=300, seed=55
    )
    directory = tmp_path_factory.mktemp("racon_job")
    return materialize(read_set, directory)


class TestFileModeExecution:
    def test_gpu_job_polishes_from_files(self, deployment, dataset_dir):
        job = deployment.run_tool(
            "racon",
            {
                "workload": "files",
                "dataset_dir": dataset_dir.directory,
                "window_length": 200,
            },
        )
        assert job.state is JobState.OK
        loaded = load(dataset_dir)
        truth = loaded.truth.sequence
        assert identity(job.result.polished.sequence, truth) > identity(
            loaded.backbone.sequence, truth
        )

    def test_cpu_and_gpu_file_runs_identical(self, deployment, dataset_dir):
        from repro.cluster.node import ComputeNode
        from repro.core import build_deployment
        from repro.tools.executors import register_paper_tools

        params = {
            "workload": "files",
            "dataset_dir": dataset_dir.directory,
            "window_length": 200,
        }
        gpu_job = deployment.run_tool("racon", dict(params))
        cpu_dep = build_deployment(node=ComputeNode.cpu_only())
        register_paper_tools(cpu_dep.app)
        cpu_job = cpu_dep.run_tool("racon", dict(params))
        assert gpu_job.result.polished.sequence == cpu_job.result.polished.sequence

    def test_missing_directory_fails_job(self, deployment):
        job = deployment.run_tool(
            "racon", {"workload": "files", "dataset_dir": "/nonexistent/place"}
        )
        assert job.state is JobState.ERROR
