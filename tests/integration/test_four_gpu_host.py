"""The paper's full testbed: two K80 boards = four GPU dies.

Most experiments use one board (devices 0-1); §V-B's machine carries
two.  These tests scale the scheduling machinery to four minor numbers.
"""

import pytest

from repro.cluster.node import ComputeNode, NodeResources
from repro.core import build_deployment
from repro.gpusim.host import make_k80_host
from repro.gpusim.smi import process_placement
from repro.tools.executors import register_paper_tools


@pytest.fixture
def four_gpu_deployment():
    host = make_k80_host(boards=2)
    node = ComputeNode(
        hostname="gyan-node-big",
        resources=NodeResources(cpu_slots=48, memory_gib=128, gpu_count=4),
        clock=host.clock,
        gpu_host=host,
    )
    deployment = build_deployment(node=node)
    register_paper_tools(deployment.app)
    return deployment


def launch(deployment, tool_id, **params):
    params.setdefault("workload", "unit")
    job = deployment.app.submit(tool_id, params)
    destination = deployment.app.map_destination(job)
    runner = deployment.app.runner_for(destination)
    return runner.launch(job, destination)


class TestFourDieTopology:
    def test_two_boards_four_devices(self, four_gpu_deployment):
        host = four_gpu_deployment.gpu_host
        assert host.device_count == 4
        assert len({d.bus_id for d in host.devices}) == 4

    def test_nvml_counts_four(self, four_gpu_deployment):
        from repro.gpusim.nvml import NvmlLibrary

        lib = NvmlLibrary(four_gpu_deployment.gpu_host)
        lib.nvmlInit()
        assert lib.nvmlDeviceGetCount() == 4

    def test_smi_lists_four(self, four_gpu_deployment):
        from repro.gpusim.smi import render_xml

        xml = render_xml(four_gpu_deployment.gpu_host)
        assert "<attached_gpus>4</attached_gpus>" in xml


class TestSchedulingAcrossFourDies:
    def test_pid_fills_requested_then_idle(self, four_gpu_deployment):
        dep = four_gpu_deployment
        first = launch(dep, "racon")   # wants 0 -> 0
        second = launch(dep, "racon")  # 0 busy -> idle 1,2,3
        placement = process_placement(dep.gpu_host)
        assert placement[0] == [first.host_process.pid]
        for gid in (1, 2, 3):
            assert second.host_process.pid in placement[gid]

    def test_memory_packs_one_at_a_time(self, four_gpu_deployment):
        dep = four_gpu_deployment
        dep.set_allocation_strategy("memory")
        seen = []
        launch(dep, "racon")  # requested 0 idle -> 0
        for _ in range(3):
            handle = launch(dep, "bonito")  # requested 1 eventually busy
            seen.append(handle.host_process.device_indices)
        # each launch lands on exactly one device
        assert all(len(devices) == 1 for devices in seen)
        placement = process_placement(dep.gpu_host)
        # four jobs over four devices: nobody shares
        assert all(len(pids) == 1 for pids in placement.values())

    def test_scatter_needs_all_four_busy(self, four_gpu_deployment):
        dep = four_gpu_deployment
        for _ in range(4):
            launch(dep, "racon")
        fifth = launch(dep, "racon")
        assert fifth.host_process.device_indices == [0, 1, 2, 3]

    def test_board_loss_leaves_other_board_working(self, four_gpu_deployment):
        dep = four_gpu_deployment
        dep.gpu_host.device(0).mark_failed()
        dep.gpu_host.device(1).mark_failed()
        job = dep.run_tool("racon", {"workload": "unit"})
        assert job.environment["GALAXY_GPU_ENABLED"] == "true"
        assert set(job.environment["CUDA_VISIBLE_DEVICES"].split(",")) <= {"2", "3"}
