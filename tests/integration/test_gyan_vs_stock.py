"""GYAN vs stock Galaxy: the design properties of §IV.

* minimal/no user involvement — the same wrapper works everywhere;
* user-agnostic degradation — GPU tools silently run on CPU when no GPU;
* original execution flow retained — CPU-only tools behave identically
  with and without GYAN installed.
"""

import pytest

from repro.cluster.node import ComputeNode
from repro.core import build_deployment
from repro.galaxy.job import JobState
from repro.galaxy.runners.local import LocalRunner
from repro.tools.executors import register_paper_tools


@pytest.fixture
def stock_deployment():
    """A deployment whose local runner has NO GYAN mapper installed."""
    deployment = build_deployment()
    register_paper_tools(deployment.app)
    stock_local = LocalRunner(deployment.app, gpu_mapper=None)
    deployment.app.register_runner("local", stock_local)
    return deployment


class TestStockGalaxy:
    def test_stock_runs_gpu_tool_on_cpu_arm(self, stock_deployment):
        """Pre-GYAN Galaxy: even with GPUs present and the tool GPU-
        capable, the CPU arm runs (the paper's motivating deficiency).

        Note: the dynamic rule sets the app-level env var; the stock
        *runner* never exports it to the job, so the wrapper's GPU arm
        cannot trigger."""
        stock_deployment.app.environment.clear()
        job = stock_deployment.app.submit("racon", {"threads": 4, "workload": "unit"})
        destination = stock_deployment.job_config.destination("local_cpu")
        stock_deployment.app.runner_for(destination).queue_job(job, destination)
        assert job.command_line.startswith("racon -t 4")
        assert job.state is JobState.OK

    def test_cpu_tools_identical_under_gyan(self, deployment, stock_deployment):
        """GYAN does not perturb CPU-only tools at all."""
        gyan_job = deployment.run_tool("seqstats", {"threads": 2})
        stock_job = stock_deployment.app.submit("seqstats", {"threads": 2})
        destination = stock_deployment.job_config.destination("local_cpu")
        stock_deployment.app.runner_for(destination).queue_job(stock_job, destination)
        assert gyan_job.command_line == stock_job.command_line
        assert gyan_job.state == stock_job.state


class TestUserAgnosticDegradation:
    def test_same_wrapper_gpu_node_vs_cpu_node(self):
        """One wrapper, two clusters: GPU node runs racon_gpu, CPU node
        runs racon — zero user involvement (GYAN feature i)."""
        gpu_dep = build_deployment()
        register_paper_tools(gpu_dep.app)
        cpu_dep = build_deployment(node=ComputeNode.cpu_only())
        register_paper_tools(cpu_dep.app)
        params = {"threads": 4, "batches": 1, "workload": "unit"}
        gpu_job = gpu_dep.run_tool("racon", dict(params))
        cpu_job = cpu_dep.run_tool("racon", dict(params))
        assert gpu_job.command_line.startswith("racon_gpu")
        assert cpu_job.command_line.startswith("racon ")
        assert gpu_job.state is JobState.OK and cpu_job.state is JobState.OK
        assert gpu_job.metrics.runtime_seconds < cpu_job.metrics.runtime_seconds

    def test_environment_variable_contract(self):
        """GALAXY_GPU_ENABLED is 'true' iff GPU destination configured."""
        gpu_dep = build_deployment()
        register_paper_tools(gpu_dep.app)
        job = gpu_dep.run_tool("racon", {"workload": "unit"})
        assert job.environment["GALAXY_GPU_ENABLED"] == "true"
        cpu_dep = build_deployment(node=ComputeNode.cpu_only())
        register_paper_tools(cpu_dep.app)
        job = cpu_dep.run_tool("racon", {"workload": "unit"})
        assert job.environment["GALAXY_GPU_ENABLED"] == "false"


class TestNoExtraOverheadClaim:
    def test_gyan_dispatch_adds_no_virtual_time(self, deployment):
        """§V: 'GYAN executes and schedules jobs to GPUs without adding
        another layer of software stack' — mapping happens at dispatch
        and costs no tool-visible time."""
        job = deployment.app.submit("racon", {"workload": "unit"})
        before = deployment.clock.now
        deployment.app.map_destination(job)
        deployment.mapper.prepare_environment(job)
        assert deployment.clock.now == before
