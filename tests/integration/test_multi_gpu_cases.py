"""The paper's four multi-GPU experiments (§VI-C, Figs. 8-11).

Each case submits tools with explicit GPU-ID requirements (the
requirement ``version`` tag), overlaps their execution with the
launch/finish split, and asserts the placement the paper reports,
verified through the same interface the paper uses: ``nvidia-smi``.
"""

import pytest

from repro.core import build_deployment
from repro.gpusim.smi import process_placement, render_table
from repro.tools.executors import register_paper_tools


@pytest.fixture
def dep():
    """A deployment whose racon wants GPU 0 and bonito GPU 1 (§VI-C)."""
    deployment = build_deployment(allocation_strategy="pid")
    register_paper_tools(deployment.app, racon_gpu_ids="0", bonito_gpu_ids="1")
    return deployment


def launch(deployment, tool_id, **params):
    params.setdefault("workload", "unit")
    job = deployment.app.submit(tool_id, params)
    destination = deployment.app.map_destination(job)
    runner = deployment.app.runner_for(destination)
    return runner, runner.launch(job, destination)


class TestCase1TwoDifferentTools:
    def test_each_tool_lands_on_its_requested_gpu(self, dep):
        """Fig. 8 Case 1 / Fig. 10: Racon -> GPU 0, Bonito -> GPU 1."""
        racon_runner, racon = launch(dep, "racon")
        bonito_runner, bonito = launch(dep, "bonito")
        placement = process_placement(dep.gpu_host)
        assert placement[0] == [racon.host_process.pid]
        assert placement[1] == [bonito.host_process.pid]
        racon_runner.finish(racon)
        bonito_runner.finish(bonito)
        assert dep.gpu_host.available_devices() == dep.gpu_host.devices

    def test_console_output_shape(self, dep):
        _, racon = launch(dep, "racon")
        _, bonito = launch(dep, "bonito")
        table = render_table(dep.gpu_host)
        assert "/usr/bin/racon_gpu" in table
        assert "/usr/bin/bonito" in table


class TestCase2SameToolTwice:
    def test_second_instance_diverted_to_idle_gpu(self, dep):
        """Fig. 8 Case 2: two Bonitos both requesting GPU 1; the second
        is scheduled to the idle GPU 0."""
        _, first = launch(dep, "bonito")
        _, second = launch(dep, "bonito")
        placement = process_placement(dep.gpu_host)
        assert placement[1] == [first.host_process.pid]
        assert placement[0] == [second.host_process.pid]

    def test_mapper_records_divert_reason(self, dep):
        launch(dep, "bonito")
        launch(dep, "bonito")
        decision = dep.mapper.last_decision()
        assert decision.gpu_ids == ("0",)
        assert "busy" in decision.reason


class TestCase3FourInstancesPidStrategy:
    def test_scatter_when_all_busy(self, dep):
        """Fig. 9/11 Case 3: four Racons — first two fill GPUs 0 and 1,
        the rest scatter across both."""
        dep.route_tool_to("racon", "docker_dynamic")  # containerized, as in the paper
        dep.registry.pull("gulsumgudukbay/racon_dockerfile:latest")
        launched = [launch(dep, "racon")[1] for _ in range(4)]
        pids = [l.host_process.pid for l in launched]
        placement = process_placement(dep.gpu_host)
        assert placement[0][0] == pids[0]
        assert placement[1][0] == pids[1]
        # third and fourth attached to BOTH devices
        for pid in pids[2:]:
            assert pid in placement[0] and pid in placement[1]

    def test_console_output_matches_fig11_structure(self, dep):
        dep.route_tool_to("racon", "docker_dynamic")
        dep.registry.pull("gulsumgudukbay/racon_dockerfile:latest")
        for _ in range(4):
            launch(dep, "racon")
        table = render_table(dep.gpu_host)
        rows = [line for line in table.splitlines() if "racon_gpu" in line]
        assert len(rows) == 6  # 2 exclusive + 2 scattered on both devices
        assert all("60MiB" in row for row in rows)


class TestCase4MemoryStrategy:
    def test_min_memory_device_chosen(self, dep):
        """Fig. 9 Case 4: Racon on GPU 0 (small footprint), Bonito on
        GPU 1 (large footprint); a second Bonito goes to GPU 0."""
        dep.set_allocation_strategy("memory")
        _, racon = launch(dep, "racon")
        _, bonito1 = launch(dep, "bonito")
        # Bonito's network occupies significant device memory (Fig. 10
        # shows 2734 MiB on GPU 1).
        dep.gpu_host.device(1).alloc(2674 * 1024**2, pid=bonito1.host_process.pid)
        _, bonito2 = launch(dep, "bonito")
        placement = process_placement(dep.gpu_host)
        assert bonito2.host_process.pid in placement[0]
        assert bonito2.host_process.pid not in placement[1]

    def test_memory_strategy_single_device_no_scatter(self, dep):
        """Case 4's rationale: no multi-GPU overhead for tools without
        multi-GPU support — exactly one device exposed."""
        dep.set_allocation_strategy("memory")
        launch(dep, "racon")
        launch(dep, "bonito")
        _, third = launch(dep, "bonito")
        assert len(third.host_process.device_indices) == 1

    def test_pid_strategy_would_scatter_instead(self, dep):
        """Contrast: under PID allocation the third job scatters."""
        launch(dep, "racon")
        launch(dep, "bonito")
        _, third = launch(dep, "bonito")
        assert len(third.host_process.device_indices) == 2
