"""Cross-cutting property tests over generated host states and workloads."""

from hypothesis import given, settings, strategies as st

from repro.core.gpu_usage import get_gpu_usage, get_gpu_usage_snapshot
from repro.gpusim.host import GPUHost
from repro.gpusim.smi import SmiSoup, process_placement, render_xml

# A random host state: device count and a sequence of launch/terminate
# actions with device masks.
host_actions = st.lists(
    st.tuples(
        st.sampled_from(["launch", "terminate"]),
        st.text(alphabet="0123,", max_size=6),
    ),
    max_size=20,
)


def build_host(device_count: int, actions) -> GPUHost:
    host = GPUHost(device_count=device_count)
    live: list[int] = []
    for action, mask in actions:
        if action == "launch":
            proc = host.launch_process("tool", cuda_visible_devices=mask or None)
            live.append(proc.pid)
        elif live:
            host.terminate_process(live.pop(0))
    return host


class TestSmiRoundtrip:
    @given(device_count=st.integers(1, 4), actions=host_actions)
    @settings(max_examples=40, deadline=None)
    def test_render_parse_recovers_placement(self, device_count, actions):
        """For ANY reachable host state, parsing nvidia-smi XML recovers
        the exact (minor id -> pids) placement — the property GYAN's
        Pseudocode 1 depends on."""
        host = build_host(device_count, actions)
        soup = SmiSoup(render_xml(host))
        parsed: dict[int, list[int]] = {}
        for gpu in soup.find("nvidia_smi_log").find_all("gpu"):
            minor = int(gpu.find("minor_number").text)
            parsed[minor] = [
                int(pi.find("pid").text)
                for pi in gpu.find("processes").find_all("process_info")
            ]
        assert parsed == process_placement(host)

    @given(device_count=st.integers(1, 4), actions=host_actions)
    @settings(max_examples=40, deadline=None)
    def test_get_gpu_usage_partitions_devices(self, device_count, actions):
        """available + busy always partitions all_gpus, and matches the
        devices' live process state."""
        host = build_host(device_count, actions)
        available, all_gpus = get_gpu_usage(host)
        assert all_gpus == [str(i) for i in range(device_count)]
        assert set(available) <= set(all_gpus)
        for device in host.devices:
            gid = str(device.minor_number)
            assert (gid in available) == device.is_idle

    @given(device_count=st.integers(1, 4), actions=host_actions)
    @settings(max_examples=40, deadline=None)
    def test_snapshot_memory_consistent(self, device_count, actions):
        """fb_used + fb_free == capacity for every device, always."""
        host = build_host(device_count, actions)
        snapshot = get_gpu_usage_snapshot(host)
        for device in host.devices:
            gid = str(device.minor_number)
            total = snapshot.fb_used_mib[gid] + snapshot.fb_free_mib[gid]
            assert total == device.fb_total_mib


class TestMapperProperties:
    @given(
        masks=st.lists(st.sampled_from(["0", "1", "0,1", None]), max_size=6),
        strategy=st.sampled_from(["pid", "memory", "utilization"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_mapping_env_always_wellformed(self, masks, strategy):
        """Under ANY pre-existing occupancy and any strategy, the mapper
        emits a well-formed environment whose devices exist."""
        from repro.core.allocation import strategy_by_name
        from repro.core.mapper import GpuComputationMapper
        from repro.galaxy.job import GalaxyJob
        from repro.galaxy.tool_xml import parse_tool_xml
        from repro.gpusim.host import make_k80_host

        host = make_k80_host()
        for mask in masks:
            host.launch_process("occupant", cuda_visible_devices=mask)
        mapper = GpuComputationMapper(host, strategy=strategy_by_name(strategy))
        tool = parse_tool_xml(
            '<tool id="g"><requirements>'
            '<requirement type="compute" version="0">gpu</requirement>'
            "</requirements><command>racon_gpu</command></tool>"
        )
        env = mapper.prepare_environment(GalaxyJob(tool=tool))
        assert env["GALAXY_GPU_ENABLED"] == "true"
        devices = env["CUDA_VISIBLE_DEVICES"].split(",")
        assert devices
        assert set(devices) <= {"0", "1"}
        assert len(set(devices)) == len(devices)
