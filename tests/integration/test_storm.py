"""Burst storms end to end: hardened sheds but never loses; stock breaks.

The acceptance contract for the overload layer (``docs/overload.md``):

* hardened deployment — every *admitted* job completes OK; any refusals
  are typed sheds, never silent losses;
* the whole run is byte-for-byte reproducible per seed;
* the stock deployment under the *same storm* demonstrably breaks — the
  delta is the overload layer's contribution.
"""

from __future__ import annotations

import json

import pytest

from repro.resilience.shedding import ShedReason
from repro.workloads.storm import generate_storm_trace, run_storm


class TestStormTrace:
    def test_trace_is_seeded_deterministic(self):
        assert generate_storm_trace(24, seed=3) == generate_storm_trace(24, seed=3)
        assert generate_storm_trace(24, seed=3) != generate_storm_trace(24, seed=4)

    def test_arrivals_strictly_increase(self):
        trace = generate_storm_trace(32, seed=0)
        times = [e.arrival_time for e in trace.entries]
        assert len(times) == 32
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_bursts_arrive_faster_than_calm(self):
        # Wave shape: 6 calm arrivals then 10 at 10x the rate.  The mean
        # gap inside the burst window must be well under the calm mean.
        trace = generate_storm_trace(16, seed=0)
        times = [e.arrival_time for e in trace.entries]
        gaps = [b - a for a, b in zip(times, times[1:])]
        calm = sum(gaps[:5]) / 5
        burst = sum(gaps[6:15]) / 9
        assert burst < calm / 2

    @pytest.mark.parametrize("kwargs", [
        {"n_jobs": 0},
        {"base_interarrival_s": 0.0},
        {"burst_factor": 0.5},
        {"calm_jobs": 0},
        {"burst_jobs": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            generate_storm_trace(**kwargs)


class TestHardenedStorm:
    @pytest.fixture(scope="class")
    def result(self):
        return run_storm(jobs=48, seed=0, hardened=True)

    def test_zero_admitted_losses(self, result):
        assert result.crashed is None
        assert result.lost_admitted == 0
        assert result.all_admitted_ok
        assert result.completed_ok == result.admitted

    def test_the_storm_actually_overloaded(self, result):
        # If nothing was refused or redirected, the trace never filled a
        # queue and this test proves nothing.
        assert result.shed_total > 0
        assert result.redirects > 0
        assert result.brownout_peak_level > 0

    def test_sheds_are_typed(self, result):
        valid = {reason.value for reason in ShedReason}
        assert set(result.shed) <= valid
        assert all(count > 0 for count in result.shed.values())

    def test_ledger_identity_holds(self, result):
        assert (result.admitted + result.shed_total + result.never_submitted
                == result.jobs_requested)

    def test_json_is_byte_stable(self, result):
        assert result.to_json() == run_storm(jobs=48, seed=0).to_json()

    def test_serialisation_shape(self, result):
        data = json.loads(result.to_json())
        assert data["schema"] == "gyan.storm/v1"
        assert data["hardened"] is True
        assert data["shed_total"] == sum(data["shed"].values())
        assert list(data["shed"]) == sorted(data["shed"])


class TestStockStorm:
    @pytest.fixture(scope="class")
    def result(self):
        return run_storm(jobs=48, seed=0, hardened=False)

    def test_stock_breaks_under_the_same_storm(self, result):
        assert result.crashed is not None or result.lost_admitted > 0
        assert not result.all_admitted_ok

    def test_stock_never_sheds(self, result):
        # No admission control: a stock deployment cannot refuse work,
        # it can only lose it.
        assert result.shed == {}

    def test_hardened_beats_stock(self, result):
        hardened = run_storm(jobs=48, seed=0, hardened=True)
        assert hardened.completed_ok > result.completed_ok


class TestStormCli:
    def test_hardened_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["storm", "--jobs", "48", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "lost (admitted):    0" in out

    def test_stock_exit_one(self, capsys):
        from repro.cli import main

        assert main(["storm", "--jobs", "48", "--seed", "0",
                     "--no-hardening"]) == 1

    def test_json_format_round_trips(self, capsys):
        from repro.cli import main

        assert main(["storm", "--jobs", "16", "--seed", "0",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["hardened"] is True
        assert data["lost_admitted"] == 0

    def test_shed_fraction_gate(self, capsys):
        from repro.cli import main

        # seed-0/48 sheds some jobs; a zero tolerance must fail the run
        # even though nothing was lost.
        assert main(["storm", "--jobs", "48", "--seed", "0",
                     "--max-shed-fraction", "0.0"]) == 1

    def test_invalid_trace_exit_two(self, capsys):
        from repro.cli import main

        assert main(["storm", "--jobs", "0"]) == 2
        assert "storm:" in capsys.readouterr().err
