"""Differential placement parity: Process-ID vs Process-Allocated-Memory.

The paper's two allocation strategies (§IV-C1 and §IV-C2) agree while a
requested device is idle and *must* diverge under contention: the PID
strategy scatters an incoming job across every (busy) device, while the
memory strategy packs it onto the single device with the least
framebuffer in use.  These tests push identical job streams through both
strategies — on the stock and the resilient deployment — and assert
exactly that divergence, so a regression in either strategy (or in the
snapshot plumbing they share) shows up as a parity break.
"""

from __future__ import annotations

import pytest

from repro.core.orchestrator import build_deployment
from repro.tools.executors import register_paper_tools
from repro.workloads.traces import TraceReplayer, generate_trace

#: Dense arrivals so GPU jobs overlap and contention is guaranteed.
TRACE_KWARGS = dict(n_jobs=24, mean_interarrival_s=1.0, seed=7)


def replay(allocation: str, resilient: bool):
    deployment = build_deployment(
        allocation_strategy=allocation, resilient=resilient
    )
    register_paper_tools(deployment.app)
    trace = generate_trace(**TRACE_KWARGS)
    result = TraceReplayer(deployment, colocation_slowdown=True).replay(trace)
    return trace, result


class TestMapperLevelDivergence:
    """The core contract at the decision level: both devices busy."""

    @pytest.fixture(params=[False, True], ids=["stock", "resilient"])
    def busy_deployment(self, request):
        deployment = build_deployment(resilient=request.param)
        register_paper_tools(deployment.app)
        host = deployment.gpu_host
        # Occupy both dies with different memory footprints: GPU 0 heavy,
        # GPU 1 light — the memory strategy has a unique best choice.
        p0 = host.launch_process(name="/usr/bin/heavy", cuda_visible_devices="0")
        host.device(0).memory.alloc(2_000_000_000, p0.pid)
        host.launch_process(name="/usr/bin/light", cuda_visible_devices="1")
        return deployment

    def test_pid_scatters_memory_packs(self, busy_deployment):
        deployment = busy_deployment
        job = deployment.app.submit("racon", {"workload": "unit"})

        deployment.set_allocation_strategy("pid")
        env_pid = deployment.mapper.prepare_environment(job)

        deployment.set_allocation_strategy("memory")
        env_mem = deployment.mapper.prepare_environment(job)

        # PID: every device hosts a process, so the job scatters to all.
        assert env_pid["CUDA_VISIBLE_DEVICES"] == "0,1"
        # Memory: the single least-loaded device — the light GPU 1.
        assert env_mem["CUDA_VISIBLE_DEVICES"] == "1"

    def test_strategies_agree_on_an_idle_host(self):
        deployment = build_deployment()
        register_paper_tools(deployment.app)
        job = deployment.app.submit("racon", {"workload": "unit"})
        envs = {}
        for name in ("pid", "memory"):
            deployment.set_allocation_strategy(name)
            envs[name] = deployment.mapper.prepare_environment(job)
        assert envs["pid"]["CUDA_VISIBLE_DEVICES"] == (
            envs["memory"]["CUDA_VISIBLE_DEVICES"]
        )


class TestReplayLevelDivergence:
    """Identical seeded traces through full deployments."""

    @pytest.fixture(scope="class", params=[False, True],
                    ids=["stock", "resilient"])
    def results(self, request):
        resilient = request.param
        _, pid_result = replay("pid", resilient)
        _, mem_result = replay("memory", resilient)
        return pid_result, mem_result

    def test_same_jobs_ran_under_both(self, results):
        pid_result, mem_result = results
        assert len(pid_result.jobs) == len(mem_result.jobs)
        assert [j.entry.tool_id for j in pid_result.jobs] == [
            j.entry.tool_id for j in mem_result.jobs
        ]
        assert [j.gpu_enabled for j in pid_result.jobs] == [
            j.gpu_enabled for j in mem_result.jobs
        ]

    def test_pid_scatters_under_contention(self, results):
        pid_result, _ = results
        assert pid_result.scattered_jobs >= 1

    def test_memory_never_scatters(self, results):
        _, mem_result = results
        assert mem_result.scattered_jobs == 0
        assert all(j.spread <= 1 for j in mem_result.jobs)

    def test_placements_diverge(self, results):
        pid_result, mem_result = results
        pid_placements = [j.gpu_ids for j in pid_result.jobs]
        mem_placements = [j.gpu_ids for j in mem_result.jobs]
        assert pid_placements != mem_placements

    def test_divergence_is_identical_across_deployment_modes(self):
        # The resilience stack (with no faults firing) must not change
        # either strategy's placements — parity between stock and
        # resilient runs, per strategy.
        for allocation in ("pid", "memory"):
            _, stock = replay(allocation, resilient=False)
            _, resilient = replay(allocation, resilient=True)
            assert [j.gpu_ids for j in stock.jobs] == [
                j.gpu_ids for j in resilient.jobs
            ]
