"""Integration: the JobSpan lifecycle threaded through a deployment."""

from __future__ import annotations

import pytest

from repro.cluster.node import ComputeNode
from repro.core.orchestrator import build_deployment
from repro.gpusim.errors import NVMLError
from repro.gpusim.faults import FaultEvent, FaultKind, InjectionPlan
from repro.observability.tracing import NULL_TRACER, Tracer
from repro.tools.executors import register_paper_tools
from repro.workloads.chaos import run_chaos

#: The killer plan of the chaos acceptance tests: device 1 dies under a
#: running job, then NVML flakes during the next mapping query.
RESUBMIT_PLAN = InjectionPlan(
    name="die-under-running-job",
    seed=0,
    events=(
        FaultEvent(time=5.0, kind=FaultKind.DEVICE_LOST, device=1, xid=79),
        FaultEvent(time=6.0, kind=FaultKind.NVML_FLAKE,
                   nvml_code=NVMLError.NVML_ERROR_UNKNOWN),
    ),
)


def traced_deployment(**kwargs):
    node = ComputeNode.paper_testbed()
    tracer = Tracer(node.clock)
    deployment = build_deployment(node=node, tracer=tracer, **kwargs)
    register_paper_tools(deployment.app)
    return deployment, tracer


class TestLifecycleSpans:
    @pytest.fixture(scope="class")
    def traced(self):
        deployment, tracer = traced_deployment()
        job = deployment.run_tool("racon", {"workload": "unit"})
        return deployment, tracer, job

    def test_full_phase_sequence_recorded(self, traced):
        _, tracer, job = traced
        names = [s.name for s in tracer.for_job(job.job_id)]
        assert names == ["job", "map", "queue", "launch", "map.env", "run"]

    def test_root_span_carries_tool_and_state(self, traced):
        _, tracer, job = traced
        root = tracer.for_job(job.job_id)[0]
        assert root.attributes["tool"] == "racon"
        assert root.attributes["state"] == "ok"
        assert root.end is not None

    def test_mapper_decision_attributes(self, traced):
        _, tracer, job = traced
        (env_span,) = [
            s for s in tracer.for_job(job.job_id) if s.name == "map.env"
        ]
        assert env_span.attributes["strategy"] == "pid"
        assert env_span.attributes["outcome"] == "gpu"
        assert env_span.attributes["snapshot_cache_hit"] is False
        assert env_span.attributes["gpu_enabled"] is True

    def test_map_span_records_destination(self, traced):
        _, tracer, job = traced
        (map_span,) = [
            s for s in tracer.for_job(job.job_id) if s.name == "map"
        ]
        assert map_span.attributes["destination"] == "local_gpu"

    def test_run_span_bounds_the_tool_body(self, traced):
        _, tracer, job = traced
        (run_span,) = [
            s for s in tracer.for_job(job.job_id) if s.name == "run"
        ]
        assert run_span.attributes["state"] == "ok"
        assert run_span.duration == pytest.approx(
            job.metrics.end_time - job.metrics.start_time
        )

    def test_registry_counters_updated(self, traced):
        deployment, _, _ = traced
        registry = deployment.metrics_registry
        assert registry.value("gyan_jobs_submitted_total", tool="racon") == 1
        assert registry.value(
            "gyan_jobs_finished_total", runner="local", state="ok"
        ) == 1
        assert registry.value(
            "gyan_mapper_decisions_total", strategy="pid", outcome="gpu"
        ) == 1


class TestResubmitTracing:
    @pytest.fixture(scope="class")
    def result(self):
        return run_chaos(RESUBMIT_PLAN, jobs=8, resilient=True, trace=True)

    def test_resubmit_instant_recorded(self, result):
        resubmits = [e for e in result.tracer.events if e.name == "resubmit"]
        assert resubmits, "the killed job must emit a resubmit event"
        for event in resubmits:
            assert event.attributes["hop"] >= 1
            assert "fallback" in event.attributes["destination"]

    def test_retry_job_root_span_links_back(self, result):
        resubmit = next(
            e for e in result.tracer.events if e.name == "resubmit"
        )
        retry_id = resubmit.attributes["retry_job"]
        root = result.tracer.for_job(retry_id)[0]
        assert root.name == "job"
        assert root.attributes["resubmit_of"] == resubmit.job_id
        assert root.attributes["state"] == "ok"

    def test_resubmit_counter_matches_events(self, result):
        resubmits = [e for e in result.tracer.events if e.name == "resubmit"]
        assert result.registry.value("gyan_resubmits_total") == len(resubmits)


class TestZeroOverheadDefaults:
    def test_untraced_deployment_holds_null_tracer(self):
        deployment = build_deployment()
        assert deployment.app.tracer is NULL_TRACER
        assert deployment.mapper.tracer is NULL_TRACER
        assert deployment.tracer is None

    def test_untraced_run_records_nothing(self):
        deployment = build_deployment()
        register_paper_tools(deployment.app)
        job = deployment.run_tool("racon", {"workload": "unit"})
        assert job.state.value == "ok"
        assert deployment.app.tracer.spans == ()

    def test_metrics_still_collected_without_tracing(self):
        deployment = build_deployment()
        register_paper_tools(deployment.app)
        deployment.run_tool("racon", {"workload": "unit"})
        assert deployment.metrics_registry.value(
            "gyan_jobs_submitted_total", tool="racon"
        ) == 1


class TestLegacyCounterViews:
    def test_mapper_counters_are_registry_backed_ints(self):
        deployment = build_deployment()
        register_paper_tools(deployment.app)
        deployment.run_tool("racon", {"workload": "unit"})
        mapper = deployment.mapper
        assert isinstance(mapper.snapshot_probes, int)
        assert mapper.snapshot_probes == deployment.metrics_registry.value(
            "gyan_mapper_snapshot_probes_total"
        )
        assert mapper.degraded_queries == 0
        assert mapper.snapshot_cache_hits == 0

    def test_legacy_views_are_read_only(self):
        deployment = build_deployment()
        with pytest.raises(AttributeError):
            deployment.mapper.degraded_queries = 5
        with pytest.raises(AttributeError):
            deployment.local_runner.requeues = 5

    def test_runner_requeues_view(self):
        deployment = build_deployment()
        assert deployment.local_runner.requeues == 0
        deployment.local_runner._record_requeue()
        assert deployment.local_runner.requeues == 1
