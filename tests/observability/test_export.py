"""Unit tests for the trace exporters and the artifact driver."""

import json

from repro.gpusim.clock import VirtualClock
from repro.observability.export import (
    TRACE_SCHEMA,
    chrome_trace_dict,
    render_chrome_trace,
    render_job_timeline,
)
from repro.observability.tracing import Tracer


def scripted_tracer(first_job_id: int = 100) -> Tracer:
    """A small hand-built trace: two jobs plus one resubmit instant."""
    clock = VirtualClock()
    tracer = Tracer(clock)
    j1, j2 = first_job_id, first_job_id + 1

    tracer.begin_job(j1, tool="racon")
    map_span = tracer.begin("map", "job", job_id=j1)
    tracer.end(map_span, destination="local_gpu")
    run = tracer.begin("run", "runner", job_id=j1, runner="local")
    clock.advance(1.5)
    tracer.end(run, state="error")
    tracer.instant("resubmit", "job", job_id=j1, retry_job=j2, hop=1)
    tracer.end_job(j1, state="error")

    tracer.begin_job(j2, tool="racon", resubmit_of=j1)
    clock.advance(2.0)
    tracer.end_job(j2, state="ok")
    return tracer


class TestChromeTrace:
    def test_schema_and_structure(self):
        doc = chrome_trace_dict(scripted_tracer(), {"mode": "unit"})
        assert doc["otherData"]["schema"] == TRACE_SCHEMA
        assert doc["otherData"]["mode"] == "unit"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_job_ids_renumbered_from_one(self):
        doc = chrome_trace_dict(scripted_tracer(first_job_id=500))
        tids = {e["tid"] for e in doc["traceEvents"]}
        assert tids == {1, 2}
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert names == {"job 1 (racon)", "job 2 (racon)"}

    def test_cross_job_attributes_renumbered(self):
        doc = chrome_trace_dict(scripted_tracer(first_job_id=500))
        resubmit = next(
            e for e in doc["traceEvents"] if e["name"] == "resubmit"
        )
        assert resubmit["args"]["retry_job"] == 2
        root2 = next(
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["tid"] == 2 and e["name"] == "job"
        )
        assert root2["args"]["resubmit_of"] == 1

    def test_byte_identical_across_different_absolute_ids(self):
        # The renumbering contract: the same logical run traced under
        # different process-global id offsets serialises identically.
        a = render_chrome_trace(scripted_tracer(first_job_id=10))
        b = render_chrome_trace(scripted_tracer(first_job_id=9000))
        assert a == b

    def test_timestamps_are_microseconds(self):
        doc = chrome_trace_dict(scripted_tracer())
        run = next(
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "run"
        )
        assert run["ts"] == 0
        assert run["dur"] == 1_500_000

    def test_open_spans_closed_and_marked(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        tracer.begin_job(1, tool="bonito")
        clock.advance(3.0)
        doc = chrome_trace_dict(tracer)
        (root,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert root["dur"] == 3_000_000
        assert root["args"]["unclosed"] is True

    def test_render_is_valid_json(self):
        text = render_chrome_trace(scripted_tracer())
        assert text.endswith("\n")
        json.loads(text)


class TestJobTimeline:
    def test_blocks_per_job_with_headers(self):
        text = render_job_timeline(scripted_tracer())
        assert "job 1 (racon) — error in 1.500000s" in text
        assert "job 2 (racon) — ok in 2.000000s" in text
        assert "(instant)" in text

    def test_single_job_filter(self):
        tracer = scripted_tracer(first_job_id=40)
        text = render_job_timeline(tracer, job_id=40)
        assert "job 1 (racon)" in text
        assert "job 2" not in text

    def test_empty_tracer_renders_empty(self):
        tracer = Tracer(VirtualClock())
        assert render_job_timeline(tracer) == ""


class TestDriver:
    def test_workload_artifacts_are_reproducible(self):
        from repro.observability.driver import trace_workload

        a = trace_workload(jobs=5, interarrival=1.0, seed=11)
        b = trace_workload(jobs=5, interarrival=1.0, seed=11)
        assert a.perfetto == b.perfetto
        assert a.prometheus == b.prometheus
        assert a.timeline == b.timeline
        assert a.summary_json() == b.summary_json()

    def test_workload_artifacts_content(self):
        from repro.observability.driver import trace_workload

        artifacts = trace_workload(jobs=5, interarrival=1.0, seed=11)
        doc = json.loads(artifacts.perfetto)
        assert doc["otherData"]["schema"] == TRACE_SCHEMA
        assert doc["otherData"]["mode"] == "workload"
        assert artifacts.summary["jobs_traced"] == 5
        assert "gyan_jobs_submitted_total" in artifacts.prometheus

    def test_write_emits_fixed_filenames(self, tmp_path):
        from repro.observability.driver import trace_workload

        artifacts = trace_workload(jobs=3, seed=0)
        written = artifacts.write(tmp_path / "out")
        assert [p.name for p in written] == [
            "trace.perfetto.json",
            "metrics.prom",
            "timeline.txt",
            "summary.json",
        ]
        for path in written:
            assert path.read_text()

    def test_chaos_artifacts_are_reproducible(self):
        from repro.observability.driver import trace_chaos
        from repro.workloads.chaos import resolve_plan

        a = trace_chaos(resolve_plan("k80-die-midrun", seed=2), jobs=4)
        b = trace_chaos(resolve_plan("k80-die-midrun", seed=2), jobs=4)
        assert a.perfetto == b.perfetto
        assert a.summary_json() == b.summary_json()
        assert a.summary["metadata"]["mode"] == "chaos"
        assert a.summary["chaos"]["jobs_requested"] == 4
