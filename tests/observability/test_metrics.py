"""Unit tests for the typed metrics registry."""

import pytest

from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    MetricsError,
    MetricsRegistry,
    format_value,
)


# --------------------------------------------------------------------- #
# counters
# --------------------------------------------------------------------- #
class TestCounters:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs")
        assert c.value == 0.0
        c.inc()
        c.inc(2)
        assert c.value == 3.0

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total")
        with pytest.raises(MetricsError):
            c.inc(-1)

    def test_labelled_children_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("finished_total", labels=("state",))
        c.labels(state="ok").inc(5)
        c.labels(state="error").inc()
        assert reg.value("finished_total", state="ok") == 5
        assert reg.value("finished_total", state="error") == 1

    def test_wrong_label_set_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("finished_total", labels=("state",))
        with pytest.raises(MetricsError):
            c.labels(runner="local")
        with pytest.raises(MetricsError):
            c.labels(state="ok", runner="local")

    def test_labelless_proxy_on_labelled_family_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("finished_total", labels=("state",))
        with pytest.raises(MetricsError):
            c.inc()

    def test_labels_on_labelless_family_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total")
        with pytest.raises(MetricsError):
            c.labels(state="ok")


# --------------------------------------------------------------------- #
# gauges and histograms
# --------------------------------------------------------------------- #
class TestGauges:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue_depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0


class TestHistograms:
    def test_observe_updates_sum_and_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 0.7, 4.0, 20.0):
            h.observe(v)
        snap = reg.snapshot()["latency_seconds"]["series"]["latency_seconds"]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(25.2)

    def test_cumulative_le_semantics(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 4.0, 20.0):  # 1.0 lands in le=1.0 (inclusive)
            h.observe(v)
        text = reg.render_prometheus()
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="5"} 3' in text
        assert 'latency_seconds_bucket{le="10"} 3' in text
        assert 'latency_seconds_bucket{le="+Inf"} 4' in text
        assert "latency_seconds_count 4" in text

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# --------------------------------------------------------------------- #
# registry semantics
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs_total", "jobs")
        b = reg.counter("jobs_total")
        a.inc()
        b.inc()
        assert reg.value("jobs_total") == 2

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total")
        with pytest.raises(MetricsError):
            reg.gauge("jobs_total")

    def test_label_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", labels=("tool",))
        with pytest.raises(MetricsError):
            reg.counter("jobs_total", labels=("runner",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "has space", "has-dash", "1starts_with_digit"):
            with pytest.raises(MetricsError):
                reg.counter(bad)

    def test_value_of_untouched_series_is_zero(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", labels=("tool",))
        assert reg.value("jobs_total", tool="racon") == 0.0

    def test_value_of_unknown_metric_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.value("nope_total")

    def test_value_of_histogram_raises(self):
        reg = MetricsRegistry()
        reg.histogram("latency_seconds")
        with pytest.raises(MetricsError):
            reg.value("latency_seconds")

    def test_families_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z_total")
        reg.gauge("a_depth")
        assert reg.families() == ["a_depth", "z_total"]


# --------------------------------------------------------------------- #
# deterministic export
# --------------------------------------------------------------------- #
def _populate(reg: MetricsRegistry) -> None:
    reg.counter("jobs_total", "all jobs", labels=("tool",)).labels(
        tool="racon"
    ).inc(3)
    reg.counter("jobs_total", labels=("tool",)).labels(tool="bonito").inc()
    reg.gauge("queue_depth", "queued jobs").set(2)
    h = reg.histogram("latency_seconds", "latency", buckets=(1.0, 10.0))
    h.observe(0.25)
    h.observe(7.5)


class TestExportDeterminism:
    def test_prometheus_render_is_reproducible(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        _populate(a)
        _populate(b)
        assert a.render_prometheus() == b.render_prometheus()

    def test_prometheus_render_shape(self):
        reg = MetricsRegistry()
        _populate(reg)
        text = reg.render_prometheus()
        assert "# HELP jobs_total all jobs" in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{tool="bonito"} 1' in text
        assert 'jobs_total{tool="racon"} 3' in text
        assert "# TYPE queue_depth gauge" in text
        assert "# TYPE latency_seconds histogram" in text
        assert text.endswith("\n")

    def test_snapshot_is_reproducible_and_flat(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        _populate(a)
        _populate(b)
        assert a.snapshot() == b.snapshot()
        snap = a.snapshot()
        assert snap["jobs_total"]["type"] == "counter"
        assert snap["jobs_total"]["series"]["jobs_total{tool=racon}"] == 3


class TestFormatValue:
    def test_integral_values_have_no_decimal_point(self):
        assert format_value(3.0) == "3"
        assert format_value(0.0) == "0"
        assert format_value(-2.0) == "-2"

    def test_fractional_values_roundtrip(self):
        assert format_value(0.25) == "0.25"
        assert float(format_value(1.72)) == 1.72
