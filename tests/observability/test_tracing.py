"""Unit tests for the virtual-clock tracer."""

from repro.gpusim.clock import VirtualClock
from repro.observability.tracing import (
    CATEGORY_JOB,
    NULL_TRACER,
    NullTracer,
    Tracer,
)


def make_tracer(epoch: float = 0.0) -> tuple[Tracer, VirtualClock]:
    clock = VirtualClock(epoch)
    return Tracer(clock), clock


class TestSpans:
    def test_begin_end_records_virtual_times(self):
        tracer, clock = make_tracer()
        span = tracer.begin("map", "mapper", job_id=1, strategy="pid")
        clock.advance(2.5)
        tracer.end(span, outcome="gpu")
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5
        assert span.attributes == {"strategy": "pid", "outcome": "gpu"}

    def test_end_is_idempotent(self):
        tracer, clock = make_tracer()
        span = tracer.begin("run", "runner")
        clock.advance(1.0)
        tracer.end(span)
        clock.advance(1.0)
        tracer.end(span, late="yes")
        assert span.end == 1.0
        assert "late" not in span.attributes

    def test_end_none_is_noop(self):
        tracer, _ = make_tracer()
        tracer.end(None)  # the guard-free call-site contract

    def test_instant(self):
        tracer, clock = make_tracer()
        clock.advance(3.0)
        event = tracer.instant("requeue", "runner", job_id=7, attempt=2)
        assert event.time == 3.0
        assert event.job_id == 7
        assert event.attributes == {"attempt": 2}

    def test_sequence_numbers_order_same_instant_records(self):
        tracer, _ = make_tracer()
        a = tracer.begin("first", "job")
        b = tracer.begin("second", "job")
        e = tracer.instant("third", "job")
        assert a.seq < b.seq < e.seq


class TestJobSpans:
    def test_begin_end_job_roundtrip(self):
        tracer, clock = make_tracer()
        tracer.begin_job(5, tool="racon")
        clock.advance(4.0)
        tracer.end_job(5, state="ok")
        (span,) = tracer.for_job(5)
        assert span.name == "job"
        assert span.category == CATEGORY_JOB
        assert span.duration == 4.0
        assert span.attributes == {"tool": "racon", "state": "ok"}

    def test_end_job_unknown_is_noop(self):
        tracer, _ = make_tracer()
        tracer.end_job(99, state="ok")
        assert tracer.spans == []

    def test_job_ids_sorted_and_distinct(self):
        tracer, _ = make_tracer()
        tracer.begin_job(30)
        tracer.begin_job(10)
        tracer.instant("x", "job", job_id=20)
        tracer.instant("y", "job", job_id=10)
        assert tracer.job_ids() == [10, 20, 30]

    def test_close_open_spans_marks_unclosed(self):
        tracer, clock = make_tracer()
        open_span = tracer.begin_job(1, tool="racon")
        closed_span = tracer.begin("map", "job", job_id=1)
        tracer.end(closed_span)
        clock.advance(9.0)
        assert tracer.close_open_spans() == 1
        assert open_span.end == 9.0
        assert open_span.attributes["unclosed"] is True
        assert "unclosed" not in closed_span.attributes
        # a second call finds nothing left open
        assert tracer.close_open_spans() == 0


class TestNullTracer:
    def test_disabled_and_empty(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.events == ()

    def test_all_operations_are_noops(self):
        null = NullTracer()
        assert null.begin("a", "b", job_id=1, x=1) is None
        null.end(None, y=2)
        assert null.instant("a", "b") is None
        assert null.begin_job(1, tool="t") is None
        null.end_job(1, state="ok")
        assert null.for_job(1) == []
        assert null.job_ids() == []
        assert null.close_open_spans() == 0

    def test_enabled_tracer_advertises_itself(self):
        tracer, _ = make_tracer()
        assert tracer.enabled is True
