"""Circuit breakers: the closed → open → half-open triangle, lazily clocked."""

import pytest

from repro.gpusim.clock import VirtualClock
from repro.resilience.breaker import (
    BreakerOpenError,
    BreakerState,
    CircuitBreaker,
)


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(clock, "probe", failure_threshold=3,
                          reset_timeout_s=30.0)


class TestStateMachine:
    def test_starts_closed_and_allowing(self, breaker):
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows()

    def test_failures_below_threshold_stay_closed(self, breaker):
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state is BreakerState.CLOSED

    def test_threshold_trips_open(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.record_failure() is True
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allows()

    def test_success_resets_the_consecutive_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_open_becomes_half_open_after_timeout(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(29.999)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.001)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allows()

    def test_half_open_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens_for_a_full_timeout(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.record_failure() is True
        assert breaker.state is BreakerState.OPEN
        assert breaker.retry_at == pytest.approx(60.0)

    def test_no_timers_registered(self, breaker, clock):
        # Lazy advancement is the whole point: the breaker must add
        # nothing to the clock's heap (gyan-race stays quiet).
        for _ in range(3):
            breaker.record_failure()
        assert clock.pending_count() == 0


class TestCall:
    def test_call_passes_through_and_closes(self, breaker):
        assert breaker.call(lambda: 42) == 42
        assert breaker.state is BreakerState.CLOSED

    def test_call_records_failures_and_reraises(self, breaker):
        def boom():
            raise RuntimeError("probe timeout")

        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(boom)
        assert breaker.state is BreakerState.OPEN

    def test_open_fast_fails_with_retry_time(self, breaker, clock):
        clock.advance(5.0)
        for _ in range(3):
            breaker.record_failure()
        with pytest.raises(BreakerOpenError) as exc_info:
            breaker.call(lambda: 42)
        assert exc_info.value.breaker_name == "probe"
        assert exc_info.value.retry_at == pytest.approx(35.0)
        assert "t=35" in str(exc_info.value)


class TestObservability:
    def test_transitions_recorded_in_order(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        _ = breaker.state
        breaker.record_success()
        assert [(t, old.value, new.value) for t, old, new
                in breaker.transitions] == [
            (0.0, "closed", "open"),
            (30.0, "open", "half_open"),
            (30.0, "half_open", "closed"),
        ]

    def test_on_transition_hook_fires(self, clock):
        seen = []
        breaker = CircuitBreaker(
            clock, "hooked", failure_threshold=1,
            on_transition=lambda now, old, new: seen.append((now, old, new)),
        )
        breaker.record_failure()
        assert seen == [(0.0, BreakerState.CLOSED, BreakerState.OPEN)]

    def test_invalid_parameters_rejected(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(clock, "x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, "x", reset_timeout_s=0.0)
