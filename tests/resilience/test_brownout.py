"""Brownout ladder: hysteretic escalation keyed by GPU benefit."""

import pytest

from repro.resilience.brownout import (
    MAX_BROWNOUT_LEVEL,
    TOOL_GPU_BENEFIT,
    BrownoutConfig,
    BrownoutController,
)


@pytest.fixture
def brownout():
    # threshold 0.8, climb after 4 sustained seconds, recover after 8.
    return BrownoutController()


def saturate(brownout, start, seconds, saturation=1.0, step=1.0):
    """Feed a run of saturated samples; returns the final level."""
    t = start
    level = brownout.level
    while t <= start + seconds:
        level = brownout.observe(saturation, t)
        t += step
    return level


class TestLadder:
    def test_paper_benefits_shipped(self):
        assert TOOL_GPU_BENEFIT["bonito"] > 50.0
        assert TOOL_GPU_BENEFIT["racon"] == pytest.approx(2.0)

    def test_single_spike_does_not_escalate(self, brownout):
        assert brownout.observe(1.0, 0.0) == 0
        assert brownout.observe(0.0, 1.0) == 0
        assert brownout.level == 0

    def test_sustained_saturation_climbs_one_rung(self, brownout):
        assert saturate(brownout, 0.0, 4.0) == 1

    def test_continued_saturation_climbs_to_the_top(self, brownout):
        assert saturate(brownout, 0.0, 20.0) == MAX_BROWNOUT_LEVEL
        # The ladder never climbs past its top rung.
        assert saturate(brownout, 30.0, 20.0) == MAX_BROWNOUT_LEVEL

    def test_calm_recovers_one_rung_at_a_time(self, brownout):
        saturate(brownout, 0.0, 4.0)
        assert brownout.level == 1
        assert saturate(brownout, 10.0, 8.0, saturation=0.0) == 0

    def test_recovery_is_slower_than_escalation(self, brownout):
        saturate(brownout, 0.0, 4.0)
        # 4 calm seconds are not enough to step down (recover_s=8).
        assert saturate(brownout, 10.0, 4.0, saturation=0.0) == 1

    def test_transitions_recorded(self, brownout):
        saturate(brownout, 0.0, 4.0)
        assert brownout.transitions[0][1:] == (0, 1)


class TestPolicy:
    def test_rung0_allows_everything(self, brownout):
        assert brownout.allows_gpu("racon")
        assert brownout.allows_gpu("bonito")
        assert not brownout.should_shed("racon")

    def test_rung1_drops_low_benefit_gpu_mapping(self, brownout):
        saturate(brownout, 0.0, 4.0)
        assert not brownout.allows_gpu("racon")   # ~2x: not worth it now
        assert brownout.allows_gpu("bonito")      # >50x: keep it
        assert not brownout.should_shed("racon")

    def test_rung2_drops_all_gpu_mapping(self, brownout):
        saturate(brownout, 0.0, 10.0)
        assert brownout.level == 2
        assert not brownout.allows_gpu("bonito")
        assert not brownout.should_shed("racon")

    def test_rung3_sheds_low_benefit_work(self, brownout):
        saturate(brownout, 0.0, 20.0)
        assert brownout.level == MAX_BROWNOUT_LEVEL
        assert brownout.should_shed("racon")
        assert brownout.should_shed("seqstats")
        assert not brownout.should_shed("bonito")

    def test_unknown_tools_default_to_low_benefit(self, brownout):
        saturate(brownout, 0.0, 20.0)
        assert brownout.should_shed("mystery_tool")


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"saturation_threshold": 0.0},
        {"saturation_threshold": 1.5},
        {"sustain_s": 0.0},
        {"recover_s": -1.0},
        {"low_benefit_max": 0.5},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BrownoutConfig(**kwargs)
