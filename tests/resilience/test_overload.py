"""OverloadController: admission accounting, deadlines, typed shedding."""

import pytest

from repro.galaxy.job_conf import Destination
from repro.galaxy.tool_xml import parse_tool_xml
from repro.galaxy.job import GalaxyJob, JobState
from repro.gpusim.clock import VirtualClock
from repro.observability.metrics import MetricsRegistry
from repro.resilience.overload import (
    OverloadController,
    destination_deadline_s,
    destination_queue_limit,
    destination_runtime_budget_s,
)
from repro.resilience.shedding import RejectedBusy, ShedReason

_TOOL_XML = '<tool id="seqstats"><command>seqstats</command></tool>'


def make_destination(dest_id="gpu", **params):
    return Destination(
        destination_id=dest_id,
        runner="local",
        params={k: str(v) for k, v in params.items()},
    )


def make_job(job_id):
    job = GalaxyJob(tool=parse_tool_xml(_TOOL_XML))
    job.job_id = job_id
    return job


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def controller(clock):
    return OverloadController(clock)


class TestParamParsing:
    def test_queue_limit(self):
        assert destination_queue_limit(make_destination(max_queue_depth=4)) == 4
        assert destination_queue_limit(make_destination()) is None
        assert destination_queue_limit(make_destination(max_queue_depth="no")) is None
        assert destination_queue_limit(make_destination(max_queue_depth=0)) is None

    def test_deadline_and_budget(self):
        dest = make_destination(deadline_s=120, runtime_budget_s=600)
        assert destination_deadline_s(dest) == pytest.approx(120.0)
        assert destination_runtime_budget_s(dest) == pytest.approx(600.0)
        assert destination_deadline_s(make_destination()) is None


class TestAdmission:
    def test_bounded_destination_rejects_at_limit(self, controller):
        dest = make_destination(max_queue_depth=2)
        controller.admit(make_job(1), dest)
        controller.admit(make_job(2), dest)
        with pytest.raises(RejectedBusy) as exc_info:
            controller.admit(make_job(3), dest)
        assert exc_info.value.reason is ShedReason.QUEUE_FULL
        assert exc_info.value.depth == 2 and exc_info.value.limit == 2

    def test_unbounded_destination_never_rejects(self, controller):
        dest = make_destination()
        for i in range(100):
            controller.admit(make_job(i), dest)
        assert controller.depth("gpu") == 100

    def test_readmission_to_same_destination_is_noop(self, controller):
        dest = make_destination(max_queue_depth=1)
        job = make_job(1)
        controller.admit(job, dest)
        controller.admit(job, dest)  # launch retry: not double-counted
        assert controller.depth("gpu") == 1

    def test_redirect_releases_the_old_slot(self, controller):
        gpu = make_destination("gpu", max_queue_depth=1)
        cpu = make_destination("cpu", max_queue_depth=8)
        job = make_job(1)
        controller.admit(job, gpu)
        controller.admit(job, cpu)
        assert controller.depth("gpu") == 0
        assert controller.depth("cpu") == 1
        assert controller.admitted_destination(job) == "cpu"

    def test_release_is_idempotent(self, controller):
        dest = make_destination(max_queue_depth=1)
        job = make_job(1)
        controller.admit(job, dest)
        controller.release(job)
        controller.release(job)
        assert controller.depth("gpu") == 0
        controller.admit(make_job(2), dest)  # the slot really freed

    def test_saturation_is_worst_bounded_ratio(self, controller):
        narrow = make_destination("narrow", max_queue_depth=2)
        wide = make_destination("wide", max_queue_depth=10)
        controller.admit(make_job(1), narrow)
        controller.admit(make_job(2), wide)
        assert controller.saturation() == pytest.approx(0.5)

    def test_peak_inflight_tracked(self, controller):
        dest = make_destination(max_queue_depth=4)
        jobs = [make_job(i) for i in range(3)]
        for job in jobs:
            controller.admit(job, dest)
        for job in jobs:
            controller.release(job)
        assert controller.peak_inflight == {"gpu": 3}


class TestDeadlines:
    def test_destination_deadline_wins_over_default(self, clock):
        controller = OverloadController(clock, default_deadline_s=10.0)
        dest = make_destination(deadline_s=120)
        assert controller.deadline_for(dest, 5.0) == pytest.approx(125.0)
        assert controller.deadline_for(make_destination(), 5.0) == pytest.approx(15.0)

    def test_no_deadline_anywhere(self, controller):
        assert controller.deadline_for(make_destination(), 5.0) is None

    def test_expired_uses_the_virtual_clock(self, controller, clock):
        job = make_job(1)
        job.metrics.deadline = 10.0
        assert not controller.expired(job)
        clock.advance(10.0)
        assert not controller.expired(job)  # strict: exactly-at is fine
        clock.advance(0.001)
        assert controller.expired(job)

    def test_jobs_without_deadline_never_expire(self, controller, clock):
        clock.advance(1e9)
        assert not controller.expired(make_job(1))


class TestShedding:
    def test_shed_is_typed_and_terminal(self, controller, clock):
        clock.advance(3.0)
        job = make_job(7)
        controller.shed(job, ShedReason.DEADLINE_EXPIRED, note="destination gpu")
        assert job.state is JobState.DELETED
        assert job.metrics.shed_reason == "deadline_expired"
        assert "shed: deadline_expired (destination gpu)" in job.stderr
        assert controller.shed_records == [(7, "seqstats", "deadline_expired")]

    def test_shed_releases_the_admission_slot(self, controller):
        dest = make_destination(max_queue_depth=1)
        job = make_job(1)
        controller.admit(job, dest)
        controller.shed(job, ShedReason.QUEUE_FULL)
        assert controller.depth("gpu") == 0

    def test_shed_by_reason_is_sorted(self, controller):
        controller.shed(make_job(1), ShedReason.QUEUE_FULL)
        controller.shed(make_job(2), ShedReason.BROWNOUT_SHED)
        controller.shed(make_job(3), ShedReason.QUEUE_FULL)
        assert controller.shed_by_reason() == {
            "brownout_shed": 1, "queue_full": 2,
        }
        assert list(controller.shed_by_reason()) == [
            "brownout_shed", "queue_full",
        ]
        assert controller.shed_count == 3


class TestMetrics:
    def test_counters_and_gauges_flow(self, clock):
        registry = MetricsRegistry()
        controller = OverloadController(clock, metrics=registry)
        dest = make_destination(max_queue_depth=1)
        controller.admit(make_job(1), dest)
        with pytest.raises(RejectedBusy):
            controller.admit(make_job(2), dest)
        controller.shed(make_job(2), ShedReason.QUEUE_FULL)
        controller.record_redirect()
        controller.record_runtime_kill()
        controller.record_breaker_transition("nvml", 0.0, "open")
        text = registry.render_prometheus()
        assert 'gyan_overload_rejected_busy_total{destination="gpu"} 1' in text
        assert 'gyan_overload_shed_total{reason="queue_full"} 1' in text
        assert "gyan_overload_redirects_total 1" in text
        assert "gyan_overload_runtime_kills_total 1" in text
        assert ('gyan_overload_breaker_transitions_total'
                '{breaker="nvml",to_state="open"} 1') in text
