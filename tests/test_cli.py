"""Command-line interface."""

import pytest

from repro.cli import main


class TestInfoAndSmi:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tesla K80" in out
        assert "racon" in out and "bonito" in out
        assert "455.45.01" in out

    def test_smi(self, capsys):
        assert main(["smi"]) == 0
        out = capsys.readouterr().out
        assert "NVIDIA-SMI" in out
        assert "No running processes found" in out

    def test_smi_demo_shows_process(self, capsys):
        assert main(["smi", "--demo"]) == 0
        assert "racon_gpu" in capsys.readouterr().out


class TestToolCommands:
    def test_racon_unit(self, capsys):
        assert main(["racon", "--threads", "4", "--batches", "16", "--banded"]) == 0
        out = capsys.readouterr().out
        assert "racon_gpu -t 4 --cudapoa-batches 16 -b" in out
        assert "local_gpu" in out
        assert "1.670" in out

    def test_racon_dataset(self, capsys):
        assert main(["racon", "--workload", "dataset", "--dataset",
                     "Alzheimers_NFL"]) == 0
        out = capsys.readouterr().out
        assert "gpu_kernels" in out

    def test_racon_container(self, capsys):
        assert main(["racon", "--container"]) == 0
        assert "docker_gpu" in capsys.readouterr().out

    def test_bonito_dataset(self, capsys):
        assert main(["bonito"]) == 0
        out = capsys.readouterr().out
        assert "bonito basecaller" in out
        assert "h (virtual)" in out

    def test_unknown_dataset_fails(self, capsys):
        assert main(["racon", "--workload", "dataset", "--dataset", "nope"]) == 1


class TestCasesAndExperiments:
    def test_cases_all(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        for case in ("Case 1", "Case 2", "Case 3", "Case 4"):
            assert case in out
        assert out.count("NVIDIA-SMI") == 4

    def test_single_case(self, capsys):
        assert main(["cases", "--case", "3"]) == 0
        out = capsys.readouterr().out
        assert "Case 3" in out and "Case 1" not in out

    @pytest.mark.parametrize("name,needle", [
        ("fig3", "3.22"),
        ("fig5", "Acinetobacter_pittii"),
        ("e11", "speedup: 2.0"),
        ("stalls", "memory_dependency"),
    ])
    def test_experiments(self, capsys, name, needle):
        assert main(["experiment", name]) == 0
        assert needle in capsys.readouterr().out

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestTraceCommand:
    def test_trace_replay(self, capsys):
        from repro.cli import main

        assert main(["trace", "--jobs", "10", "--interarrival", "1.0",
                     "--allocation", "memory"]) == 0
        out = capsys.readouterr().out
        assert "mean completion time" in out
        assert "scattered jobs:       0" in out

    def test_trace_wait_policy(self, capsys):
        from repro.cli import main

        assert main(["trace", "--jobs", "10", "--interarrival", "0.5",
                     "--policy", "wait"]) == 0
        out = capsys.readouterr().out
        assert "peak sharing per GPU: {'0': 1, '1': 1}" in out


class TestMonitorDump:
    def test_dump_writes_files(self, tmp_path):
        from repro import build_deployment, register_paper_tools

        deployment = build_deployment()
        register_paper_tools(deployment.app)
        job = deployment.run_tool("racon", {"workload": "unit"})
        paths = deployment.monitor.dump(job.job_id, tmp_path)
        assert len(paths) == 2
        csv_text = (tmp_path / f"job_{job.job_id}.csv").read_text()
        assert csv_text.startswith("time,device")
        stats_text = (tmp_path / f"job_{job.job_id}_stats.txt").read_text()
        assert "GPU 0" in stats_text


class TestTopoCommand:
    def test_topology_matrix(self, capsys):
        from repro.cli import main

        assert main(["topo", "--boards", "2"]) == 0
        out = capsys.readouterr().out
        assert "PIX" in out and "PHB" in out and "GPU3" in out
