"""One smoke test per CLI subcommand: parses, runs, exits as documented.

Deep behaviour lives in the per-feature suites (``test_cli.py``,
``analysis/test_linter_cli.py``, ``analysis/test_verifier.py``); this
module only guards the wiring — every subcommand stays invocable and
its exit-code contract holds.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = REPO_ROOT / "examples" / "configs"

ALL_COMMANDS = ("info", "smi", "topo", "racon", "bonito", "cases",
                "experiment", "trace", "lint", "faults", "verify", "bench",
                "race", "storm", "perf", "fleet")


def test_parser_registers_every_command():
    parser = build_parser()
    actions = [a for a in parser._actions if hasattr(a, "choices")
               and a.choices is not None]
    registered = set(actions[0].choices)
    assert registered == set(ALL_COMMANDS)


@pytest.mark.parametrize("argv", [
    ["info"],
    ["smi"],
    ["topo"],
    ["cases", "--case", "1"],
    ["experiment", "fig3"],
    ["trace", "--jobs", "4"],
])
def test_read_only_commands_exit_clean(argv, capsys):
    assert main(argv) == 0
    assert capsys.readouterr().out


def test_lint_smoke(capsys):
    assert main(["lint", str(EXAMPLES)]) == 0
    assert "finding(s)" in capsys.readouterr().out
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "[verifier]" in out and "VER401" in out


def test_perf_smoke(capsys):
    assert main(["perf", "--no-profile", str(REPO_ROOT / "src")]) == 0
    assert "finding(s)" in capsys.readouterr().out
    assert main(["perf", "--list-rules"]) == 0
    assert "PERF601" in capsys.readouterr().out


def test_faults_smoke(capsys):
    assert main(["faults", "--scenario", "k80-die-midrun", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "survived" in out


def test_verify_smoke(capsys):
    assert main(["verify", str(EXAMPLES), "--no-model-check"]) == 0
    assert "deployment(s) checked" in capsys.readouterr().out


def test_usage_errors_are_exit_2(capsys):
    assert main(["lint"]) == 2
    assert main(["verify"]) == 2
    assert main(["faults", "--plan", "no/such/plan.json"]) == 2
    capsys.readouterr()


def test_storm_smoke(capsys):
    assert main(["storm", "--jobs", "16", "--no-faults"]) == 0
    out = capsys.readouterr().out
    assert "lost (admitted)" in out


def test_fleet_smoke(capsys):
    assert main(["fleet", "--jobs", "2000", "--nodes", "4",
                 "--gpus-per-node", "2"]) == 0
    out = capsys.readouterr().out
    assert "policy" in out and "node-seconds" in out
    # Conflicting pool bounds are a usage error, not a traceback.
    assert main(["fleet", "--autoscale", "--min-nodes", "9",
                 "--nodes", "4"]) == 2
