"""Smoke tests: every example script runs to completion.

Examples are user-facing contract surface; these tests keep them from
rotting as the library evolves.  Each example's ``main()`` is imported
and executed (stdout captured by pytest).
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_is_discovered():
    # Enumeration is automatic: a new examples/*.py file is picked up by
    # the parametrised runner below without editing this test.  Guard
    # only against the glob silently matching nothing.
    assert "quickstart" in EXAMPLES
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_declares_the_contract(name):
    source = (EXAMPLES_DIR / f"{name}.py").read_text(encoding="utf-8")
    assert "def main(" in source, f"example {name} must define main()"
    assert '"""' in source.lstrip().splitlines()[0] or source.lstrip(
    ).startswith("#!"), f"example {name} must open with a docstring"


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()  # raises on any failure; examples assert their claims
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"
