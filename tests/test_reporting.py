"""Consolidated headline reporting."""

import pytest

from repro.reporting import collect_headline_results, render_report


@pytest.fixture(scope="module")
def results():
    return collect_headline_results()


class TestCollection:
    def test_every_headline_regenerated(self, results):
        assert results.racon_cpu_unit_4t == pytest.approx(3.22, abs=0.01)
        assert results.racon_gpu_best_unbanded[:2] == (4, 1)
        assert results.racon_gpu_best_banded[:2] == (4, 16)
        assert results.racon_container_best_unbanded[:2] == (2, 4)
        assert results.racon_container_best_banded[:2] == (2, 8)
        assert results.racon_speedup == pytest.approx(2.05, abs=0.05)
        assert results.bonito_cpu_hours["Acinetobacter_pittii"] > 210
        assert results.stalls["memory_dependency"] == pytest.approx(70, abs=5)

    def test_report_renders_every_section(self, results):
        report = render_report(results)
        for needle in (
            "Racon GPU best (unbanded)",
            "Racon speedup",
            "CUDA API overhead",
            "Bonito Acinetobacter_pittii CPU",
            "stalls mem/exec/other",
            "~2x",
            ">50x",
        ):
            assert needle in report
        # Columns aligned: header and separator match widths.
        lines = report.splitlines()
        assert lines[1].startswith("=") and lines[3].startswith("-")
