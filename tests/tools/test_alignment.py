"""Pairwise alignment: correctness, banding equivalence, properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tools.racon.alignment import (
    banded_alignment,
    edit_distance,
    global_alignment,
    identity,
)
from repro.workloads.generator import mutate_sequence, simulate_genome

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestGlobalAlignment:
    def test_identical_sequences(self):
        result = global_alignment("ACGTACGT", "ACGTACGT")
        assert result.score == 8 * 3
        assert result.cigar == "8="
        assert result.identity == 1.0

    def test_single_mismatch(self):
        result = global_alignment("ACGT", "ACTT")
        assert result.cigar == "2=1X1="
        assert result.score == 3 * 3 - 5

    def test_single_insertion(self):
        result = global_alignment("ACGGT", "ACGT")
        assert "I" in result.cigar
        assert result.query_aligned.replace("-", "") == "ACGGT"
        assert result.target_aligned.count("-") == 1

    def test_single_deletion(self):
        result = global_alignment("ACT", "ACGT")
        assert "D" in result.cigar
        assert result.query_aligned.count("-") == 1

    def test_empty_vs_nonempty(self):
        result = global_alignment("", "ACG")
        assert result.score == 3 * (-4)
        assert result.cigar == "3D"

    def test_alignment_columns_consistent(self):
        result = global_alignment("GATTACA", "GCATGCU".replace("U", "T"))
        assert len(result.query_aligned) == len(result.target_aligned)
        assert result.query_aligned.replace("-", "") == "GATTACA"

    @given(dna, dna)
    @settings(max_examples=40)
    def test_score_symmetric(self, a, b):
        """Match/mismatch/linear-gap NW is symmetric in its arguments."""
        assert global_alignment(a, b).score == global_alignment(b, a).score

    @given(dna)
    def test_self_alignment_perfect(self, seq):
        result = global_alignment(seq, seq)
        assert result.score == 3 * len(seq)
        assert result.identity == 1.0


class TestBandedAlignment:
    def test_matches_full_dp_for_small_divergence(self):
        rng = np.random.default_rng(0)
        for seed in range(5):
            a = simulate_genome(300, seed=seed)
            b = mutate_sequence(a, rng, 0.05, 0.02, 0.02)
            full = global_alignment(a, b)
            banded = banded_alignment(a, b, band=48)
            assert banded.score == full.score

    def test_widens_band_for_length_difference(self):
        a = "ACGT" * 50
        b = "ACGT" * 10
        result = banded_alignment(a, b, band=8)
        assert result.score == global_alignment(a, b).score

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            banded_alignment("ACG", "ACG", band=0)

    @given(dna, dna)
    @settings(max_examples=30)
    def test_banded_never_beats_full(self, a, b):
        """The band restricts the search space: score <= full DP score."""
        full = global_alignment(a, b).score
        banded = banded_alignment(a, b, band=16).score
        assert banded <= full


class TestEditDistanceAndIdentity:
    def test_known_distances(self):
        assert edit_distance("kitten".upper().replace("K", "G").replace("E", "A").replace("I", "C").replace("N", "T"),  # GCTTAT
                             "GCTTAT") == 0
        assert edit_distance("ACGT", "ACGT") == 0
        assert edit_distance("ACGT", "AGT") == 1
        assert edit_distance("ACGT", "TGCA") == 4  # no alignment helps
        assert edit_distance("GGATC", "GATTC") == 2

    def test_empty_cases(self):
        assert edit_distance("", "ACG") == 3
        assert edit_distance("ACG", "") == 3
        assert identity("", "") == 1.0

    @given(dna, dna)
    @settings(max_examples=40)
    def test_metric_properties(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)
        assert edit_distance(a, a) == 0
        assert edit_distance(a, b) <= max(len(a), len(b))

    @given(dna, dna, dna)
    @settings(max_examples=25)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(dna, dna)
    @settings(max_examples=40)
    def test_identity_bounds(self, a, b):
        assert 0.0 <= identity(a, b) <= 1.0
