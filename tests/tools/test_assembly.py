"""Greedy OLC assembler."""

import pytest

from repro.tools.assembly import GreedyAssembler, assemble_and_polish
from repro.tools.racon.alignment import identity
from repro.tools.seqio.records import SeqRecord
from repro.workloads.generator import simulate_genome, simulate_read_set


class TestOverlapDetection:
    def test_exact_suffix_prefix_overlap_found(self):
        genome = simulate_genome(600, seed=1)
        a = SeqRecord(name="a", sequence=genome[:400])
        b = SeqRecord(name="b", sequence=genome[250:600])
        assembler = GreedyAssembler()
        overlap = assembler.find_suffix_prefix_overlap(a, b)
        assert overlap is not None
        assert overlap.length == pytest.approx(150, abs=30)
        assert overlap.a_hang == pytest.approx(250, abs=30)

    def test_no_overlap_between_unrelated_reads(self):
        a = SeqRecord(name="a", sequence=simulate_genome(300, seed=2))
        b = SeqRecord(name="b", sequence=simulate_genome(300, seed=3))
        assert GreedyAssembler().find_suffix_prefix_overlap(a, b) is None

    def test_wrong_direction_rejected(self):
        """prefix(a)-suffix(b) is b->a, not a->b."""
        genome = simulate_genome(600, seed=4)
        a = SeqRecord(name="a", sequence=genome[250:600])
        b = SeqRecord(name="b", sequence=genome[:400])
        assert GreedyAssembler().find_suffix_prefix_overlap(a, b) is None

    def test_short_overlap_rejected(self):
        genome = simulate_genome(600, seed=5)
        a = SeqRecord(name="a", sequence=genome[:310])
        b = SeqRecord(name="b", sequence=genome[290:600])  # 20bp overlap
        assert GreedyAssembler(min_overlap=40).find_suffix_prefix_overlap(a, b) is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GreedyAssembler(k=13, min_overlap=10)


class TestAssembly:
    def test_two_read_stitch(self):
        genome = simulate_genome(700, seed=6)
        reads = [
            SeqRecord(name="left", sequence=genome[:450]),
            SeqRecord(name="right", sequence=genome[300:700]),
        ]
        result = GreedyAssembler().assemble(reads)
        assert result.layout == ["left", "right"]
        assert identity(result.contig.sequence, genome) > 0.95

    def test_chain_of_clean_reads_reconstructs_genome(self):
        genome = simulate_genome(2000, seed=7)
        reads = [
            SeqRecord(name=f"r{i}", sequence=genome[start : start + 400])
            for i, start in enumerate(range(0, 1601, 200))
        ]
        result = GreedyAssembler().assemble(reads)
        assert len(result.contig) == pytest.approx(2000, abs=60)
        assert identity(result.contig.sequence, genome) > 0.97

    def test_noisy_reads_yield_draft_quality(self):
        read_set = simulate_read_set(
            genome_length=2500, coverage=15, mean_read_length=500, seed=41
        )
        result = GreedyAssembler().assemble(read_set.records)
        assert len(result.contig) > 0.85 * len(read_set.genome)
        assert identity(result.contig.sequence, read_set.genome.sequence) > 0.85

    def test_empty_and_duplicate_inputs_rejected(self):
        assembler = GreedyAssembler()
        with pytest.raises(ValueError):
            assembler.assemble([])
        dup = SeqRecord(name="x", sequence="ACGT" * 30)
        with pytest.raises(ValueError):
            assembler.assemble([dup, dup])

    def test_single_read_passthrough(self):
        read = SeqRecord(name="solo", sequence=simulate_genome(300, seed=8))
        result = GreedyAssembler().assemble([read])
        assert result.contig.sequence == read.sequence
        assert result.used_reads == 1


class TestFullPipeline:
    def test_assemble_then_polish_improves_draft(self):
        """The paper's §V-A pipeline end to end: draft from the
        assembler, polish with Racon, identity must not decrease."""
        read_set = simulate_read_set(
            genome_length=2500, coverage=15, mean_read_length=500, seed=42
        )
        truth = read_set.genome.sequence
        assembly, polish = assemble_and_polish(read_set.records)
        draft_identity = identity(assembly.contig.sequence, truth)
        polished_identity = identity(polish.polished.sequence, truth)
        assert draft_identity > 0.85
        assert polished_identity >= draft_identity
        assert polish.windows_polished > 0
