"""End-to-end basecaller: accuracy, segmentation, CPU/GPU equality."""

import numpy as np
import pytest

from repro.gpusim.kernels import KernelTimingModel
from repro.gpusim.profiler import CudaProfiler
from repro.tools.bonito.basecaller import Basecaller
from repro.tools.bonito.signal import SquiggleSimulator
from repro.tools.seqio.records import SignalRead
from repro.workloads.generator import simulate_genome


@pytest.fixture
def basecaller(pore_model):
    return Basecaller(pore_model)


def read_for(pore_model, sequence, seed=1, **simulator_kwargs) -> SignalRead:
    simulator = SquiggleSimulator(pore_model, **simulator_kwargs)
    return SignalRead(
        read_id="r", signal=simulator.synthesize(sequence, seed=seed),
        true_sequence=sequence,
    )


class TestCleanSignal:
    def test_near_perfect_on_clean_signal(self, pore_model, basecaller):
        sequence = simulate_genome(200, seed=5)
        read = read_for(pore_model, sequence, dwell_jitter=0, noise_sd_pa=0.0)
        result = basecaller.basecall([read])
        assert result.mean_identity >= 0.95

    def test_known_small_sequence(self, pore_model, basecaller):
        sequence = "ACGTACCGTTAGCATGC"
        read = read_for(pore_model, sequence, dwell_jitter=0, noise_sd_pa=0.0)
        record, _, _ = basecaller.basecall_read(read)
        # homopolymer runs may compress by one base; nothing else
        assert abs(len(record.sequence) - len(sequence)) <= 2


class TestRealisticSignal:
    def test_accuracy_on_noisy_variable_dwell(self, pore_model, basecaller, squiggle_reads):
        result = basecaller.basecall(list(squiggle_reads))
        assert result.mean_identity >= 0.78  # nanopore-class accuracy
        assert result.total_events > 0
        assert result.total_samples == sum(len(r) for r in squiggle_reads)

    def test_deterministic(self, pore_model, basecaller, squiggle_reads):
        first = basecaller.basecall(list(squiggle_reads))
        second = basecaller.basecall(list(squiggle_reads))
        assert [r.sequence for r in first.records] == [
            r.sequence for r in second.records
        ]


class TestSegmentation:
    def test_event_count_tracks_bases(self, pore_model, basecaller):
        sequence = simulate_genome(150, seed=8)
        read = read_for(pore_model, sequence, dwell_jitter=0, noise_sd_pa=0.5)
        _, _, events = basecaller.basecall_read(read)
        assert 0.8 * len(sequence) <= events <= 1.2 * len(sequence)

    def test_empty_signal(self, basecaller):
        read = SignalRead(read_id="e", signal=np.empty(0, dtype=np.float32))
        record, _, events = basecaller.basecall_read(read)
        assert record.sequence == "" and events == 0

    def test_tiny_signal_single_event(self, basecaller):
        read = SignalRead(read_id="t", signal=np.full(3, 80.0, dtype=np.float32))
        record, _, events = basecaller.basecall_read(read)
        assert events == 1
        assert len(record.sequence) == 1

    def test_threshold_validation(self, pore_model):
        with pytest.raises(ValueError):
            Basecaller(pore_model, step_threshold_pa=0.0)


class TestGpuPath:
    def test_gpu_and_cpu_basecalls_identical(self, pore_model, squiggle_reads, host):
        cpu_result = Basecaller(pore_model).basecall(list(squiggle_reads))
        proc = host.launch_process("/usr/bin/bonito", cuda_visible_devices="0")
        timing = KernelTimingModel(
            host, host.device(0), profiler=CudaProfiler(), pid=proc.pid
        )
        gpu_result = Basecaller(pore_model, timing=timing).basecall(
            list(squiggle_reads)
        )
        assert [r.sequence for r in gpu_result.records] == [
            r.sequence for r in cpu_result.records
        ]

    def test_gpu_path_charges_device(self, pore_model, squiggle_reads, host):
        profiler = CudaProfiler()
        timing = KernelTimingModel(host, host.device(0), profiler=profiler)
        Basecaller(pore_model, timing=timing).basecall(list(squiggle_reads))
        names = {h.name for h in profiler.hotspots()}
        assert "sgemm_template_match" in names
        assert "cudnn_conv1d_fwd" in names
        assert host.clock.now > 0


class TestBatchedBasecalling:
    def test_batched_output_identical_to_per_read(self, pore_model, squiggle_reads):
        caller = Basecaller(pore_model)
        per_read = caller.basecall(list(squiggle_reads))
        batched = caller.basecall_batched(list(squiggle_reads))
        assert [r.sequence for r in batched.records] == [
            r.sequence for r in per_read.records
        ]
        assert batched.total_events == per_read.total_events
        assert batched.mean_identity == pytest.approx(per_read.mean_identity)

    def test_batched_issues_single_gemm(self, pore_model, squiggle_reads, host):
        profiler = CudaProfiler()
        timing = KernelTimingModel(host, host.device(0), profiler=profiler)
        Basecaller(pore_model, timing=timing).basecall_batched(list(squiggle_reads))
        gemms = [r for r in profiler.records if r.name == "sgemm_template_match"]
        assert len(gemms) == 1  # vs one per read in the per-read path

    def test_batched_handles_empty_and_tiny_reads(self, pore_model):
        reads = [
            SignalRead(read_id="empty", signal=np.empty(0, dtype=np.float32)),
            SignalRead(read_id="tiny", signal=np.full(3, 80.0, dtype=np.float32)),
        ]
        result = Basecaller(pore_model).basecall_batched(reads)
        assert result.records[0].sequence == ""
        assert len(result.records[1].sequence) == 1
