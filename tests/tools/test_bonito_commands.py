"""Bonito subcommands: download / convert / train / evaluate."""

import numpy as np
import pytest

from repro.tools.bonito.commands import (
    PRETRAINED_MODELS,
    bonito_convert,
    bonito_download,
    bonito_evaluate,
    bonito_train,
    chunks_to_reads,
)
from repro.tools.bonito.signal import PoreModel, SquiggleSimulator
from repro.tools.seqio.records import SignalRead
from repro.workloads.generator import simulate_genome


class TestDownload:
    def test_known_models(self):
        for name in PRETRAINED_MODELS:
            model = bonito_download(name)
            assert model.n_kmers == 4 ** model.k

    def test_deterministic(self):
        a = bonito_download("dna_r9.4.1")
        b = bonito_download("dna_r9.4.1")
        assert (a.levels == b.levels).all()

    def test_different_chemistries_differ(self):
        r9 = bonito_download("dna_r9.4.1")
        r10 = bonito_download("dna_r10.3")
        assert not np.allclose(r9.levels, r10.levels)

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="dna_r9"):
            bonito_download("dna_r99")


class TestConvert:
    def test_roundtrip(self, pore_model, squiggle_reads):
        chunks = bonito_convert(list(squiggle_reads))
        assert len(chunks) == len(squiggle_reads)
        assert chunks.signals.shape[1] == max(len(r) for r in squiggle_reads)
        back = chunks_to_reads(chunks)
        for original, restored in zip(squiggle_reads, back, strict=True):
            assert restored.read_id == original.read_id
            assert restored.true_sequence == original.true_sequence
            assert np.allclose(restored.signal, original.signal)

    def test_padding_zeroed(self, squiggle_reads):
        chunks = bonito_convert(list(squiggle_reads))
        for i, read in enumerate(squiggle_reads):
            assert (chunks.signals[i, len(read):] == 0).all()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bonito_convert([])

    def test_unlabelled_rejected(self):
        read = SignalRead(read_id="u", signal=np.zeros(10))
        with pytest.raises(ValueError, match="ground truth"):
            bonito_convert([read])


class TestTrain:
    @pytest.fixture(scope="class")
    def training_data(self, pore_model):
        simulator = SquiggleSimulator(
            pore_model, samples_per_base=8, dwell_jitter=0, noise_sd_pa=0.6
        )
        genome = simulate_genome(3000, seed=17)
        reads = simulator.simulate_reads(genome, n_reads=30, mean_length=400, seed=3)
        return bonito_convert(reads)

    def test_repairs_miscalibrated_model(self, pore_model, training_data):
        """Start from a drifted model; training must pull the levels back
        toward the generating truth."""
        drifted = PoreModel(k=3, seed=0)
        rng = np.random.default_rng(5)
        drifted.levels = (
            pore_model.levels + rng.normal(0, 4.0, pore_model.n_kmers)
        ).astype(np.float32)
        trained, training = bonito_train(
            drifted, training_data, epochs=3, reference_model=pore_model
        )
        assert training.level_rmse_after < training.level_rmse_before * 0.6
        assert training.kmers_observed > 50  # nearly all 64 k-mers seen

    def test_training_improves_basecall_accuracy(self, pore_model, training_data):
        drifted = PoreModel(k=3, seed=0)
        rng = np.random.default_rng(6)
        drifted.levels = (
            pore_model.levels + rng.normal(0, 4.0, pore_model.n_kmers)
        ).astype(np.float32)
        eval_reads = chunks_to_reads(training_data)[:8]
        before = bonito_evaluate(drifted, eval_reads).mean_identity
        trained, _ = bonito_train(drifted, training_data, reference_model=pore_model)
        after = bonito_evaluate(trained, eval_reads).mean_identity
        assert after > before

    def test_input_model_untouched(self, pore_model, training_data):
        levels_before = pore_model.levels.copy()
        bonito_train(pore_model, training_data, epochs=1)
        assert (pore_model.levels == levels_before).all()

    def test_history_monotone_on_easy_data(self, pore_model, training_data):
        drifted = PoreModel(k=3, seed=0)
        drifted.levels = (pore_model.levels + 3.0).astype(np.float32)
        _, training = bonito_train(
            drifted, training_data, epochs=4, reference_model=pore_model
        )
        assert training.history[-1] <= training.history[0]
        assert len(training.history) == 5

    def test_validation(self, pore_model, training_data):
        with pytest.raises(ValueError):
            bonito_train(pore_model, training_data, epochs=0)
        with pytest.raises(ValueError):
            bonito_train(pore_model, training_data, learning_rate=0.0)


class TestEvaluate:
    def test_matched_model_scores_high(self, pore_model, squiggle_reads):
        result = bonito_evaluate(pore_model, list(squiggle_reads))
        assert result.reads == len(squiggle_reads)
        assert result.mean_identity > 0.75
        assert 0 <= result.min_identity <= result.median_identity <= 1.0
        assert len(result.per_read) == result.reads

    def test_wrong_model_scores_lower(self, pore_model, squiggle_reads):
        wrong = bonito_download("dna_r10.3")
        matched = bonito_evaluate(pore_model, list(squiggle_reads)).mean_identity
        mismatched = bonito_evaluate(wrong, list(squiggle_reads)).mean_identity
        assert mismatched < matched

    def test_unlabelled_rejected(self):
        read = SignalRead(read_id="u", signal=np.zeros(10))
        with pytest.raises(ValueError):
            bonito_evaluate(bonito_download("dna_r9.4.1"), [read])
