"""Conv-as-GEMM layers and template scoring."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.tools.bonito.model import Conv1dLayer, TemplateScorer, im2col, softmax


class TestIm2col:
    def test_frame_count_and_content(self):
        signal = np.arange(10, dtype=np.float32)
        patches = im2col(signal, window=4, stride=2)
        assert patches.shape == (4, 4)
        assert np.array_equal(patches[0], [0, 1, 2, 3])
        assert np.array_equal(patches[1], [2, 3, 4, 5])

    def test_too_short_signal_empty(self):
        assert im2col(np.zeros(2), window=4).shape == (0, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            im2col(np.zeros(10), window=0)
        with pytest.raises(ValueError):
            im2col(np.zeros(10), window=3, stride=0)

    @given(
        n=st.integers(4, 100),
        window=st.integers(1, 4),
        stride=st.integers(1, 3),
    )
    def test_shape_formula(self, n, window, stride):
        patches = im2col(np.zeros(n, dtype=np.float32), window, stride)
        assert patches.shape == ((n - window) // stride + 1, window)


class TestConv1dLayer:
    def test_smoothing_filter_is_moving_average(self):
        layer = Conv1dLayer.smoothing(window=3)
        signal = np.array([0.0, 3.0, 6.0, 3.0, 0.0], dtype=np.float32)
        output, flops = layer.forward(signal)
        assert output.shape == (3, 1)
        assert np.allclose(output[:, 0], [3.0, 4.0, 3.0])
        assert flops == 2 * 3 * 3 * 1

    def test_multi_filter_output(self):
        weights = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        layer = Conv1dLayer(weights=weights, bias=np.array([0.0, 10.0]))
        output, _ = layer.forward(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        assert np.allclose(output, [[1.0, 12.0], [2.0, 13.0]])

    def test_validation(self):
        with pytest.raises(ValueError):
            Conv1dLayer(weights=np.zeros(3), bias=np.zeros(1))
        with pytest.raises(ValueError):
            Conv1dLayer(weights=np.zeros((2, 3)), bias=np.zeros(3))


class TestTemplateScorer:
    def test_scores_equal_negative_squared_distance(self, pore_model):
        scorer = TemplateScorer(pore_model)
        means = np.array([70.0, 100.0], dtype=np.float32)
        scores, _ = scorer.score(means)
        expected = -((means[:, None] - pore_model.levels[None, :]) ** 2)
        assert np.allclose(scores, expected, atol=1e-2)

    def test_argmax_recovers_exact_level(self, pore_model):
        scorer = TemplateScorer(pore_model)
        for index in (0, 17, 63):
            means = np.array([pore_model.levels[index]])
            scores, _ = scorer.score(means)
            assert int(np.argmax(scores[0])) == index

    def test_flops_counted(self, pore_model):
        scorer = TemplateScorer(pore_model)
        _, flops = scorer.score(np.zeros(10, dtype=np.float32))
        assert flops == 2 * 10 * 3 * 64

    def test_logits_scaled(self, pore_model):
        scorer = TemplateScorer(pore_model)
        means = np.array([80.0], dtype=np.float32)
        assert np.allclose(
            scorer.logits(means, scale=0.5), 0.5 * scorer.score(means)[0]
        )


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [-5.0, 0.0, 5.0]])
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_stability_with_large_values(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(probs, 0.5)
