"""Bonito performance model against the paper's anchors."""

import pytest

from repro.tools.bonito.perf_model import GPU_PHASE_FRACTIONS, BonitoPerfModel
from repro.workloads.datasets import ACINETOBACTER_PITTII, KLEBSIELLA_KSB2


@pytest.fixture(scope="module")
def model():
    return BonitoPerfModel()


class TestFig5Anchors:
    def test_pittii_cpu_exceeds_210_hours(self, model):
        """§VI-A: CPU basecalling of the 1.5 GB set lasted >210 h."""
        assert model.cpu_time(ACINETOBACTER_PITTII).total_hours > 210.0

    def test_klebsiella_cpu_exceeds_850_hours_approx(self, model):
        """§VI-A: the 5.2 GB set is 'approximated to last 4x longer'
        (>850 h); byte-proportional scaling gives 3.5x, within range."""
        hours = model.cpu_time(KLEBSIELLA_KSB2).total_hours
        assert hours > 700.0
        ratio = hours / model.cpu_time(ACINETOBACTER_PITTII).total_hours
        assert 3.0 <= ratio <= 4.5

    def test_speedup_exceeds_50x(self, model):
        assert model.speedup(ACINETOBACTER_PITTII) > 50.0
        assert model.speedup(KLEBSIELLA_KSB2) > 50.0

    def test_gpu_hours_reasonable(self, model):
        hours = model.gpu_time(ACINETOBACTER_PITTII).total_hours
        assert 3.0 <= hours <= 5.0


class TestPhaseStructure:
    def test_fractions_sum_to_one(self):
        assert sum(GPU_PHASE_FRACTIONS.values()) == pytest.approx(1.0)

    def test_gemm_dominates_gpu_breakdown(self, model):
        """Fig. 6: GEMM functions are the biggest hotspot class."""
        breakdown = model.gpu_time(ACINETOBACTER_PITTII).breakdown
        assert breakdown["gemm_kernels"] == max(breakdown.values())

    def test_breakdown_sums_to_total(self, model):
        timing = model.gpu_time(KLEBSIELLA_KSB2)
        assert sum(timing.breakdown.values()) == pytest.approx(timing.total_seconds)

    def test_validation(self):
        with pytest.raises(ValueError):
            BonitoPerfModel(cpu_bytes_per_second=0)
        with pytest.raises(ValueError):
            BonitoPerfModel(gpu_speedup=0.5)
