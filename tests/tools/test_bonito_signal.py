"""Pore model and squiggle synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tools.bonito.signal import PoreModel, SquiggleSimulator
from repro.workloads.generator import simulate_genome

dna = st.text(alphabet="ACGT", min_size=3, max_size=40)


class TestPoreModel:
    def test_level_count(self, pore_model):
        assert pore_model.n_kmers == 64
        assert len(pore_model.levels) == 64

    def test_levels_within_range(self, pore_model):
        assert pore_model.levels.min() >= pore_model.level_min_pa
        assert pore_model.levels.max() <= pore_model.level_max_pa

    def test_levels_distinct(self, pore_model):
        assert len(set(pore_model.levels.tolist())) == 64

    def test_kmer_index_roundtrip(self, pore_model):
        for index in range(64):
            assert pore_model.kmer_index(pore_model.kmer_string(index)) == index

    def test_kmer_index_encoding(self, pore_model):
        assert pore_model.kmer_index("AAA") == 0
        assert pore_model.kmer_index("AAC") == 1
        assert pore_model.kmer_index("TTT") == 63

    def test_center_base(self, pore_model):
        assert pore_model.center_base(pore_model.kmer_index("AGC")) == "G"

    def test_wrong_length_rejected(self, pore_model):
        with pytest.raises(ValueError):
            pore_model.kmer_index("AC")
        with pytest.raises(ValueError):
            pore_model.kmer_string(64)

    def test_sequence_levels_centered(self, pore_model):
        seq = "ACGTT"
        levels = pore_model.sequence_levels(seq)
        assert len(levels) == 5
        # base 1 ('C') sits in context A-C-G
        assert levels[1] == pore_model.level("ACG")

    def test_deterministic_by_seed(self):
        assert (PoreModel(seed=5).levels == PoreModel(seed=5).levels).all()
        assert not (PoreModel(seed=5).levels == PoreModel(seed=6).levels).all()

    @given(dna)
    @settings(max_examples=30)
    def test_sequence_levels_length(self, seq):
        pore = PoreModel(k=3, seed=1)
        assert len(pore.sequence_levels(seq)) == len(seq)


class TestSquiggleSimulator:
    def test_length_scales_with_dwell(self, pore_model):
        simulator = SquiggleSimulator(pore_model, samples_per_base=8, dwell_jitter=0)
        signal = simulator.synthesize("ACGTACGT", seed=1)
        assert len(signal) == 8 * 8

    def test_dwell_jitter_varies_length(self, pore_model):
        simulator = SquiggleSimulator(pore_model, samples_per_base=8, dwell_jitter=2)
        lengths = {len(simulator.synthesize("ACGT" * 10, seed=s)) for s in range(5)}
        assert len(lengths) > 1
        for length in lengths:
            assert 6 * 40 <= length <= 10 * 40

    def test_clean_signal_matches_levels(self, pore_model):
        simulator = SquiggleSimulator(
            pore_model, samples_per_base=4, dwell_jitter=0, noise_sd_pa=0.0
        )
        signal = simulator.synthesize("ACG", seed=1)
        expected = np.repeat(pore_model.sequence_levels("ACG"), 4)
        assert np.allclose(signal, expected)

    def test_noise_added(self, pore_model):
        quiet = SquiggleSimulator(pore_model, noise_sd_pa=0.0).synthesize("ACGT", 1)
        noisy = SquiggleSimulator(pore_model, noise_sd_pa=2.0).synthesize("ACGT", 1)
        assert not np.allclose(quiet, noisy)

    def test_empty_sequence(self, pore_model):
        assert len(SquiggleSimulator(pore_model).synthesize("", 1)) == 0

    def test_parameter_validation(self, pore_model):
        with pytest.raises(ValueError):
            SquiggleSimulator(pore_model, samples_per_base=0)
        with pytest.raises(ValueError):
            SquiggleSimulator(pore_model, samples_per_base=4, dwell_jitter=4)

    def test_simulate_reads_carry_truth(self, pore_model):
        genome = simulate_genome(500, seed=1)
        simulator = SquiggleSimulator(pore_model)
        reads = simulator.simulate_reads(genome, n_reads=5, mean_length=100, seed=2)
        assert len(reads) == 5
        for read in reads:
            assert read.true_sequence in genome
            assert len(read.signal) > 0

    def test_simulate_reads_validation(self, pore_model):
        simulator = SquiggleSimulator(pore_model)
        with pytest.raises(ValueError):
            simulator.simulate_reads("ACGT" * 100, n_reads=0, mean_length=10)
        with pytest.raises(ValueError):
            simulator.simulate_reads("ACGT", n_reads=1, mean_length=100)
