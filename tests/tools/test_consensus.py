"""Racon windowed polishing pipeline."""

import pytest

from repro.tools.racon.alignment import identity
from repro.tools.racon.consensus import RaconPolisher, Window
from repro.tools.seqio.paf import PafRecord
from repro.tools.seqio.records import SeqRecord


class TestWindowing:
    def test_windows_tile_backbone(self):
        polisher = RaconPolisher(window_length=100)
        backbone = SeqRecord(name="b", sequence="A" * 250)
        windows, _ = polisher.build_windows(backbone, [], [])
        assert [(w.start, w.end) for w in windows] == [(0, 100), (100, 200), (200, 250)]
        assert "".join(w.backbone_fragment for w in windows) == backbone.sequence

    def test_fragment_assignment_spans_windows(self):
        polisher = RaconPolisher(window_length=100)
        backbone = SeqRecord(name="b", sequence="ACGT" * 75)  # 300bp
        read = SeqRecord(name="r", sequence=backbone.sequence[50:250])
        paf = PafRecord(
            query_name="r",
            query_length=200,
            query_start=0,
            query_end=200,
            strand="+",
            target_name="b",
            target_length=300,
            target_start=50,
            target_end=250,
            residue_matches=200,
            alignment_block_length=200,
        )
        windows, dropped = polisher.build_windows(backbone, [read], [paf])
        assert dropped == 0
        assert [len(w.fragments) for w in windows] == [1, 1, 1]
        # middle window fully covered
        assert windows[1].fragments[0] == backbone.sequence[100:200]

    def test_reverse_strand_fragment_complemented(self):
        polisher = RaconPolisher(window_length=100)
        backbone = SeqRecord(name="b", sequence="ACGTT" * 20)
        from repro.tools.seqio.records import reverse_complement

        read = SeqRecord(name="r", sequence=reverse_complement(backbone.sequence))
        paf = PafRecord(
            query_name="r",
            query_length=100,
            query_start=0,
            query_end=100,
            strand="-",
            target_name="b",
            target_length=100,
            target_start=0,
            target_end=100,
            residue_matches=100,
            alignment_block_length=100,
        )
        windows, _ = polisher.build_windows(backbone, [read], [paf])
        assert windows[0].fragments[0] == backbone.sequence

    def test_foreign_mappings_dropped(self):
        polisher = RaconPolisher(window_length=100)
        backbone = SeqRecord(name="b", sequence="A" * 100)
        paf = PafRecord(
            query_name="ghost",
            query_length=50,
            query_start=0,
            query_end=50,
            strand="+",
            target_name="b",
            target_length=100,
            target_start=0,
            target_end=50,
            residue_matches=50,
            alignment_block_length=50,
        )
        _, dropped = polisher.build_windows(backbone, [], [paf])
        assert dropped == 1

    def test_window_coverage_and_cells(self):
        window = Window(index=0, start=0, end=100, backbone_fragment="A" * 100)
        window.fragments = ["C" * 100, "G" * 50]
        assert window.coverage == pytest.approx(1.5)
        assert window.workload_cells(banded=False) == 100 * 100 + 50 * 100
        assert window.workload_cells(banded=True, band=10) == 100 * 21 + 50 * 21

    def test_invalid_window_length(self):
        with pytest.raises(ValueError):
            RaconPolisher(window_length=0)


class TestPolish:
    def test_improves_draft_identity(self, small_read_set, small_polish_inputs):
        backbone, reads, mappings = small_polish_inputs
        truth = small_read_set.genome.sequence
        result = RaconPolisher(window_length=200).polish(backbone, reads, mappings)
        assert identity(result.polished.sequence, truth) > identity(
            backbone.sequence, truth
        )
        assert result.windows_polished >= result.windows_total - 2
        assert result.fragments_used > 0

    def test_unsupported_windows_keep_backbone(self):
        polisher = RaconPolisher(window_length=50)
        backbone = SeqRecord(name="b", sequence="ACGT" * 25)
        result = polisher.polish(backbone, [], [])
        assert result.polished.sequence == backbone.sequence
        assert result.windows_polished == 0
        assert result.polish_fraction == 0.0

    def test_polished_name_suffixed(self, small_polish_inputs):
        backbone, reads, mappings = small_polish_inputs
        result = RaconPolisher(window_length=200).polish(backbone, reads, mappings)
        assert result.polished.name.endswith("_polished")

    def test_custom_window_processor_used(self, small_polish_inputs):
        backbone, reads, mappings = small_polish_inputs
        calls = []

        def processor(windows, polisher):
            calls.append(len(windows))
            return [w.backbone_fragment for w in windows]

        result = RaconPolisher(window_length=200).polish(
            backbone, reads, mappings, window_processor=processor
        )
        assert calls and result.polished.sequence == backbone.sequence
