"""CTC decoding: collapse semantics, greedy, beam search."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tools.bonito.ctc import (
    BLANK,
    collapse,
    ctc_beam_search,
    ctc_greedy_decode,
)


def logits_for(path: list[int], n_symbols: int = 5, strength: float = 6.0) -> np.ndarray:
    logits = np.full((len(path), n_symbols), -strength)
    for frame, symbol in enumerate(path):
        logits[frame, symbol] = strength
    return logits


class TestCollapse:
    def test_repeats_merge(self):
        assert collapse([1, 1, 2, 2, 2, 3]) == [1, 2, 3]

    def test_blanks_removed(self):
        assert collapse([0, 1, 0, 0, 2, 0]) == [1, 2]

    def test_blank_separates_repeats(self):
        assert collapse([1, 0, 1]) == [1, 1]
        assert collapse([1, 1]) == [1]

    def test_empty_and_all_blank(self):
        assert collapse([]) == []
        assert collapse([0, 0, 0]) == []

    @given(st.lists(st.integers(0, 4), max_size=50))
    def test_no_blanks_in_output(self, labels):
        assert BLANK not in collapse(labels)

    @given(st.lists(st.integers(0, 4), max_size=50))
    def test_output_never_longer_than_input(self, labels):
        assert len(collapse(labels)) <= len(labels)

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=20))
    def test_collapse_not_idempotent_in_general(self, labels):
        """Collapsing twice merges blank-separated repeats — the reason
        CTC decoding must collapse exactly once ([1,0,1] -> [1,1] -> [1])."""
        interleaved = []
        for label in labels:
            interleaved += [BLANK, label]
        once = collapse(interleaved)
        assert once == labels
        twice = collapse(once)
        assert len(twice) <= len(once)

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=20))
    def test_blank_interleaving_preserves_labels(self, labels):
        """blank label blank label ... decodes to exactly the labels."""
        interleaved = []
        for label in labels:
            interleaved += [BLANK, label]
        assert collapse(interleaved) == labels


class TestGreedyDecode:
    def test_simple_path(self):
        assert ctc_greedy_decode(logits_for([1, 1, 0, 2, 0, 2, 3])) == "ACCG"

    def test_all_blank_empty(self):
        assert ctc_greedy_decode(logits_for([0, 0, 0])) == ""

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ctc_greedy_decode(np.zeros(5))
        with pytest.raises(ValueError):
            ctc_greedy_decode(np.zeros((3, 4)))  # alphabet is 5 symbols

    def test_custom_alphabet(self):
        out = ctc_greedy_decode(logits_for([1, 2], n_symbols=3), alphabet="-xy")
        assert out == "xy"


class TestBeamSearch:
    def test_agrees_with_greedy_on_confident_input(self):
        path = [1, 0, 2, 2, 0, 3, 4, 0]
        logits = logits_for(path)
        assert ctc_beam_search(logits, beam_width=4) == ctc_greedy_decode(logits)

    def test_beats_greedy_on_mass_splitting(self):
        """Classic CTC case: per-frame argmax picks blank, but summed
        label mass wins under proper decoding."""
        logits = np.log(np.array([
            [0.4, 0.35, 0.25, 1e-9, 1e-9],
            [0.4, 0.35, 0.25, 1e-9, 1e-9],
        ]))
        assert ctc_greedy_decode(logits) == ""
        assert ctc_beam_search(logits, beam_width=8) == "A"

    def test_repeat_requires_blank(self):
        path = [1, 1, 0, 1]
        logits = logits_for(path)
        assert ctc_beam_search(logits) == "AA"

    def test_validation(self):
        with pytest.raises(ValueError):
            ctc_beam_search(np.zeros((2, 5)), beam_width=0)
        with pytest.raises(ValueError):
            ctc_beam_search(np.zeros((2, 3)))

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_confident_paths_match_greedy(self, path):
        logits = logits_for(path, strength=9.0)
        assert ctc_beam_search(logits, beam_width=4) == ctc_greedy_decode(logits)
