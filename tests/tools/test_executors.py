"""Tool executors: workload modes, fallback, device accounting."""

import pytest

from repro.gpusim.profiler import CudaProfiler
from repro.galaxy.job import JobState


class TestRaconUnitMode:
    def test_gpu_unit_time_matches_model(self, deployment):
        job = deployment.run_tool(
            "racon", {"threads": 4, "batches": 1, "workload": "unit"}
        )
        assert job.metrics.runtime_seconds == pytest.approx(1.72, abs=0.01)

    def test_cpu_unit_time_when_no_gpu(self):
        from repro.cluster.node import ComputeNode
        from repro.core import build_deployment
        from repro.tools.executors import register_paper_tools

        dep = build_deployment(node=ComputeNode.cpu_only())
        register_paper_tools(dep.app)
        job = dep.run_tool("racon", {"threads": 4, "workload": "unit"})
        assert job.metrics.runtime_seconds == pytest.approx(3.22, abs=0.01)

    def test_banding_parameter_threads_through(self, deployment):
        job = deployment.run_tool(
            "racon",
            {"threads": 4, "batches": 16, "banding": "true", "workload": "unit"},
        )
        assert "-b" in job.command_line
        assert job.metrics.runtime_seconds == pytest.approx(1.67, abs=0.01)


class TestRaconDatasetMode:
    def test_gpu_end_to_end_near_200s(self, deployment):
        deployment.app.profiler = CudaProfiler()
        job = deployment.run_tool(
            "racon", {"threads": 4, "workload": "dataset", "dataset": "Alzheimers_NFL"}
        )
        assert job.metrics.runtime_seconds == pytest.approx(200.0, rel=0.02)
        assert job.metrics.breakdown["gpu_alloc"] == pytest.approx(2.0, abs=0.1)
        assert job.metrics.breakdown["gpu_kernels"] == pytest.approx(13.0, rel=0.1)
        assert job.metrics.breakdown["cuda_api_overhead"] == pytest.approx(40.0, rel=0.1)

    def test_device_memory_restored_after_run(self, deployment):
        deployment.run_tool("racon", {"workload": "dataset"})
        assert deployment.gpu_host.device(0).memory.used == 0

    def test_unknown_dataset_fails_job(self, deployment):
        job = deployment.run_tool(
            "racon", {"workload": "dataset", "dataset": "NotADataset"}
        )
        assert job.state is JobState.ERROR

    def test_stall_analysis_matches_paper(self, deployment):
        deployment.app.profiler = CudaProfiler()
        deployment.run_tool("racon", {"workload": "dataset"})
        stalls = deployment.app.profiler.stall_analysis()
        assert stalls.memory_dependency_pct == pytest.approx(70.0, abs=5.0)
        assert stalls.execution_dependency_pct == pytest.approx(20.0, abs=5.0)


class TestRaconPayloadMode:
    def test_real_polish_through_galaxy(self, deployment, small_read_set, small_polish_inputs):
        backbone, reads, mappings = small_polish_inputs
        job = deployment.run_tool(
            "racon",
            {
                "workload": "payload",
                "window_length": 200,
                "payload": {
                    "backbone": backbone,
                    "reads": reads,
                    "mappings": mappings,
                },
            },
        )
        assert job.state is JobState.OK
        from repro.tools.racon.alignment import identity

        truth = small_read_set.genome.sequence
        assert identity(job.result.polished.sequence, truth) > identity(
            backbone.sequence, truth
        )

    def test_payload_gpu_equals_cpu_only_deployment(
        self, deployment, small_polish_inputs
    ):
        from repro.cluster.node import ComputeNode
        from repro.core import build_deployment
        from repro.tools.executors import register_paper_tools

        backbone, reads, mappings = small_polish_inputs
        params = {
            "workload": "payload",
            "window_length": 200,
            "payload": {"backbone": backbone, "reads": reads, "mappings": mappings},
        }
        gpu_job = deployment.run_tool("racon", dict(params))
        cpu_dep = build_deployment(node=ComputeNode.cpu_only())
        register_paper_tools(cpu_dep.app)
        cpu_job = cpu_dep.run_tool("racon", dict(params))
        assert (
            gpu_job.result.polished.sequence == cpu_job.result.polished.sequence
        )


class TestBonitoExecutor:
    def test_gpu_dataset_mode(self, deployment):
        deployment.app.profiler = CudaProfiler()
        job = deployment.run_tool(
            "bonito", {"workload": "dataset", "dataset": "Acinetobacter_pittii"}
        )
        assert job.state is JobState.OK
        hours = job.metrics.runtime_seconds / 3600.0
        assert 3.5 <= hours <= 4.5
        assert "cuda" in job.command_line

    def test_cpu_dataset_mode_exceeds_210h(self):
        from repro.cluster.node import ComputeNode
        from repro.core import build_deployment
        from repro.tools.executors import register_paper_tools

        dep = build_deployment(node=ComputeNode.cpu_only())
        register_paper_tools(dep.app)
        job = dep.run_tool(
            "bonito", {"workload": "dataset", "dataset": "Acinetobacter_pittii"}
        )
        assert job.metrics.runtime_seconds / 3600.0 > 210.0
        assert "cpu" in job.command_line

    def test_gemm_hotspot_dominates(self, deployment):
        deployment.app.profiler = CudaProfiler()
        deployment.run_tool("bonito", {"workload": "dataset"})
        hotspots = deployment.app.profiler.hotspots()
        assert hotspots[0].name == "sgemm_128x64_nn"

    def test_payload_mode_real_basecalling(self, deployment, pore_model, squiggle_reads):
        job = deployment.run_tool(
            "bonito",
            {
                "workload": "payload",
                "payload": {"pore": pore_model, "reads": list(squiggle_reads)},
            },
        )
        assert job.state is JobState.OK
        assert job.result.mean_identity > 0.75
        assert len(job.result.records) == len(squiggle_reads)
