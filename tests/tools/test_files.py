"""Dataset materialisation: write, load, polish from disk."""

import pathlib

import pytest

from repro.tools.racon.alignment import identity
from repro.tools.racon.consensus import RaconPolisher
from repro.workloads.files import load, materialize
from repro.workloads.generator import simulate_read_set


@pytest.fixture(scope="module")
def read_set():
    return simulate_read_set(
        genome_length=1500, coverage=10, mean_read_length=300, seed=77
    )


class TestMaterialize:
    def test_writes_the_racon_file_triple(self, read_set, tmp_path):
        dataset = materialize(read_set, tmp_path)
        for path in (
            dataset.reads_fastq,
            dataset.backbone_fasta,
            dataset.mappings_paf,
            dataset.truth_fasta,
        ):
            assert pathlib.Path(path).exists()
        assert dataset.total_bytes() > 0

    def test_roundtrip_preserves_sequences(self, read_set, tmp_path):
        dataset = materialize(read_set, tmp_path)
        loaded = load(dataset)
        assert len(loaded.reads) == len(read_set.records)
        for original, restored in zip(read_set.records, loaded.reads, strict=True):
            assert restored.name == original.name
            assert restored.sequence == original.sequence
            assert restored.quality is not None  # Q20 filled in
        assert loaded.truth.sequence == read_set.genome.sequence

    def test_mappings_reference_the_backbone(self, read_set, tmp_path):
        dataset = materialize(read_set, tmp_path)
        loaded = load(dataset)
        for mapping in loaded.mappings:
            assert mapping.target_name == loaded.backbone.name
            assert mapping.target_length == len(loaded.backbone)

    def test_polish_from_disk(self, read_set, tmp_path):
        """The full file-driven pipeline: everything the polisher needs
        comes off disk, and the result still improves the draft."""
        dataset = materialize(read_set, tmp_path)
        loaded = load(dataset)
        result = RaconPolisher(window_length=200).polish(
            loaded.backbone, loaded.reads, loaded.mappings
        )
        truth = loaded.truth.sequence
        assert identity(result.polished.sequence, truth) > identity(
            loaded.backbone.sequence, truth
        )

    def test_explicit_backbone_used(self, read_set, tmp_path):
        from repro.tools.seqio.records import SeqRecord

        backbone = SeqRecord(name="custom_draft", sequence=read_set.genome.sequence)
        dataset = materialize(read_set, tmp_path, backbone=backbone)
        loaded = load(dataset)
        assert loaded.backbone.name == "custom_draft"
