"""Minimizer mapper accuracy against ground truth."""

import pytest
from hypothesis import given, strategies as st

from repro.tools.mapping import MinimizerIndex, MinimizerMapper, kmer_codes, minimizers
from repro.tools.seqio.records import SeqRecord
from repro.workloads.generator import simulate_genome, simulate_reads


class TestKmerCodes:
    def test_simple_codes(self):
        # A=0 C=1 G=2 T=3; "ACG" = 0*16 + 1*4 + 2 = 6
        assert list(kmer_codes("ACG", 3)) == [6]
        assert list(kmer_codes("ACGT", 3)) == [6, 1 * 16 + 2 * 4 + 3]

    def test_short_sequence_empty(self):
        assert kmer_codes("AC", 3).size == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmer_codes("ACGT", 0)

    @given(st.text(alphabet="ACGT", min_size=5, max_size=50))
    def test_codes_in_range(self, seq):
        codes = kmer_codes(seq, 5)
        assert ((codes >= 0) & (codes < 4**5)).all()


class TestMinimizers:
    def test_deterministic(self):
        seq = simulate_genome(500, seed=1)
        assert minimizers(seq, 15, 10) == minimizers(seq, 15, 10)

    def test_positions_valid(self):
        seq = simulate_genome(300, seed=2)
        for code, pos in minimizers(seq, 15, 10):
            assert 0 <= pos <= len(seq) - 15
            assert 0 <= code < 4**15

    def test_density_reasonable(self):
        """Expected minimizer density is ~2/(w+1)."""
        seq = simulate_genome(5000, seed=3)
        count = len(minimizers(seq, 15, 10))
        density = count / len(seq)
        assert 0.1 < density < 0.35

    def test_short_sequence(self):
        assert minimizers("ACGT", k=15, w=10) == []


class TestMapper:
    @pytest.fixture(scope="class")
    def truth(self):
        genome = simulate_genome(8000, seed=42)
        return simulate_reads(
            genome,
            n_reads=60,
            mean_length=600,
            seed=7,
            reverse_strand_fraction=0.3,
        )

    @pytest.fixture(scope="class")
    def mapper(self, truth):
        return MinimizerMapper(truth.genome, k=13, w=5)

    def test_recovers_most_reads(self, truth, mapper):
        mapped = mapper.map_reads(truth.records)
        assert len(mapped) >= 0.95 * len(truth.records)

    def test_positions_close_to_truth(self, truth, mapper):
        by_name = {r.record.name: r for r in truth.reads}
        for paf in mapper.map_reads(truth.records):
            read = by_name[paf.query_name]
            assert abs(paf.target_start - read.genome_start) < 150
            assert abs(paf.target_end - read.genome_end) < 150

    def test_strand_detection(self, truth, mapper):
        by_name = {r.record.name: r for r in truth.reads}
        hits = mapper.map_reads(truth.records)
        correct = sum(1 for p in hits if p.strand == by_name[p.query_name].strand)
        assert correct >= 0.95 * len(hits)

    def test_unrelated_read_unmapped(self, mapper):
        foreign = SeqRecord(name="alien", sequence=simulate_genome(500, seed=999))
        assert mapper.map_read(foreign) is None

    def test_paf_intervals_valid(self, truth, mapper):
        for paf in mapper.map_reads(truth.records):
            assert 0 <= paf.target_start < paf.target_end <= paf.target_length


class TestIndex:
    def test_build_and_seed_lookup(self):
        genome = simulate_genome(1000, seed=5)
        index = MinimizerIndex.build(SeqRecord(name="g", sequence=genome), k=13, w=5)
        # a verbatim fragment must produce seeds on the right diagonal
        fragment = genome[200:400]
        seeds = index.seeds(fragment)
        assert seeds
        diagonals = [tpos - qpos for qpos, tpos in seeds]
        assert any(abs(d - 200) < 5 for d in diagonals)
