"""POA graph: structure invariants, alignment, consensus quality."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tools.racon.alignment import identity
from repro.tools.racon.poa import POAGraph
from repro.workloads.generator import mutate_sequence, simulate_genome

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


class TestConstruction:
    def test_seed_chain(self):
        graph = POAGraph("ACGT")
        assert graph.node_count == 4
        assert graph.edge_count == 3
        assert graph.sequences_added == 1

    def test_empty_seed_rejected(self):
        with pytest.raises(ValueError):
            POAGraph("")

    def test_topological_order_valid_for_chain(self):
        graph = POAGraph("ACGTT")
        order = graph.topological_order()
        assert len(order) == 5
        assert [graph.base(n) for n in order] == list("ACGTT")


class TestAlignAndFuse:
    def test_identical_sequence_reuses_all_nodes(self):
        graph = POAGraph("ACGTACGT")
        graph.add_sequence("ACGTACGT")
        assert graph.node_count == 8  # no new nodes
        assert graph.sequences_added == 2

    def test_interior_mismatch_creates_branch(self):
        """An interior mismatch becomes an alternative node.  (A
        *terminal* mismatch would be soft-clipped by the local
        alignment instead — see test_terminal_mismatch_softclipped.)"""
        graph = POAGraph("ACGTACGT")
        graph.add_sequence("ACTTACGT")
        assert graph.node_count == 9

    def test_terminal_mismatch_softclipped(self):
        """Local alignment clips low-scoring fragment ends rather than
        fusing them — the behaviour that keeps window-boundary slop out
        of the graph."""
        graph = POAGraph("ACGTACGT")
        graph.add_sequence("ACGTACGA")  # mismatch on the last base
        assert graph.node_count == 8  # clipped, no branch node

    def test_mismatch_branch_reused_not_duplicated(self):
        graph = POAGraph("ACGTACGT")
        graph.add_sequence("ACTTACGT")
        nodes_after_first = graph.node_count
        graph.add_sequence("ACTTACGT")
        assert graph.node_count == nodes_after_first

    def test_alignment_pairs_cover_sequence(self):
        graph = POAGraph("ACGTACGT")
        pairs = graph.align("ACGGTACG")
        consumed = [j for _, j in pairs if j is not None]
        assert consumed == list(range(8))

    def test_empty_sequence_noop(self):
        graph = POAGraph("ACGT")
        graph.add_sequence("")
        assert graph.node_count == 4


class TestConsensus:
    def test_consensus_of_seed_is_seed(self):
        assert POAGraph("ACGTACGTAA").consensus() == "ACGTACGTAA"

    def test_majority_overrides_seed_errors(self):
        graph = POAGraph("ACGTACGT")
        for _ in range(5):
            graph.add_sequence("ACTTACGT")  # consistent mismatch at pos 2
        assert graph.consensus() == "ACTTACGT"

    def test_consensus_recovers_truth_from_noisy_reads(self):
        truth = simulate_genome(150, seed=3)
        rng = np.random.default_rng(7)
        graph = POAGraph(mutate_sequence(truth, rng, 0.05, 0.02, 0.02))
        for _ in range(12):
            graph.add_sequence(mutate_sequence(truth, rng, 0.03, 0.01, 0.01))
        assert identity(graph.consensus(), truth) >= 0.97

    def test_consensus_better_than_seed(self):
        truth = simulate_genome(120, seed=11)
        rng = np.random.default_rng(13)
        seed_seq = mutate_sequence(truth, rng, 0.08, 0.02, 0.02)
        graph = POAGraph(seed_seq)
        for _ in range(10):
            graph.add_sequence(mutate_sequence(truth, rng, 0.03, 0.01, 0.01))
        assert identity(graph.consensus(), truth) > identity(seed_seq, truth)


class TestDagInvariant:
    @given(
        seed=dna,
        others=st.lists(dna, min_size=1, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_graph_stays_acyclic_under_arbitrary_fusion(self, seed, others):
        """topological_order() raising would mean a cycle; it never may."""
        graph = POAGraph(seed)
        for sequence in others:
            graph.add_sequence(sequence)
            order = graph.topological_order()  # raises on cycle
            assert len(order) == graph.node_count

    @given(seed=dna, noise=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_fusing_mutations_keeps_dag_and_consensus_well_formed(self, seed, noise):
        rng = np.random.default_rng(noise)
        graph = POAGraph(seed)
        for _ in range(4):
            graph.add_sequence(mutate_sequence(seed, rng, 0.1, 0.05, 0.05))
        consensus = graph.consensus()
        assert consensus
        assert set(consensus) <= set("ACGT")
