"""Iterative polishing rounds."""

import pytest

from repro.tools.racon.alignment import identity
from repro.tools.racon.consensus import RaconPolisher
from repro.workloads.generator import corrupted_backbone, simulate_read_set


@pytest.fixture(scope="module")
def inputs():
    read_set = simulate_read_set(
        genome_length=2000, coverage=14, mean_read_length=350, seed=61
    )
    draft = corrupted_backbone(read_set, seed=8)
    return read_set, draft


class TestPolishRounds:
    def test_identity_non_decreasing_across_rounds(self, inputs):
        read_set, draft = inputs
        truth = read_set.genome.sequence
        polisher = RaconPolisher(window_length=200)
        results = polisher.polish_rounds(draft, read_set.records, rounds=3)
        identities = [identity(draft.sequence, truth)] + [
            identity(r.polished.sequence, truth) for r in results
        ]
        assert len(results) == 3
        for before, after in zip(identities, identities[1:], strict=False):
            assert after >= before - 0.005  # tolerate tiny oscillation
        assert identities[-1] > identities[0]

    def test_round_names(self, inputs):
        read_set, draft = inputs
        results = RaconPolisher(window_length=200).polish_rounds(
            draft, read_set.records, rounds=2
        )
        assert results[0].polished.name.endswith("_round1")
        assert results[1].polished.name.endswith("_round2")

    def test_each_round_remaps(self, inputs):
        """Round 2 uses mappings against round 1's output — fragments
        must land (non-zero) even though coordinates shifted."""
        read_set, draft = inputs
        results = RaconPolisher(window_length=200).polish_rounds(
            draft, read_set.records, rounds=2
        )
        assert results[1].fragments_used > 0

    def test_validation(self, inputs):
        read_set, draft = inputs
        with pytest.raises(ValueError):
            RaconPolisher().polish_rounds(draft, read_set.records, rounds=0)
