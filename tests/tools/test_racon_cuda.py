"""CUDA POA batcher: result equality with CPU, device accounting."""

import pytest

from repro.gpusim.kernels import KernelTimingModel
from repro.gpusim.profiler import CudaProfiler
from repro.tools.racon.consensus import RaconPolisher
from repro.tools.racon.cuda import CudaPOABatcher


@pytest.fixture
def gpu_setup(host):
    proc = host.launch_process("/usr/bin/racon_gpu", cuda_visible_devices="0")
    profiler = CudaProfiler()
    timing = KernelTimingModel(host, host.device(0), profiler=profiler, pid=proc.pid)
    return timing, profiler


class TestResultEquality:
    def test_gpu_consensus_bit_identical_to_cpu(self, gpu_setup, small_polish_inputs):
        timing, _ = gpu_setup
        backbone, reads, mappings = small_polish_inputs
        polisher = RaconPolisher(window_length=200)
        cpu = polisher.polish(backbone, reads, mappings)
        gpu = polisher.polish(
            backbone, reads, mappings,
            window_processor=CudaPOABatcher(timing, batches=4),
        )
        assert gpu.polished.sequence == cpu.polished.sequence

    @pytest.mark.parametrize("batches", [1, 2, 8])
    def test_batch_count_does_not_change_results(
        self, gpu_setup, small_polish_inputs, batches
    ):
        timing, _ = gpu_setup
        backbone, reads, mappings = small_polish_inputs
        polisher = RaconPolisher(window_length=200)
        reference = polisher.polish(backbone, reads, mappings).polished.sequence
        gpu = polisher.polish(
            backbone, reads, mappings,
            window_processor=CudaPOABatcher(timing, batches=batches),
        )
        assert gpu.polished.sequence == reference

    def test_banded_flag_changes_accounting_not_result(
        self, gpu_setup, small_polish_inputs
    ):
        timing, _ = gpu_setup
        backbone, reads, mappings = small_polish_inputs
        polisher = RaconPolisher(window_length=200)
        plain = CudaPOABatcher(timing, batches=2, banded=False)
        polisher.polish(backbone, reads, mappings, window_processor=plain)
        banded = CudaPOABatcher(timing, batches=2, banded=True, band=32)
        result = polisher.polish(backbone, reads, mappings, window_processor=banded)
        unbanded_cells = sum(b.cells for b in plain.stats.batches)
        banded_cells = sum(b.cells for b in banded.stats.batches)
        assert banded_cells < unbanded_cells
        assert result.polished.sequence  # still a full consensus


class TestDeviceAccounting:
    def test_kernel_mix_matches_fig4_names(self, gpu_setup, small_polish_inputs):
        timing, profiler = gpu_setup
        backbone, reads, mappings = small_polish_inputs
        RaconPolisher(window_length=200).polish(
            backbone, reads, mappings,
            window_processor=CudaPOABatcher(timing, batches=3),
        )
        names = {h.name for h in profiler.hotspots()}
        assert {"generatePOAKernel", "generateConsensusKernel",
                "cudaMemcpyHtoD", "cudaMemcpyDtoH", "cudaStreamSynchronize",
                "cudaMalloc"} <= names

    def test_memory_allocated_then_freed(self, gpu_setup, small_polish_inputs):
        timing, _ = gpu_setup
        backbone, reads, mappings = small_polish_inputs
        used_before = timing.device.memory.used
        RaconPolisher(window_length=200).polish(
            backbone, reads, mappings,
            window_processor=CudaPOABatcher(timing, batches=2),
        )
        assert timing.device.memory.used == used_before

    def test_stats_track_all_windows(self, gpu_setup, small_polish_inputs):
        timing, _ = gpu_setup
        backbone, reads, mappings = small_polish_inputs
        polisher = RaconPolisher(window_length=200)
        batcher = CudaPOABatcher(timing, batches=4)
        result = polisher.polish(
            backbone, reads, mappings, window_processor=batcher
        )
        assert batcher.stats.windows_on_gpu == result.windows_polished
        assert len(batcher.stats.batches) <= 4
        assert batcher.stats.kernel_seconds > 0
        assert batcher.stats.alloc_seconds > 0

    def test_clock_advances_monotonically(self, gpu_setup, small_polish_inputs, host):
        timing, _ = gpu_setup
        backbone, reads, mappings = small_polish_inputs
        before = host.clock.now
        RaconPolisher(window_length=200).polish(
            backbone, reads, mappings,
            window_processor=CudaPOABatcher(timing, batches=2),
        )
        assert host.clock.now > before

    def test_invalid_batches(self, gpu_setup):
        timing, _ = gpu_setup
        with pytest.raises(ValueError):
            CudaPOABatcher(timing, batches=0)

    def test_empty_window_list(self, gpu_setup):
        timing, _ = gpu_setup
        batcher = CudaPOABatcher(timing, batches=2)
        assert batcher([], RaconPolisher()) == []
