"""Racon performance model against the paper's anchors."""

import pytest

from repro.tools.racon.perf_model import RaconPerfModel
from repro.workloads.datasets import ALZHEIMERS_NFL


@pytest.fixture(scope="module")
def model():
    return RaconPerfModel()


class TestUnitModelFig3:
    def test_cpu_anchor(self, model):
        """Fig. 3: CPU-only at 4 threads took 3.22 s."""
        assert model.cpu_unit_time(4) == pytest.approx(3.22, abs=0.01)

    def test_gpu_unbanded_anchor(self, model):
        """Fig. 3: best GPU config was 4 threads / 1 batch at 1.72 s."""
        threads, batches, seconds = model.best_gpu_config(banded=False)
        assert (threads, batches) == (4, 1)
        assert seconds == pytest.approx(1.72, abs=0.01)

    def test_gpu_banded_anchor(self, model):
        """Fig. 3: banded best was 4 threads / 16 batches at 1.67 s."""
        threads, batches, seconds = model.best_gpu_config(banded=True)
        assert (threads, batches) == (4, 16)
        assert seconds == pytest.approx(1.67, abs=0.01)

    def test_gpu_roughly_2x_cpu(self, model):
        cpu = model.cpu_unit_time(4)
        gpu = model.gpu_unit_time(4, 1)
        assert 1.6 <= cpu / gpu <= 2.2

    def test_cpu_time_decreases_with_threads(self, model):
        times = [model.cpu_unit_time(t) for t in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)

    def test_thread_validation(self, model):
        with pytest.raises(ValueError):
            model.cpu_unit_time(0)
        with pytest.raises(ValueError):
            model.gpu_unit_time(4, batches=0)


class TestUnitModelFig7:
    def test_container_unbanded_best_config(self, model):
        """Fig. 7: containerized unbanded best at 2 threads / 4 batches."""
        threads, batches, _ = model.best_gpu_config(banded=False, containerized=True)
        assert (threads, batches) == (2, 4)

    def test_container_banded_best_config(self, model):
        """Fig. 7: containerized banded best at 2 threads / 8 batches."""
        threads, batches, _ = model.best_gpu_config(banded=True, containerized=True)
        assert (threads, batches) == (2, 8)

    def test_container_overhead_near_paper(self, model):
        """§VI-B: ~0.6 s (~36 %) container launching overhead."""
        _, _, bare = model.best_gpu_config(banded=True)
        threads, batches, containerized = model.best_gpu_config(
            banded=True, containerized=True
        )
        overhead = containerized - model.gpu_unit_compute_time(
            threads, batches, True, True
        )
        assert overhead == pytest.approx(0.61, abs=0.02)
        fraction = overhead / model.gpu_unit_compute_time(threads, batches, True, True)
        assert 0.30 <= fraction <= 0.40


class TestEndToEndSection6A:
    def test_cpu_end_to_end_410s(self, model):
        timing = model.cpu_end_to_end()
        assert timing.total_seconds == pytest.approx(410.0, abs=1.0)
        assert timing.breakdown["polish"] == pytest.approx(117.0, abs=0.5)

    def test_gpu_end_to_end_200s(self, model):
        timing = model.gpu_end_to_end()
        assert timing.total_seconds == pytest.approx(200.0, abs=1.0)
        assert timing.breakdown["gpu_alloc"] == pytest.approx(2.0)
        assert timing.breakdown["gpu_kernels"] == pytest.approx(13.0)
        assert timing.breakdown["cuda_api_overhead"] == pytest.approx(40.0)

    def test_polish_reduced_117_to_15(self, model):
        cpu_polish = model.cpu_end_to_end().breakdown["polish"]
        gpu_polish = model.gpu_end_to_end().polish_seconds
        assert cpu_polish == pytest.approx(117.0, abs=0.5)
        assert gpu_polish == pytest.approx(15.0, abs=0.2)

    def test_speedup_near_2x(self, model):
        assert model.speedup() == pytest.approx(2.05, abs=0.05)

    def test_scaling_with_dataset_size(self, model):
        half = ALZHEIMERS_NFL.scaled(0.5)
        assert model.cpu_end_to_end(half).total_seconds == pytest.approx(
            205.0, abs=1.0
        )
        # speedup roughly preserved under scaling (alloc is fixed)
        assert model.speedup(half) == pytest.approx(2.05, abs=0.15)

    def test_banded_shrinks_kernels_only(self, model):
        plain = model.gpu_end_to_end(banded=False)
        banded = model.gpu_end_to_end(banded=True)
        assert banded.breakdown["gpu_kernels"] < plain.breakdown["gpu_kernels"]
        assert banded.breakdown["pipeline"] == plain.breakdown["pipeline"]
