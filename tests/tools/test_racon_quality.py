"""Racon quality handling: the -q filter and quality-weighted fusion."""


from repro.tools.racon.consensus import RaconPolisher
from repro.tools.seqio.paf import PafRecord
from repro.tools.seqio.records import SeqRecord


def perfect_mapping(read: SeqRecord, backbone: SeqRecord) -> PafRecord:
    return PafRecord(
        query_name=read.name,
        query_length=len(read),
        query_start=0,
        query_end=len(read),
        strand="+",
        target_name=backbone.name,
        target_length=len(backbone),
        target_start=0,
        target_end=len(backbone),
        residue_matches=len(read),
        alignment_block_length=len(read),
    )


BACKBONE = SeqRecord(name="b", sequence="ACGTACGTACGTACGTACGT")


def read_with_quality(name: str, sequence: str, phred: int) -> SeqRecord:
    return SeqRecord(name=name, sequence=sequence, quality=chr(33 + phred) * len(sequence))


class TestQualityFilter:
    def test_low_quality_fragments_dropped(self):
        polisher = RaconPolisher(window_length=20, quality_threshold=10.0)
        good = read_with_quality("good", BACKBONE.sequence, 30)
        bad = read_with_quality("bad", BACKBONE.sequence, 5)
        windows, dropped = polisher.build_windows(
            BACKBONE, [good, bad],
            [perfect_mapping(good, BACKBONE), perfect_mapping(bad, BACKBONE)],
        )
        assert len(windows[0].fragments) == 1
        assert dropped == 1

    def test_filter_disabled_by_default(self):
        polisher = RaconPolisher(window_length=20)
        bad = read_with_quality("bad", BACKBONE.sequence, 5)
        windows, dropped = polisher.build_windows(
            BACKBONE, [bad], [perfect_mapping(bad, BACKBONE)]
        )
        assert len(windows[0].fragments) == 1 and dropped == 0

    def test_quality_less_reads_pass_filter(self):
        """FASTA inputs (no quality) must not be filtered out."""
        polisher = RaconPolisher(window_length=20, quality_threshold=10.0)
        fasta_read = SeqRecord(name="r", sequence=BACKBONE.sequence)
        windows, dropped = polisher.build_windows(
            BACKBONE, [fasta_read], [perfect_mapping(fasta_read, BACKBONE)]
        )
        assert len(windows[0].fragments) == 1 and dropped == 0


class TestQualityWeighting:
    def test_weights_scale_with_quality(self):
        polisher = RaconPolisher(window_length=20, weight_by_quality=True)
        reads = [
            read_with_quality("q10", BACKBONE.sequence, 10),
            read_with_quality("q25", BACKBONE.sequence, 25),
            read_with_quality("q40", BACKBONE.sequence, 40),
        ]
        windows, _ = polisher.build_windows(
            BACKBONE, reads, [perfect_mapping(r, BACKBONE) for r in reads]
        )
        assert windows[0].weights == [1, 2, 4]

    def test_weights_default_to_one(self):
        polisher = RaconPolisher(window_length=20)
        read = read_with_quality("q40", BACKBONE.sequence, 40)
        windows, _ = polisher.build_windows(
            BACKBONE, [read], [perfect_mapping(read, BACKBONE)]
        )
        assert windows[0].weights == [1]

    def test_high_quality_read_outvotes_noisy_majority(self):
        """Two noisy Q7 reads vote for a substitution; one Q40 read votes
        for the truth.  Weighted fusion lets the confident read win; the
        unweighted polisher follows the majority."""
        truth = BACKBONE.sequence
        variant = "ACGTACGTATGTACGTACGT"  # C->T at position 9
        noisy = [read_with_quality(f"n{i}", variant, 7) for i in range(2)]
        confident = read_with_quality("conf", truth, 40)
        reads = noisy + [confident]
        mappings = [perfect_mapping(r, BACKBONE) for r in reads]
        backbone_neutral = SeqRecord(name="b", sequence=truth)

        weighted = RaconPolisher(window_length=20, weight_by_quality=True).polish(
            backbone_neutral, reads, mappings
        )
        assert weighted.polished.sequence == truth

    def test_reverse_strand_quality_clipped_consistently(self):
        from repro.tools.seqio.records import reverse_complement

        polisher = RaconPolisher(window_length=20, weight_by_quality=True)
        read = SeqRecord(
            name="rev",
            sequence=reverse_complement(BACKBONE.sequence),
            quality="I" * len(BACKBONE),
        )
        mapping = PafRecord(
            query_name="rev",
            query_length=len(read),
            query_start=0,
            query_end=len(read),
            strand="-",
            target_name="b",
            target_length=len(BACKBONE),
            target_start=0,
            target_end=len(BACKBONE),
            residue_matches=len(read),
            alignment_block_length=len(read),
        )
        windows, _ = polisher.build_windows(BACKBONE, [read], [mapping])
        assert windows[0].fragments == [BACKBONE.sequence]
        assert windows[0].weights == [4]  # Q40
