"""FASTA/FASTQ/PAF parsing and records."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.tools.seqio import (
    PafRecord,
    SeqRecord,
    SignalRead,
    parse_fasta,
    parse_fastq,
    parse_paf,
    write_fasta,
    write_fastq,
    write_paf,
)
from repro.tools.seqio.fastq import mean_quality
from repro.tools.seqio.records import reverse_complement

dna = st.text(alphabet="ACGT", min_size=0, max_size=200)


class TestSeqRecord:
    def test_length_and_gc(self):
        record = SeqRecord(name="r", sequence="GGCCAT")
        assert len(record) == 6
        assert record.gc_content == pytest.approx(4 / 6)

    def test_empty_gc_zero(self):
        assert SeqRecord(name="r", sequence="").gc_content == 0.0

    def test_quality_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SeqRecord(name="r", sequence="ACGT", quality="II")

    def test_reverse_complement(self):
        record = SeqRecord(name="r", sequence="AACGT", quality="ABCDE")
        rc = record.reverse_complement()
        assert rc.sequence == "ACGTT"
        assert rc.quality == "EDCBA"

    def test_subsequence(self):
        record = SeqRecord(name="r", sequence="ACGTACGT")
        sub = record.subsequence(2, 5)
        assert sub.sequence == "GTA"
        assert "2-5" in sub.name

    @given(dna)
    def test_reverse_complement_involution(self, seq):
        assert reverse_complement(reverse_complement(seq)) == seq


class TestFasta:
    def test_roundtrip(self):
        records = [
            SeqRecord(name="a", sequence="ACGT" * 30, description="first"),
            SeqRecord(name="b", sequence="GG"),
        ]
        parsed = parse_fasta(write_fasta(records))
        assert [(r.name, r.sequence, r.description) for r in parsed] == [
            ("a", "ACGT" * 30, "first"),
            ("b", "GG", ""),
        ]

    def test_multiline_sequences_joined(self):
        assert parse_fasta(">x\nACG\nT\n")[0].sequence == "ACGT"

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError):
            parse_fasta("ACGT\n>x\n")

    def test_line_wrapping(self):
        text = write_fasta([SeqRecord(name="a", sequence="A" * 100)], line_width=60)
        lengths = [len(l) for l in text.splitlines()[1:]]
        assert lengths == [60, 40]

    @given(st.lists(st.tuples(st.text(alphabet="abc", min_size=1, max_size=5), dna), max_size=5))
    def test_roundtrip_property(self, pairs):
        records = [SeqRecord(name=f"{n}_{i}", sequence=s) for i, (n, s) in enumerate(pairs)]
        parsed = parse_fasta(write_fasta(records))
        assert [(r.name, r.sequence) for r in parsed] == [
            (r.name, r.sequence) for r in records
        ]


class TestFastq:
    def test_roundtrip(self):
        records = [SeqRecord(name="a", sequence="ACGT", quality="IIII")]
        parsed = parse_fastq(write_fastq(records))
        assert parsed[0].quality == "IIII"

    def test_missing_quality_filled(self):
        text = write_fastq([SeqRecord(name="a", sequence="ACG")])
        assert parse_fastq(text)[0].quality == "III"

    def test_bad_record_count_rejected(self):
        with pytest.raises(ValueError):
            parse_fastq("@a\nACGT\n+\n")

    def test_bad_separators_rejected(self):
        with pytest.raises(ValueError):
            parse_fastq("a\nACGT\n+\nIIII\n")
        with pytest.raises(ValueError):
            parse_fastq("@a\nACGT\nX\nIIII\n")

    def test_mean_quality(self):
        record = SeqRecord(name="a", sequence="AC", quality="!I")  # Q0, Q40
        assert mean_quality(record) == pytest.approx(20.0)
        assert mean_quality(SeqRecord(name="b", sequence="AC")) == 0.0


class TestPaf:
    def make(self, **kwargs):
        defaults = dict(
            query_name="q",
            query_length=100,
            query_start=0,
            query_end=100,
            strand="+",
            target_name="t",
            target_length=1000,
            target_start=50,
            target_end=150,
            residue_matches=90,
            alignment_block_length=100,
        )
        defaults.update(kwargs)
        return PafRecord(**defaults)

    def test_roundtrip(self):
        records = [self.make(), self.make(query_name="q2", strand="-")]
        parsed = parse_paf(write_paf(records))
        assert parsed == records

    def test_derived_fields(self):
        record = self.make()
        assert record.target_span == 100
        assert record.identity_estimate == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(strand="x")
        with pytest.raises(ValueError):
            self.make(query_start=50, query_end=10)
        with pytest.raises(ValueError):
            self.make(target_end=2000)

    def test_short_line_rejected(self):
        with pytest.raises(ValueError):
            parse_paf("q\t1\t0\t1\n")


class TestSignalRead:
    def test_basic(self):
        read = SignalRead(read_id="r", signal=np.zeros(4000), sample_rate_hz=4000.0)
        assert len(read) == 4000
        assert read.duration_seconds == pytest.approx(1.0)

    def test_dtype_normalised(self):
        read = SignalRead(read_id="r", signal=[1, 2, 3])
        assert read.signal.dtype == np.float32

    def test_multidim_rejected(self):
        with pytest.raises(ValueError):
            SignalRead(read_id="r", signal=np.zeros((2, 2)))
