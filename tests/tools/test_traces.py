"""Arrival-trace generation and replay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.traces import (
    ArrivalTrace,
    TraceReplayer,
    generate_trace,
)


class TestGeneration:
    def test_reproducible_by_seed(self):
        a = generate_trace(n_jobs=15, seed=3)
        b = generate_trace(n_jobs=15, seed=3)
        assert a.entries == b.entries
        assert generate_trace(n_jobs=15, seed=4).entries != a.entries

    def test_arrivals_strictly_increasing(self):
        trace = generate_trace(n_jobs=50, seed=1)
        times = [e.arrival_time for e in trace.entries]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_tool_mix_respected(self):
        trace = generate_trace(
            n_jobs=300, seed=2, tool_mix={"racon": 0.8, "seqstats": 0.2}
        )
        counts = trace.tool_counts()
        assert set(counts) <= {"racon", "seqstats"}
        assert counts["racon"] > counts["seqstats"] * 2

    def test_duration_jitter_bounded(self):
        trace = generate_trace(n_jobs=100, seed=5)
        for entry in trace.entries:
            if entry.tool_id == "racon":
                assert 1.72 * 0.8 <= entry.duration <= 1.72 * 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace(n_jobs=0)
        with pytest.raises(ValueError):
            generate_trace(mean_interarrival_s=0)
        with pytest.raises(ValueError):
            generate_trace(tool_mix={"unknown_tool": 1.0})

    def test_makespan_lower_bound(self):
        trace = generate_trace(n_jobs=10, seed=6)
        assert trace.makespan_lower_bound >= max(
            e.arrival_time for e in trace.entries
        )
        assert ArrivalTrace().makespan_lower_bound == 0.0

    @given(st.integers(1, 40), st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_generation_invariants(self, n_jobs, seed):
        trace = generate_trace(n_jobs=n_jobs, seed=seed)
        assert len(trace) == n_jobs
        assert all(e.duration > 0 for e in trace.entries)


class TestReplay:
    def test_replay_places_every_gpu_job(self, deployment):
        trace = generate_trace(n_jobs=12, mean_interarrival_s=3.0, seed=7)
        result = TraceReplayer(deployment).replay(trace)
        assert len(result.jobs) == 12
        for job in result.jobs:
            if job.entry.tool_id in ("racon", "bonito"):
                assert job.gpu_enabled
                assert all(g in ("0", "1") for g in job.gpu_ids)
            else:
                assert not job.gpu_enabled

    def test_devices_clean_after_replay(self, deployment):
        trace = generate_trace(n_jobs=10, seed=8)
        TraceReplayer(deployment).replay(trace)
        assert all(d.is_idle for d in deployment.gpu_host.devices)

    def test_contention_produces_colocation(self, deployment):
        """A dense trace overlaps jobs: some device must host >1 at once."""
        trace = generate_trace(n_jobs=20, mean_interarrival_s=0.5, seed=9)
        result = TraceReplayer(deployment).replay(trace)
        assert max(result.max_concurrent_per_gpu.values()) > 1

    def test_sparse_trace_never_colocates(self, deployment):
        trace = generate_trace(
            n_jobs=6,
            mean_interarrival_s=200.0,
            seed=10,
            tool_mix={"racon": 1.0},
        )
        result = TraceReplayer(deployment).replay(trace)
        assert max(result.max_concurrent_per_gpu.values()) == 1
        assert result.scattered_jobs == 0

    def test_memory_strategy_reduces_scatter(self):
        """The A1 finding over a whole trace: memory allocation never
        scatters, PID allocation does under load."""
        from repro.core import build_deployment
        from repro.tools.executors import register_paper_tools

        trace = generate_trace(n_jobs=25, mean_interarrival_s=0.5, seed=11)
        results = {}
        for strategy in ("pid", "memory"):
            deployment = build_deployment(allocation_strategy=strategy)
            register_paper_tools(deployment.app)
            results[strategy] = TraceReplayer(deployment).replay(trace)
        assert results["memory"].scattered_jobs == 0
        assert results["pid"].scattered_jobs >= results["memory"].scattered_jobs
