"""Dataset descriptors and synthetic data generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.datasets import (
    ACINETOBACTER_PITTII,
    ALZHEIMERS_NFL,
    KLEBSIELLA_KSB2,
    PAPER_DATASETS,
    DatasetDescriptor,
)
from repro.workloads.generator import (
    corrupted_backbone,
    mutate_sequence,
    simulate_genome,
    simulate_read_set,
    simulate_reads,
)
from repro.tools.racon.alignment import identity


class TestDescriptors:
    def test_paper_sizes(self):
        assert ALZHEIMERS_NFL.size_gib == pytest.approx(17.0)
        assert ACINETOBACTER_PITTII.size_gib == pytest.approx(1.5)
        assert KLEBSIELLA_KSB2.size_gib == pytest.approx(5.2)

    def test_registry(self):
        assert set(PAPER_DATASETS) == {
            "Alzheimers_NFL",
            "Acinetobacter_pittii",
            "Klebsiella_pneumoniae_KSB2",
        }

    def test_technologies(self):
        assert ALZHEIMERS_NFL.technology == "pacbio"
        assert ACINETOBACTER_PITTII.technology == "nanopore"
        with pytest.raises(ValueError):
            DatasetDescriptor("x", "sanger", 1, 1, 1, 1)

    def test_scaled(self):
        half = ALZHEIMERS_NFL.scaled(0.5)
        assert half.size_bytes == ALZHEIMERS_NFL.size_bytes // 2
        assert half.technology == "pacbio"
        with pytest.raises(ValueError):
            ALZHEIMERS_NFL.scaled(0)

    def test_coverage_depth(self):
        assert ACINETOBACTER_PITTII.coverage_depth == pytest.approx(
            20_000 * 8_000 / 4_000_000
        )


class TestGenomeSimulation:
    def test_length_and_alphabet(self):
        genome = simulate_genome(1234, seed=0)
        assert len(genome) == 1234
        assert set(genome) <= set("ACGT")

    def test_gc_content_controlled(self):
        low = simulate_genome(20_000, seed=1, gc_content=0.2)
        high = simulate_genome(20_000, seed=1, gc_content=0.8)
        gc = lambda s: sum(1 for b in s if b in "GC") / len(s)
        assert gc(low) == pytest.approx(0.2, abs=0.02)
        assert gc(high) == pytest.approx(0.8, abs=0.02)

    def test_deterministic_by_seed(self):
        assert simulate_genome(500, seed=7) == simulate_genome(500, seed=7)
        assert simulate_genome(500, seed=7) != simulate_genome(500, seed=8)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_genome(0)
        with pytest.raises(ValueError):
            simulate_genome(10, gc_content=1.5)


class TestMutation:
    def test_zero_rates_identity(self):
        seq = simulate_genome(300, seed=2)
        assert mutate_sequence(seq, np.random.default_rng(0), 0, 0, 0) == seq

    def test_rates_roughly_respected(self):
        seq = simulate_genome(50_000, seed=3)
        mutated = mutate_sequence(
            np.random.default_rng(1), substitution_rate=0.0, insertion_rate=0.0,
            deletion_rate=0.1, sequence=seq,
        ) if False else mutate_sequence(seq, np.random.default_rng(1), 0.0, 0.0, 0.1)
        assert len(mutated) == pytest.approx(45_000, rel=0.02)

    @given(st.integers(0, 1000))
    @settings(max_examples=20)
    def test_identity_degrades_with_rates(self, seed):
        seq = simulate_genome(400, seed=seed)
        light = mutate_sequence(seq, np.random.default_rng(seed), 0.01, 0.0, 0.0)
        assert identity(light, seq) >= 0.95


class TestReadSimulation:
    def test_reads_within_genome(self):
        genome = simulate_genome(2000, seed=4)
        read_set = simulate_reads(genome, n_reads=20, mean_length=300, seed=5)
        for read in read_set.reads:
            assert 0 <= read.genome_start < read.genome_end <= len(genome)

    def test_truth_paf_valid_and_complete(self):
        read_set = simulate_read_set(genome_length=1500, coverage=8, seed=6)
        paf = read_set.truth_paf()
        assert len(paf) == len(read_set.reads)
        for record in paf:
            assert record.target_name == read_set.genome.name

    def test_coverage_targeted(self):
        read_set = simulate_read_set(
            genome_length=5000, coverage=20, mean_read_length=500, seed=7
        )
        assert read_set.mean_coverage() == pytest.approx(20.0, rel=0.25)

    def test_reverse_strand_fraction(self):
        genome = simulate_genome(3000, seed=8)
        read_set = simulate_reads(
            genome, n_reads=100, mean_length=200, seed=9, reverse_strand_fraction=0.5
        )
        minus = sum(1 for r in read_set.reads if r.strand == "-")
        assert 30 <= minus <= 70

    def test_corrupted_backbone_worse_than_reads(self):
        read_set = simulate_read_set(genome_length=1000, coverage=5, seed=10)
        draft = corrupted_backbone(read_set, seed=11)
        assert identity(draft.sequence, read_set.genome.sequence) < 0.97
        assert draft.name.endswith("_draft")

    def test_validation(self):
        genome = simulate_genome(100, seed=1)
        with pytest.raises(ValueError):
            simulate_reads(genome, n_reads=0, mean_length=10)
        with pytest.raises(ValueError):
            simulate_reads(genome, n_reads=1, mean_length=500)
