"""Diurnal generator: determinism, shape, storms, scaling."""

import pytest

from repro.workloads.diurnal import (
    DAY_SECONDS,
    DEFAULT_FLEET_TOOLS,
    ArrivalBatch,
    BurstStorm,
    DiurnalProfile,
    diurnal_batches,
    storm_multiplier,
)


class TestDeterminism:
    def test_same_seed_same_batches(self):
        profile = DiurnalProfile(users=500, seed=9)
        assert diurnal_batches(profile) == diurnal_batches(profile)

    def test_different_seed_differs(self):
        a = diurnal_batches(DiurnalProfile(users=500, seed=0))
        b = diurnal_batches(DiurnalProfile(users=500, seed=1))
        assert a != b


class TestShape:
    def test_batches_sorted_and_batched_per_tick(self):
        batches = diurnal_batches(DiurnalProfile(users=2000, seed=0))
        keys = [(b.time, b.tool) for b in batches]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))  # one batch per (tick, class)
        assert all(b.count > 0 for b in batches)

    def test_expected_volume_hit_within_tolerance(self):
        profile = DiurnalProfile(users=10_000, seed=3)
        total = sum(b.count for b in diurnal_batches(profile))
        expected = profile.expected_jobs
        assert abs(total - expected) < 0.05 * expected

    def test_day_curve_modulates_rate(self):
        """Afternoon peak ticks must carry clearly more than the 03:00
        trough (default curve: 1.65 vs 0.30)."""
        profile = DiurnalProfile(users=50_000, seed=0)
        batches = diurnal_batches(profile)

        def hour_volume(hour):
            lo, hi = hour * 3600.0, (hour + 1) * 3600.0
            return sum(b.count for b in batches if lo <= b.time < hi)

        assert hour_volume(14) > 2 * hour_volume(3)

    def test_tool_mix_follows_weights(self):
        profile = DiurnalProfile(users=50_000, seed=0)
        batches = diurnal_batches(profile)
        total = sum(b.count for b in batches)
        for index, tool in enumerate(DEFAULT_FLEET_TOOLS):
            share = sum(b.count for b in batches if b.tool == index) / total
            assert abs(share - tool.weight) < 0.02

    def test_scaled_to_reaches_target(self):
        profile = DiurnalProfile(seed=42).scaled_to(1_100_000)
        assert profile.expected_jobs >= 1_100_000
        total = sum(b.count for b in diurnal_batches(profile))
        assert total >= 1_000_000  # the ≥1M headline guarantee


class TestStorms:
    def test_storm_multiplier_windows(self):
        storms = (BurstStorm(start=100.0, duration=50.0, multiplier=10.0),
                  BurstStorm(start=120.0, duration=100.0, multiplier=2.0))
        assert storm_multiplier(storms, 99.0) == 1.0
        assert storm_multiplier(storms, 100.0) == 10.0
        assert storm_multiplier(storms, 130.0) == 20.0  # overlap multiplies
        assert storm_multiplier(storms, 160.0) == 2.0
        assert storm_multiplier(storms, 220.0) == 1.0

    def test_storm_inflates_window_volume(self):
        quiet = DiurnalProfile(users=20_000, seed=0)
        stormy = DiurnalProfile(
            users=20_000, seed=0,
            storms=(BurstStorm(start=0.25 * DAY_SECONDS, duration=3600.0,
                               multiplier=8.0),),
        )

        def window_volume(batches):
            lo = 0.25 * DAY_SECONDS
            return sum(b.count for b in batches
                       if lo <= b.time < lo + 3600.0)

        assert window_volume(diurnal_batches(stormy)) > \
            4 * window_volume(diurnal_batches(quiet))


class TestValidation:
    def test_empty_tools_rejected(self):
        with pytest.raises(ValueError):
            diurnal_batches(DiurnalProfile(tools=()))

    def test_short_day_curve_rejected(self):
        with pytest.raises(ValueError):
            diurnal_batches(DiurnalProfile(day_curve=(1.0, 2.0)))

    def test_batch_is_frozen_value_type(self):
        batch = ArrivalBatch(time=0.0, tool=0, count=1)
        with pytest.raises(AttributeError):
            batch.count = 2
